//! `rave-store`: durable session persistence for the RAVE data service.
//!
//! The paper's data service "intermittently stream[s] to disk ... an
//! audit trail" (§3.1.1) as JSON-lines — human-readable but slow to
//! replay and fragile under crashes (a torn final line corrupts the
//! file). This crate is the durable machine-format counterpart:
//!
//! - a **segmented write-ahead log** ([`wal::Wal`]) of CRC-framed binary
//!   audit entries ([`record`], [`segment`]), with torn-tail detection
//!   and repair on open;
//! - **snapshot checkpoints** ([`snapshot`]) of the full scene tree,
//!   RLE-compressed and atomically written;
//! - **compaction** ([`compact`]) deleting segments a snapshot covers,
//!   bounding disk use to one snapshot + the active segment;
//! - **crash recovery** ([`recover`]): latest snapshot + WAL tail, always
//!   landing on a clean update boundary;
//! - **log shipping** ([`ship`]): continuous replication of sealed
//!   segments (plus a bounded unsealed tail) to a warm standby whose
//!   directory is always an exact prefix of the primary's log.
//!
//! The [`Store`] facade ties these together behind the append /
//! checkpoint / recover API the data service drives.

pub mod compact;
pub mod record;
pub mod recover;
pub mod segment;
pub mod ship;
pub mod snapshot;
pub mod wal;

pub use compact::{compact, CompactionReport};
pub use record::{crc32, TornTail};
pub use recover::{recover, Recovery};
pub use ship::{ShipAck, ShipApply, ShipFrame, Shipper, StandbyLog};
pub use snapshot::{read_snapshot, write_snapshot, Snapshot};
pub use wal::{Wal, WalOpenReport};

use rave_scene::{AuditEntry, SceneTree};
use std::io;
use std::path::{Path, PathBuf};

/// Tunables for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate the active WAL segment when it reaches this size.
    pub segment_max_bytes: u64,
    /// Declare a checkpoint due every N appended updates.
    pub checkpoint_every: u64,
    /// fsync after every append (durability over throughput).
    pub sync_writes: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { segment_max_bytes: 1 << 20, checkpoint_every: 256, sync_writes: false }
    }
}

/// A session's durable store: one directory holding WAL segments and
/// snapshot checkpoints.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    wal: Wal,
    appends_since_checkpoint: u64,
    last_checkpoint_seq: u64,
}

impl Store {
    /// Open (or initialise) the store, repairing any crash-torn WAL tail.
    pub fn open(dir: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (wal, _report) = Wal::open(&dir, cfg.segment_max_bytes, cfg.sync_writes)?;
        let last_checkpoint_seq =
            snapshot::list_snapshots(&dir)?.last().map(|(seq, _)| *seq).unwrap_or(0);
        Ok(Self { dir, cfg, wal, appends_since_checkpoint: 0, last_checkpoint_seq })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Sequence number of the last durably appended update.
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq().max(self.last_checkpoint_seq)
    }

    /// Append one audit entry to the WAL.
    pub fn append(&mut self, entry: &AuditEntry) -> io::Result<()> {
        self.wal.append(entry)?;
        self.appends_since_checkpoint += 1;
        Ok(())
    }

    /// True when enough updates have accumulated since the last
    /// checkpoint that the owner should call [`Store::checkpoint`].
    pub fn checkpoint_due(&self) -> bool {
        self.appends_since_checkpoint >= self.cfg.checkpoint_every
    }

    /// Write a snapshot of `tree` covering everything appended so far,
    /// then compact away the WAL segments it subsumes.
    pub fn checkpoint(&mut self, tree: &SceneTree, at_secs: f64) -> io::Result<CompactionReport> {
        self.wal.sync()?;
        let seq = self.last_seq();
        snapshot::write_snapshot(&self.dir, tree, seq, at_secs)?;
        self.last_checkpoint_seq = seq;
        self.appends_since_checkpoint = 0;
        compact(&self.dir, seq)
    }

    /// Flush and fsync outstanding appends.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Bytes the store occupies on disk (segments + snapshots).
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = Wal::disk_bytes(&self.dir)?;
        for (_, path) in snapshot::list_snapshots(&self.dir)? {
            total += std::fs::metadata(&path)?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{NodeKind, SceneUpdate, StampedUpdate};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rave-store-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn drive(store: &mut Store, tree: &mut SceneTree, seq: u64) {
        let id = tree.allocate_id();
        let update = SceneUpdate::AddNode {
            id,
            parent: tree.root(),
            name: format!("n{seq}"),
            kind: NodeKind::Group,
        };
        update.apply(tree).unwrap();
        store
            .append(&AuditEntry {
                at_secs: seq as f64,
                stamped: StampedUpdate { seq, origin: "t".into(), update },
            })
            .unwrap();
        if store.checkpoint_due() {
            store.checkpoint(tree, seq as f64).unwrap();
        }
    }

    #[test]
    fn store_lifecycle_append_checkpoint_recover() {
        let dir = tmp_dir("lifecycle");
        let mut tree = SceneTree::new();
        {
            let cfg =
                StoreConfig { checkpoint_every: 10, segment_max_bytes: 512, ..Default::default() };
            let mut store = Store::open(&dir, cfg).unwrap();
            for seq in 1..=35 {
                drive(&mut store, &mut tree, seq);
            }
            store.sync().unwrap();
            assert_eq!(store.last_seq(), 35);
        }
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 35);
        assert_eq!(rec.tree, tree);
        assert!(rec.snapshot_seq >= 30, "periodic checkpoints ran");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_bounds_disk_usage() {
        let dir = tmp_dir("bounded");
        let cfg =
            StoreConfig { checkpoint_every: 20, segment_max_bytes: 1024, ..Default::default() };
        let mut store = Store::open(&dir, cfg).unwrap();
        let mut tree = SceneTree::new();
        // A long session of rename churn on a small scene: without
        // compaction the log grows without bound; with it, disk usage
        // stays around one snapshot + one active segment.
        let id = tree.allocate_id();
        let add = SceneUpdate::AddNode {
            id,
            parent: tree.root(),
            name: "obj".into(),
            kind: NodeKind::Group,
        };
        add.apply(&mut tree).unwrap();
        store
            .append(&AuditEntry {
                at_secs: 0.0,
                stamped: StampedUpdate { seq: 1, origin: "t".into(), update: add },
            })
            .unwrap();
        let mut peak: u64 = 0;
        for seq in 2..=2000u64 {
            let update = SceneUpdate::SetName { id, name: format!("name-{seq}") };
            update.apply(&mut tree).unwrap();
            store
                .append(&AuditEntry {
                    at_secs: seq as f64,
                    stamped: StampedUpdate { seq, origin: "t".into(), update },
                })
                .unwrap();
            if store.checkpoint_due() {
                store.checkpoint(&tree, seq as f64).unwrap();
                peak = peak.max(store.disk_bytes().unwrap());
            }
        }
        store.sync().unwrap();
        let end = store.disk_bytes().unwrap();
        // The tree is tiny (2 nodes): the bound is snapshot + active
        // segment + rotation slack, far below the ~100 KB of raw log the
        // 2000 updates would otherwise occupy.
        assert!(end < 10 * 1024, "disk usage {end} bytes not bounded");
        assert!(peak < 10 * 1024, "peak usage {peak} bytes not bounded");
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 2000);
        assert_eq!(rec.tree, tree);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_checkpoint_cadence() {
        let dir = tmp_dir("resume");
        let mut tree = SceneTree::new();
        {
            let cfg = StoreConfig { checkpoint_every: 10, ..Default::default() };
            let mut store = Store::open(&dir, cfg).unwrap();
            for seq in 1..=10 {
                drive(&mut store, &mut tree, seq);
            }
        }
        let cfg = StoreConfig { checkpoint_every: 10, ..Default::default() };
        let store = Store::open(&dir, cfg).unwrap();
        assert_eq!(store.last_seq(), 10);
        assert!(!store.checkpoint_due());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
