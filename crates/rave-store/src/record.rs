//! WAL record framing: length-prefixed, CRC-checksummed payloads.
//!
//! ```text
//! record := payload_len: u32 LE | crc32(payload): u32 LE | payload
//! ```
//!
//! A segment file is a header followed by back-to-back records. The frame
//! is designed so a reader can always classify the tail of a file that
//! was being written when the process died: a partial header or payload
//! is a *torn tail* (expected after a crash — the clean prefix is kept
//! and the tail truncated away), while a full-length record whose
//! checksum fails is the same condition caught one step later (the crash
//! landed mid-`write` and the filesystem padded the hole).

/// Bytes of framing before each payload.
pub const RECORD_HEADER_LEN: usize = 8;

// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the ubiquitous variant, so
// segment files can be checked with standard external tools.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 checksum of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Append one framed record to `out`.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// How a record scan ended early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornTail {
    /// Fewer than [`RECORD_HEADER_LEN`] bytes remained.
    TruncatedHeader { at: usize },
    /// The header promised more payload bytes than the buffer holds.
    TruncatedPayload { at: usize },
    /// Payload present but its checksum does not match.
    ChecksumMismatch { at: usize },
}

impl TornTail {
    /// Byte offset of the first bad record — everything before is intact.
    pub fn clean_len(&self) -> usize {
        match *self {
            TornTail::TruncatedHeader { at }
            | TornTail::TruncatedPayload { at }
            | TornTail::ChecksumMismatch { at } => at,
        }
    }
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornTail::TruncatedHeader { at } => write!(f, "torn record header at byte {at}"),
            TornTail::TruncatedPayload { at } => write!(f, "torn record payload at byte {at}"),
            TornTail::ChecksumMismatch { at } => write!(f, "record checksum mismatch at byte {at}"),
        }
    }
}

/// The outcome of scanning a buffer of records.
#[derive(Debug)]
pub struct RecordScan<'a> {
    /// Every intact payload, in file order.
    pub payloads: Vec<&'a [u8]>,
    /// Length of the clean prefix; truncating the file here removes the
    /// torn tail without touching any intact record.
    pub clean_len: usize,
    /// Why the scan stopped before the end, if it did.
    pub torn: Option<TornTail>,
}

/// Walk `buf` record by record, stopping at the first torn or corrupt
/// record. Never panics and never over-allocates on a corrupt length.
pub fn scan_records(buf: &[u8]) -> RecordScan<'_> {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let remaining = buf.len() - pos;
        if remaining < RECORD_HEADER_LEN {
            return RecordScan {
                payloads,
                clean_len: pos,
                torn: Some(TornTail::TruncatedHeader { at: pos }),
            };
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > remaining - RECORD_HEADER_LEN {
            return RecordScan {
                payloads,
                clean_len: pos,
                torn: Some(TornTail::TruncatedPayload { at: pos }),
            };
        }
        let payload = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
        if crc32(payload) != crc {
            return RecordScan {
                payloads,
                clean_len: pos,
                torn: Some(TornTail::ChecksumMismatch { at: pos }),
            };
        }
        payloads.push(payload);
        pos += RECORD_HEADER_LEN + len;
    }
    RecordScan { payloads, clean_len: pos, torn: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_in_order() {
        let mut buf = Vec::new();
        encode_record(b"alpha", &mut buf);
        encode_record(b"", &mut buf);
        encode_record(b"gamma-delta", &mut buf);
        let scan = scan_records(&buf);
        assert_eq!(scan.payloads, vec![b"alpha" as &[u8], b"", b"gamma-delta"]);
        assert_eq!(scan.clean_len, buf.len());
        assert!(scan.torn.is_none());
    }

    #[test]
    fn every_truncation_point_yields_clean_prefix() {
        let mut buf = Vec::new();
        encode_record(b"first", &mut buf);
        let first_end = buf.len();
        encode_record(b"second", &mut buf);
        for cut in 0..buf.len() {
            let scan = scan_records(&buf[..cut]);
            assert!(scan.clean_len <= cut);
            if cut < first_end {
                assert!(scan.payloads.is_empty());
                assert_eq!(scan.clean_len, 0);
            } else if cut < buf.len() {
                assert_eq!(scan.payloads, vec![b"first" as &[u8]]);
                assert_eq!(scan.clean_len, first_end);
                // Exactly at the boundary there is no tail to tear.
                assert_eq!(scan.torn.is_some(), cut > first_end, "cut at {cut}");
            }
        }
    }

    #[test]
    fn bit_flip_in_payload_is_caught() {
        let mut buf = Vec::new();
        encode_record(b"payload-bytes", &mut buf);
        encode_record(b"after", &mut buf);
        buf[RECORD_HEADER_LEN + 3] ^= 0x01;
        let scan = scan_records(&buf);
        assert!(scan.payloads.is_empty());
        assert_eq!(scan.torn, Some(TornTail::ChecksumMismatch { at: 0 }));
    }

    #[test]
    fn huge_length_field_is_truncated_payload_not_alloc() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF]; // len = u32::MAX
        buf.extend_from_slice(&[0; 8]);
        let scan = scan_records(&buf);
        assert_eq!(scan.torn, Some(TornTail::TruncatedPayload { at: 0 }));
    }
}
