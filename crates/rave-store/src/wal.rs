//! The segmented write-ahead log: an ordered chain of segment files in
//! one directory, exactly one of which (the highest index) is open for
//! append. Rotation seals the active segment and starts the next; sealed
//! segments are immutable and become compaction candidates once a
//! snapshot covers them.

use crate::record::TornTail;
use crate::segment::{list_segments, read_segment, read_segment_header, SegmentWriter};
use rave_scene::AuditEntry;
use std::io;
use std::path::{Path, PathBuf};

/// A segmented write-ahead log rooted at a directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    active: SegmentWriter,
    segment_max_bytes: u64,
    sync_writes: bool,
}

/// What `Wal::open` found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOpenReport {
    pub segments: usize,
    /// Entries sitting in the log (all segments).
    pub entries: usize,
    /// A torn tail was truncated from the active segment.
    pub repaired_torn_tail: Option<TornTail>,
}

impl Wal {
    /// Open (or initialise) the log in `dir`. The highest-index segment
    /// is repaired (torn tail truncated) and re-opened for append.
    pub fn open(
        dir: &Path,
        segment_max_bytes: u64,
        sync_writes: bool,
    ) -> io::Result<(Self, WalOpenReport)> {
        std::fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let (active, report) = match segments.last() {
            None => {
                let w = SegmentWriter::create(dir, 0, 1)?;
                (w, WalOpenReport { segments: 1, entries: 0, repaired_torn_tail: None })
            }
            Some((_, last_path)) => {
                let (w, contents) = SegmentWriter::open_for_append(last_path)?;
                let mut entries = contents.entries.len();
                for (_, p) in &segments[..segments.len() - 1] {
                    entries += read_segment(p)?.entries.len();
                }
                (
                    w,
                    WalOpenReport {
                        segments: segments.len(),
                        entries,
                        repaired_torn_tail: contents.torn,
                    },
                )
            }
        };
        Ok((Self { dir: dir.to_path_buf(), active, segment_max_bytes, sync_writes }, report))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last appended entry (0 if none ever).
    pub fn last_seq(&self) -> u64 {
        self.active.last_seq
    }

    /// Index of the segment currently open for append.
    pub fn active_segment_index(&self) -> u64 {
        self.active.header.index
    }

    /// Append an entry, rotating to a new segment first if the active one
    /// is full.
    pub fn append(&mut self, entry: &AuditEntry) -> io::Result<()> {
        if self.active.len >= self.segment_max_bytes {
            self.rotate()?;
        }
        self.active.append(entry)?;
        if self.sync_writes {
            self.active.sync()?;
        }
        Ok(())
    }

    /// Seal the active segment and open the next one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.active.sync()?;
        let next = SegmentWriter::create(
            &self.dir,
            self.active.header.index + 1,
            self.active.last_seq + 1,
        )?;
        self.active = next;
        Ok(())
    }

    /// Flush and fsync the active segment.
    pub fn sync(&mut self) -> io::Result<()> {
        self.active.sync()
    }

    /// Replay every entry with `seq > after_seq`, in order, across all
    /// segments. Stops at the first torn/corrupt record (the entries
    /// before it are a guaranteed-intact prefix of the log).
    ///
    /// Sealed segments wholly at or below the cursor are skipped from
    /// their 28-byte headers alone: segment `i`'s entries all lie below
    /// segment `i+1`'s `base_seq` (rotation chains them), so an
    /// incremental replay never reads or decodes record bodies the
    /// caller already holds.
    pub fn replay_after(dir: &Path, after_seq: u64) -> io::Result<Vec<AuditEntry>> {
        let segments = list_segments(dir)?;
        let mut start = 0;
        for i in 0..segments.len().saturating_sub(1) {
            let next_base = read_segment_header(&segments[i + 1].1)?.base_seq;
            if next_base <= after_seq.saturating_add(1) {
                start = i + 1;
            } else {
                break;
            }
        }
        let mut out = Vec::new();
        for (_, path) in &segments[start..] {
            let contents = read_segment(path)?;
            for e in contents.entries {
                if e.stamped.seq > after_seq {
                    out.push(e);
                }
            }
            if contents.torn.is_some() {
                break;
            }
        }
        Ok(out)
    }

    /// Total bytes the log occupies on disk.
    pub fn disk_bytes(dir: &Path) -> io::Result<u64> {
        let mut total = 0;
        for (_, path) in list_segments(dir)? {
            total += std::fs::metadata(&path)?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{NodeId, SceneUpdate, StampedUpdate};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rave-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(seq: u64) -> AuditEntry {
        AuditEntry {
            at_secs: seq as f64,
            stamped: StampedUpdate {
                seq,
                origin: "wal-test".into(),
                update: SceneUpdate::SetName { id: NodeId(0), name: format!("name-{seq}") },
            },
        }
    }

    #[test]
    fn append_and_replay_across_rotations() {
        let dir = tmp_dir("rotate");
        // Tiny segments force several rotations over 50 entries.
        let (mut wal, report) = Wal::open(&dir, 256, false).unwrap();
        assert_eq!(report.entries, 0);
        for seq in 1..=50 {
            wal.append(&entry(seq)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.active_segment_index() > 2, "rotation happened");
        let replayed = Wal::replay_after(&dir, 0).unwrap();
        assert_eq!(replayed.len(), 50);
        assert_eq!(replayed.last().unwrap().stamped.seq, 50);
        // Mid-log cursor.
        let tail = Wal::replay_after(&dir, 30).unwrap();
        assert_eq!(tail.len(), 20);
        assert_eq!(tail[0].stamped.seq, 31);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_sequence_and_segment() {
        let dir = tmp_dir("reopen");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, false).unwrap();
            for seq in 1..=10 {
                wal.append(&entry(seq)).unwrap();
            }
            wal.sync().unwrap();
        }
        let (mut wal, report) = Wal::open(&dir, 1 << 20, false).unwrap();
        assert_eq!(report.entries, 10);
        assert!(report.repaired_torn_tail.is_none());
        assert_eq!(wal.last_seq(), 10);
        wal.append(&entry(11)).unwrap();
        wal.sync().unwrap();
        assert_eq!(Wal::replay_after(&dir, 0).unwrap().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_tail_repaired_on_open() {
        let dir = tmp_dir("crash");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, false).unwrap();
            for seq in 1..=5 {
                wal.append(&entry(seq)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the final record.
        let (_, last) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() - 7]).unwrap();

        let (mut wal, report) = Wal::open(&dir, 1 << 20, false).unwrap();
        assert!(report.repaired_torn_tail.is_some());
        assert_eq!(report.entries, 4, "torn entry dropped");
        assert_eq!(wal.last_seq(), 4);
        // The log keeps going from the clean prefix.
        wal.append(&entry(5)).unwrap();
        wal.sync().unwrap();
        let replayed = Wal::replay_after(&dir, 0).unwrap();
        assert_eq!(replayed.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_after_skips_sealed_segments_by_header() {
        let dir = tmp_dir("skip");
        let (mut wal, _) = Wal::open(&dir, 256, false).unwrap();
        for seq in 1..=50 {
            wal.append(&entry(seq)).unwrap();
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 2, "several sealed segments");
        // Corrupt segment 0's record region. A cursor past its coverage
        // must skip it entirely (header-only decision) and still replay
        // the tail — proof the bodies were never read.
        let (_, first) = &segs[0];
        let mut bytes = std::fs::read(first).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        std::fs::write(first, &bytes).unwrap();
        let seg1_base = read_segment_header(&segs[1].1).unwrap().base_seq;
        let tail = Wal::replay_after(&dir, seg1_base - 1).unwrap();
        assert_eq!(tail.first().unwrap().stamped.seq, seg1_base);
        assert_eq!(tail.last().unwrap().stamped.seq, 50);
        // A cursor of 0 does read segment 0 and stops at the corruption.
        let from_zero = Wal::replay_after(&dir, 0).unwrap();
        assert!(from_zero.len() < 50, "corruption truncates a full replay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_base_seq_chains() {
        let dir = tmp_dir("chain");
        let (mut wal, _) = Wal::open(&dir, 128, false).unwrap();
        for seq in 1..=20 {
            wal.append(&entry(seq)).unwrap();
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 1);
        let mut expected_base = 1;
        for (_, path) in &segs {
            let c = read_segment(path).unwrap();
            assert_eq!(c.header.base_seq, expected_base, "{}", path.display());
            if let Some(last) = c.entries.last() {
                expected_base = last.stamped.seq + 1;
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
