//! Log shipping: continuous replication of the WAL to a warm standby.
//!
//! The paper's §6 fail-safe ("data servers could mirror each other") done
//! the way production logs do it: the primary streams *sealed* segments
//! verbatim (they are immutable, so a byte copy is a correct copy), plus
//! a tail of unsealed entries from the active segment once the standby
//! would otherwise trail past a configurable lag bound. The standby
//! writes the same segment files to its own directory — after promotion
//! the shipped store *is* a WAL a [`crate::Store`] opens and appends to,
//! so sequence numbers continue where the primary stopped.
//!
//! Protocol shape (driven by the caller, e.g. the simulation's replica
//! subsystem, which owns timing and transport):
//!
//! 1. the standby reports its durable [`StandbyLog::last_seq`];
//! 2. the primary [`Shipper::plan`]s a batch of [`ShipFrame`]s past that
//!    cursor — sealed segments are *skipped from headers alone* (the next
//!    segment's `base_seq` bounds this one's contents, so resume never
//!    re-reads what the standby already holds);
//! 3. the standby [`StandbyLog::apply`]s each frame and answers with a
//!    sequence-numbered [`ShipAck`]; a frame that arrives torn or corrupt
//!    is *not* installed and the ack carries a re-request for it.
//!
//! Every apply leaves the standby holding an exact, contiguous prefix of
//! the primary's committed log — never a gap, never a torn record.

use crate::record::scan_records;
use crate::segment::{
    list_segments, read_segment, read_segment_header, segment_file_name, SegmentHeader,
    SegmentWriter, SEGMENT_HEADER_LEN,
};
use rave_scene::{wire, AuditEntry};
use std::io;
use std::path::{Path, PathBuf};

/// Fixed per-frame accounting overhead (frame type, index, counts).
pub const FRAME_OVERHEAD: u64 = 32;
/// Wire size of a [`ShipAck`] (seq + optional resend index + framing).
pub const ACK_BYTES: u64 = 24;
/// Per-entry framing overhead inside a [`ShipFrame::Tail`].
pub const TAIL_ENTRY_OVERHEAD: u64 = 16;

/// One unit of replication traffic, primary → standby.
#[derive(Debug, Clone, PartialEq)]
pub enum ShipFrame {
    /// A sealed (immutable) segment, shipped as its exact file bytes.
    Sealed { index: u64, bytes: Vec<u8> },
    /// Entries from the primary's *active* segment past the standby's
    /// cursor; `index`/`base_seq` name the segment they belong to so the
    /// standby can grow its own copy of it.
    Tail { index: u64, base_seq: u64, entries: Vec<AuditEntry> },
}

impl ShipFrame {
    /// Bytes this frame occupies on the wire.
    pub fn wire_size(&self) -> u64 {
        match self {
            ShipFrame::Sealed { bytes, .. } => bytes.len() as u64 + FRAME_OVERHEAD,
            ShipFrame::Tail { entries, .. } => {
                entries.iter().map(|e| e.stamped.wire_size() + TAIL_ENTRY_OVERHEAD).sum::<u64>()
                    + FRAME_OVERHEAD
            }
        }
    }

    /// Highest sequence number the frame carries (None for an empty one).
    pub fn last_seq(&self) -> Option<u64> {
        match self {
            // A sealed frame's bytes are scanned on receipt; for the
            // sender's cursor it is enough to know it ends where the
            // next segment starts, which `plan` tracks externally.
            ShipFrame::Sealed { .. } => None,
            ShipFrame::Tail { entries, .. } => entries.last().map(|e| e.stamped.seq),
        }
    }

    /// Short human description for traces.
    pub fn describe(&self) -> String {
        match self {
            ShipFrame::Sealed { index, bytes } => {
                format!("sealed segment #{index} ({} bytes)", bytes.len())
            }
            ShipFrame::Tail { index, entries, .. } => format!(
                "tail of segment #{index} ({} entries, seqs {}..={})",
                entries.len(),
                entries.first().map(|e| e.stamped.seq).unwrap_or(0),
                entries.last().map(|e| e.stamped.seq).unwrap_or(0),
            ),
        }
    }
}

/// The standby's answer to one applied frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipAck {
    /// Highest contiguous sequence number durably held after the apply.
    pub last_seq: u64,
    /// Set when the frame arrived torn or corrupt: the primary must
    /// re-ship this segment index.
    pub resend: Option<u64>,
}

/// Primary-side planner: decides what a standby at a given cursor needs.
/// Stateless over a WAL directory — resume after any interruption is
/// just a fresh `plan` against the standby's reported `last_seq`.
#[derive(Debug, Clone)]
pub struct Shipper {
    dir: PathBuf,
}

impl Shipper {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Plan at most `limit` frames for a standby whose durable log ends
    /// at `acked_seq` (0 = empty). `resend` re-ships a segment the
    /// standby reported torn. Sealed segments wholly at or below the
    /// cursor are skipped from their successors' headers without reading
    /// a single record body. Unsealed tail entries ship only past
    /// `max_lag`: the newest `max_lag` entries may stay unshipped until
    /// rotation seals them (0 = ship everything immediately).
    ///
    /// Errors when the cursor predates the oldest retained segment — the
    /// needed history was compacted away and the standby must be
    /// re-established through a full bootstrap instead.
    pub fn plan(
        &self,
        acked_seq: u64,
        resend: Option<u64>,
        max_lag: u64,
        limit: usize,
    ) -> io::Result<Vec<ShipFrame>> {
        let segments = list_segments(&self.dir)?;
        let mut frames = Vec::new();
        if segments.is_empty() || limit == 0 {
            return Ok(frames);
        }
        let first_base = read_segment_header(&segments[0].1)?.base_seq;
        if first_base > acked_seq.saturating_add(1) {
            return Err(io::Error::other(format!(
                "standby at seq {acked_seq} predates oldest retained segment \
                 (base_seq {first_base}): history compacted away, \
                 re-establish from a snapshot"
            )));
        }
        if let Some(idx) = resend {
            if let Some((_, path)) = segments.iter().find(|(i, _)| *i == idx) {
                frames.push(ShipFrame::Sealed { index: idx, bytes: std::fs::read(path)? });
            }
        }
        // Sealed segments: everything but the highest index. Segment i's
        // entries all lie below segment i+1's base_seq, so the skip
        // decision needs only the 28-byte headers.
        let mut covered = acked_seq;
        for i in 0..segments.len() - 1 {
            let (index, path) = &segments[i];
            let next_base = read_segment_header(&segments[i + 1].1)?.base_seq;
            let upper = next_base.saturating_sub(1);
            if upper > acked_seq && Some(*index) != resend {
                if frames.len() >= limit {
                    return Ok(frames);
                }
                frames.push(ShipFrame::Sealed { index: *index, bytes: std::fs::read(path)? });
            }
            covered = covered.max(upper);
        }
        if frames.len() >= limit {
            return Ok(frames);
        }
        // Active-segment tail: ship the oldest pending entries, leaving
        // at most `max_lag` of the newest unshipped.
        let (index, path) = segments.last().expect("non-empty");
        let contents = read_segment(path)?;
        let pending: Vec<AuditEntry> =
            contents.entries.into_iter().filter(|e| e.stamped.seq > covered).collect();
        let ship_n = pending.len().saturating_sub(max_lag as usize);
        if ship_n > 0 {
            frames.push(ShipFrame::Tail {
                index: *index,
                base_seq: contents.header.base_seq,
                entries: pending.into_iter().take(ship_n).collect(),
            });
        }
        Ok(frames)
    }
}

/// What one [`StandbyLog::apply`] did.
#[derive(Debug)]
pub struct ShipApply {
    /// Entries newly added to the standby's log, in sequence order —
    /// the caller replays these into its live replica.
    pub entries: Vec<AuditEntry>,
    /// The ack to return to the primary.
    pub ack: ShipAck,
}

/// Standby-side receiver: maintains a WAL directory that is always an
/// exact, contiguous prefix of the primary's. After promotion the
/// directory opens as an ordinary [`crate::Store`].
#[derive(Debug)]
pub struct StandbyLog {
    dir: PathBuf,
    last_seq: u64,
}

impl StandbyLog {
    /// Open (or initialise) the standby's log directory, resuming from
    /// whatever prefix it already holds.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let last_seq = match list_segments(&dir)?.last() {
            None => 0,
            Some((_, path)) => {
                let contents = read_segment(path)?;
                contents
                    .entries
                    .last()
                    .map(|e| e.stamped.seq)
                    .unwrap_or_else(|| contents.header.base_seq.saturating_sub(1))
            }
        };
        Ok(Self { dir, last_seq })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest contiguous sequence number durably held.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Apply one frame. Torn/corrupt sealed frames are rejected with a
    /// re-request; gaps (a frame starting past `last_seq + 1`) are
    /// declined by re-stating the cursor, which makes the primary
    /// re-plan. Duplicates are ignored idempotently.
    pub fn apply(&mut self, frame: &ShipFrame) -> io::Result<ShipApply> {
        match frame {
            ShipFrame::Sealed { index, bytes } => self.apply_sealed(*index, bytes),
            ShipFrame::Tail { index, base_seq, entries } => {
                self.apply_tail(*index, *base_seq, entries)
            }
        }
    }

    fn decline(&self, resend: Option<u64>) -> ShipApply {
        ShipApply { entries: Vec::new(), ack: ShipAck { last_seq: self.last_seq, resend } }
    }

    fn apply_sealed(&mut self, index: u64, bytes: &[u8]) -> io::Result<ShipApply> {
        // Verify before installing: a frame damaged in flight must not
        // replace a good (or partial) local segment.
        let Some((header, scanned)) = verify_sealed(index, bytes) else {
            return Ok(self.decline(Some(index)));
        };
        if header.base_seq > self.last_seq.saturating_add(1) {
            // A gap: an earlier segment is missing. Decline; the primary
            // re-plans from our cursor.
            return Ok(self.decline(None));
        }
        let seg_last = scanned
            .last()
            .map(|e| e.stamped.seq)
            .unwrap_or_else(|| header.base_seq.saturating_sub(1));
        // Install atomically; a sealed copy supersedes any partial tail
        // copy of the same segment (the bytes are a superset).
        let path = self.dir.join(segment_file_name(index));
        let tmp = self.dir.join(format!("{}.tmp", segment_file_name(index)));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)?;
        let entries = scanned.into_iter().filter(|e| e.stamped.seq > self.last_seq).collect();
        self.last_seq = self.last_seq.max(seg_last);
        Ok(ShipApply { entries, ack: ShipAck { last_seq: self.last_seq, resend: None } })
    }

    fn apply_tail(
        &mut self,
        index: u64,
        base_seq: u64,
        entries: &[AuditEntry],
    ) -> io::Result<ShipApply> {
        let new: Vec<AuditEntry> =
            entries.iter().filter(|e| e.stamped.seq > self.last_seq).cloned().collect();
        let Some(first) = new.first() else {
            return Ok(self.decline(None)); // pure duplicate — idempotent
        };
        if first.stamped.seq > self.last_seq + 1 {
            return Ok(self.decline(None)); // gap: earlier entries missing
        }
        let path = self.dir.join(segment_file_name(index));
        let mut writer = if path.exists() {
            let (w, _) = SegmentWriter::open_for_append(&path)?;
            w
        } else {
            SegmentWriter::create(&self.dir, index, base_seq)?
        };
        for e in &new {
            writer.append(e)?;
        }
        writer.sync()?;
        self.last_seq = new.last().expect("non-empty").stamped.seq;
        Ok(ShipApply { entries: new, ack: ShipAck { last_seq: self.last_seq, resend: None } })
    }
}

/// Check a sealed frame end to end: header matches the claimed index,
/// every record passes its CRC, every payload wire-decodes. A torn tail
/// inside a *sealed* segment means the frame (not the log) is damaged.
fn verify_sealed(index: u64, bytes: &[u8]) -> Option<(SegmentHeader, Vec<AuditEntry>)> {
    let header = SegmentHeader::decode(bytes).ok()?;
    if header.index != index {
        return None;
    }
    let scan = scan_records(&bytes[SEGMENT_HEADER_LEN..]);
    if scan.torn.is_some() {
        return None;
    }
    let mut entries = Vec::with_capacity(scan.payloads.len());
    for payload in &scan.payloads {
        entries.push(wire::decode_entry(payload).ok()?);
    }
    // The header's base_seq is outside the records' CRC coverage; the
    // first entry pins it, so a bit flip there is caught here rather
    // than being misread as a sequence gap.
    if let Some(first) = entries.first() {
        if first.stamped.seq != header.base_seq {
            return None;
        }
    }
    Some((header, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover;
    use crate::wal::Wal;
    use rave_scene::{NodeKind, SceneTree, SceneUpdate, StampedUpdate};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rave-store-ship-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Append `n` tree-building entries to a WAL, returning the live tree.
    fn primary_session(dir: &Path, n: u64, seg_bytes: u64) -> SceneTree {
        let (mut wal, _) = Wal::open(dir, seg_bytes, false).unwrap();
        let mut tree = SceneTree::new();
        for seq in 1..=n {
            let id = tree.allocate_id();
            let update = SceneUpdate::AddNode {
                id,
                parent: tree.root(),
                name: format!("n{seq}"),
                kind: NodeKind::Group,
            };
            update.apply(&mut tree).unwrap();
            wal.append(&AuditEntry {
                at_secs: seq as f64,
                stamped: StampedUpdate { seq, origin: "ship".into(), update },
            })
            .unwrap();
        }
        wal.sync().unwrap();
        tree
    }

    /// Drive plan/apply to quiescence; returns frames shipped.
    fn drain(shipper: &Shipper, standby: &mut StandbyLog, max_lag: u64) -> usize {
        let mut shipped = 0;
        let mut resend = None;
        loop {
            let frames = shipper.plan(standby.last_seq(), resend, max_lag, 4).unwrap();
            if frames.is_empty() {
                return shipped;
            }
            for f in &frames {
                let apply = standby.apply(f).unwrap();
                resend = apply.ack.resend;
                shipped += 1;
            }
        }
    }

    #[test]
    fn full_ship_reproduces_the_log_exactly() {
        let (pdir, sdir) = (tmp_dir("full-p"), tmp_dir("full-s"));
        let live = primary_session(&pdir, 40, 256); // several rotations
        let shipper = Shipper::new(&pdir);
        let mut standby = StandbyLog::open(&sdir).unwrap();
        drain(&shipper, &mut standby, 0);
        assert_eq!(standby.last_seq(), 40);
        let rec = recover(&sdir).unwrap();
        assert_eq!(rec.last_seq, 40);
        assert_eq!(rec.tree, live);
        // Sealed segments are byte-identical copies; the standby's tail
        // segment re-encodes the same records deterministically.
        for (idx, p_path) in list_segments(&pdir).unwrap() {
            let s_path = sdir.join(segment_file_name(idx));
            assert_eq!(
                std::fs::read(&p_path).unwrap(),
                std::fs::read(&s_path).unwrap(),
                "segment {idx} differs"
            );
        }
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn resume_skips_already_held_segments() {
        let (pdir, sdir) = (tmp_dir("resume-p"), tmp_dir("resume-s"));
        primary_session(&pdir, 30, 256);
        let shipper = Shipper::new(&pdir);
        {
            let mut standby = StandbyLog::open(&sdir).unwrap();
            // Ship only the first couple of frames, then "crash".
            let frames = shipper.plan(0, None, 0, 2).unwrap();
            for f in &frames {
                standby.apply(f).unwrap();
            }
        }
        // A fresh standby process resumes from its durable cursor: the
        // next plan starts past everything already held.
        let mut standby = StandbyLog::open(&sdir).unwrap();
        let held = standby.last_seq();
        assert!(held > 0, "prefix survived the restart");
        let frames = shipper.plan(held, None, 0, 16).unwrap();
        for f in &frames {
            if let ShipFrame::Sealed { index, .. } = f {
                let first_missing = list_segments(&sdir).unwrap().len() as u64;
                assert!(*index >= first_missing.saturating_sub(1), "re-shipped a held segment");
            }
        }
        drain(&shipper, &mut standby, 0);
        assert_eq!(standby.last_seq(), 30);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn torn_frame_is_rerequested_and_converges() {
        let (pdir, sdir) = (tmp_dir("torn-p"), tmp_dir("torn-s"));
        let live = primary_session(&pdir, 30, 256);
        let shipper = Shipper::new(&pdir);
        let mut standby = StandbyLog::open(&sdir).unwrap();
        let frames = shipper.plan(0, None, 0, 1).unwrap();
        let ShipFrame::Sealed { index, bytes } = &frames[0] else {
            panic!("first frame is sealed")
        };
        // Damage the frame in flight: flip a byte inside the records.
        let mut torn = bytes.clone();
        let n = torn.len();
        torn[n - 3] ^= 0xFF;
        let apply = standby.apply(&ShipFrame::Sealed { index: *index, bytes: torn }).unwrap();
        assert_eq!(apply.ack.resend, Some(*index), "torn frame re-requested");
        assert_eq!(apply.ack.last_seq, 0, "nothing installed");
        assert!(apply.entries.is_empty());
        // The re-shipped intact frame lands, and the stream converges.
        let frames = shipper.plan(apply.ack.last_seq, apply.ack.resend, 0, 1).unwrap();
        let apply = standby.apply(&frames[0]).unwrap();
        assert_eq!(apply.ack.resend, None);
        assert!(apply.ack.last_seq > 0);
        drain(&shipper, &mut standby, 0);
        assert_eq!(recover(&sdir).unwrap().tree, live);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn lag_bound_withholds_the_newest_tail_entries() {
        let (pdir, sdir) = (tmp_dir("lag-p"), tmp_dir("lag-s"));
        primary_session(&pdir, 20, 1 << 20); // one active segment, no seals
        let shipper = Shipper::new(&pdir);
        let mut standby = StandbyLog::open(&sdir).unwrap();
        drain(&shipper, &mut standby, 5);
        assert_eq!(standby.last_seq(), 15, "newest 5 entries withheld within the lag bound");
        // Tightening the bound ships the rest.
        drain(&shipper, &mut standby, 0);
        assert_eq!(standby.last_seq(), 20);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn gap_frames_are_declined_not_installed() {
        let (pdir, sdir) = (tmp_dir("gap-p"), tmp_dir("gap-s"));
        primary_session(&pdir, 30, 256);
        let shipper = Shipper::new(&pdir);
        let mut standby = StandbyLog::open(&sdir).unwrap();
        // Deliver a later sealed segment first: declined, cursor unmoved.
        let frames = shipper.plan(0, None, 0, 8).unwrap();
        let later = frames
            .iter()
            .find(|f| matches!(f, ShipFrame::Sealed { index, .. } if *index > 0))
            .expect("multiple sealed segments");
        let apply = standby.apply(later).unwrap();
        assert_eq!(apply.ack.last_seq, 0);
        assert!(apply.entries.is_empty());
        assert!(list_segments(&sdir).unwrap().is_empty(), "nothing installed");
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn plan_respects_the_frame_limit() {
        let (pdir, _s) = (tmp_dir("limit-p"), ());
        primary_session(&pdir, 50, 128); // many segments
        let shipper = Shipper::new(&pdir);
        assert!(list_segments(&pdir).unwrap().len() > 3);
        assert_eq!(shipper.plan(0, None, 0, 2).unwrap().len(), 2);
        assert!(shipper.plan(0, None, 0, 0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&pdir);
    }

    #[test]
    fn compacted_history_is_an_explicit_error() {
        let (pdir, _) = (tmp_dir("compact-p"), ());
        primary_session(&pdir, 30, 256);
        // Simulate compaction deleting the oldest segment.
        let (_, first) = list_segments(&pdir).unwrap().into_iter().next().unwrap();
        std::fs::remove_file(&first).unwrap();
        let shipper = Shipper::new(&pdir);
        let err = shipper.plan(0, None, 0, 8).unwrap_err();
        assert!(err.to_string().contains("compacted"), "{err}");
        let _ = std::fs::remove_dir_all(&pdir);
    }

    #[test]
    fn duplicate_frames_are_idempotent() {
        let (pdir, sdir) = (tmp_dir("dup-p"), tmp_dir("dup-s"));
        let live = primary_session(&pdir, 25, 256);
        let shipper = Shipper::new(&pdir);
        let mut standby = StandbyLog::open(&sdir).unwrap();
        let frames = shipper.plan(0, None, 0, 16).unwrap();
        for f in &frames {
            standby.apply(f).unwrap();
        }
        let before = standby.last_seq();
        for f in &frames {
            let apply = standby.apply(f).unwrap();
            assert!(apply.entries.is_empty(), "duplicate produced new entries");
        }
        assert_eq!(standby.last_seq(), before);
        assert_eq!(recover(&sdir).unwrap().tree, live);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }
}
