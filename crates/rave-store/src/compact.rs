//! Log compaction: once a snapshot covers a sealed segment entirely, the
//! segment (and any older snapshot) is dead weight and is deleted. This
//! bounds the store's disk footprint to roughly one snapshot plus the
//! active segment, regardless of session length.

use crate::segment::list_segments;
use crate::snapshot::list_snapshots;
use std::io;
use std::path::Path;

/// What a compaction pass removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Indices of WAL segments deleted.
    pub segments_deleted: Vec<u64>,
    /// Snapshot files older than the covering one deleted.
    pub snapshots_deleted: usize,
    /// Disk bytes reclaimed.
    pub bytes_freed: u64,
}

/// Delete every sealed segment fully covered by a snapshot at
/// `snapshot_seq`, and every snapshot older than it.
///
/// Coverage is decided from segment headers alone: a segment's entries
/// all precede its successor's `base_seq`, so if the *next* segment
/// starts at or below `snapshot_seq + 1`, this one holds nothing newer
/// than the snapshot. The highest-index segment is the active one and is
/// never deleted — the log must always have an append head.
pub fn compact(dir: &Path, snapshot_seq: u64) -> io::Result<CompactionReport> {
    let mut report = CompactionReport::default();
    let segments = list_segments(dir)?;
    for pair in segments.windows(2) {
        let (idx, path) = &pair[0];
        let (_, next_path) = &pair[1];
        let next_base = crate::segment::read_segment_header(next_path)?.base_seq;
        if next_base <= snapshot_seq + 1 {
            report.bytes_freed += std::fs::metadata(path)?.len();
            std::fs::remove_file(path)?;
            report.segments_deleted.push(*idx);
        }
    }
    for (seq, path) in list_snapshots(dir)? {
        if seq < snapshot_seq {
            report.bytes_freed += std::fs::metadata(&path)?.len();
            std::fs::remove_file(&path)?;
            report.snapshots_deleted += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::wal::Wal;
    use rave_scene::{AuditEntry, NodeId, SceneTree, SceneUpdate, StampedUpdate};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rave-store-compact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(seq: u64) -> AuditEntry {
        AuditEntry {
            at_secs: seq as f64,
            stamped: StampedUpdate {
                seq,
                origin: "compact-test".into(),
                update: SceneUpdate::SetName { id: NodeId(0), name: format!("n{seq}") },
            },
        }
    }

    #[test]
    fn covered_segments_and_stale_snapshots_deleted() {
        let dir = tmp_dir("covered");
        let (mut wal, _) = Wal::open(&dir, 200, false).unwrap();
        for seq in 1..=40 {
            wal.append(&entry(seq)).unwrap();
        }
        wal.sync().unwrap();
        let n_before = list_segments(&dir).unwrap().len();
        assert!(n_before > 2);

        write_snapshot(&dir, &SceneTree::new(), 10, 1.0).unwrap();
        write_snapshot(&dir, &SceneTree::new(), 40, 4.0).unwrap();
        let report = compact(&dir, 40).unwrap();
        assert!(!report.segments_deleted.is_empty());
        assert_eq!(report.snapshots_deleted, 1, "seq-10 snapshot removed");
        assert!(report.bytes_freed > 0);

        // Only the active segment and the covering snapshot remain.
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);

        // The log still appends and replays past the snapshot.
        drop(wal);
        let (mut wal, report2) = Wal::open(&dir, 200, false).unwrap();
        wal.append(&entry(41)).unwrap();
        wal.sync().unwrap();
        assert!(report2.repaired_torn_tail.is_none());
        let tail = Wal::replay_after(&dir, 40).unwrap();
        assert_eq!(tail.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_coverage_keeps_uncovered_segments() {
        let dir = tmp_dir("partial");
        let (mut wal, _) = Wal::open(&dir, 200, false).unwrap();
        for seq in 1..=40 {
            wal.append(&entry(seq)).unwrap();
        }
        wal.sync().unwrap();
        let all = list_segments(&dir).unwrap();
        // Snapshot only covers up to 15: segments whose successor starts
        // later must survive.
        write_snapshot(&dir, &SceneTree::new(), 15, 1.5).unwrap();
        compact(&dir, 15).unwrap();
        let remaining = list_segments(&dir).unwrap();
        assert!(!remaining.is_empty() && remaining.len() < all.len() || all.len() == 1);
        // Everything after seq 15 still replays.
        let tail = Wal::replay_after(&dir, 15).unwrap();
        assert_eq!(tail.len(), 25);
        assert_eq!(tail[0].stamped.seq, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_segment_never_deleted() {
        let dir = tmp_dir("active");
        let (mut wal, _) = Wal::open(&dir, 1 << 20, false).unwrap();
        for seq in 1..=5 {
            wal.append(&entry(seq)).unwrap();
        }
        wal.sync().unwrap();
        write_snapshot(&dir, &SceneTree::new(), 5, 0.5).unwrap();
        let report = compact(&dir, 5).unwrap();
        assert!(report.segments_deleted.is_empty(), "single active segment kept");
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
