//! WAL segment files.
//!
//! ```text
//! segment := magic "RAVEWAL\0" (8) | version: u32 LE
//!          | index: u64 LE | base_seq: u64 LE      -- 28-byte header
//!          | record*                                -- see [`crate::record`]
//! ```
//!
//! `index` is the segment's position in the log (file names embed it too:
//! `wal-00000042.seg`); `base_seq` is the sequence number of the first
//! entry the segment may hold, which lets compaction decide coverage
//! without reading record bodies.

use crate::record::{encode_record, scan_records, TornTail, RECORD_HEADER_LEN};
use rave_scene::wire;
use rave_scene::AuditEntry;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

pub const SEGMENT_MAGIC: [u8; 8] = *b"RAVEWAL\0";
pub const SEGMENT_VERSION: u32 = 1;
pub const SEGMENT_HEADER_LEN: usize = 28;

/// Parsed segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    pub version: u32,
    pub index: u64,
    pub base_seq: u64,
}

impl SegmentHeader {
    pub fn encode(&self) -> [u8; SEGMENT_HEADER_LEN] {
        let mut out = [0u8; SEGMENT_HEADER_LEN];
        out[..8].copy_from_slice(&SEGMENT_MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..20].copy_from_slice(&self.index.to_le_bytes());
        out[20..28].copy_from_slice(&self.base_seq.to_le_bytes());
        out
    }

    pub fn decode(buf: &[u8]) -> io::Result<Self> {
        if buf.len() < SEGMENT_HEADER_LEN || buf[..8] != SEGMENT_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a RAVE WAL segment"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != SEGMENT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported segment version {version}"),
            ));
        }
        Ok(Self {
            version,
            index: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
            base_seq: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
        })
    }
}

/// `wal-00000042.seg`
pub fn segment_file_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

/// Inverse of [`segment_file_name`]; `None` for unrelated files.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    stem.parse().ok()
}

/// All segment paths in a directory, sorted by index.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for dent in std::fs::read_dir(dir)? {
        let dent = dent?;
        if let Some(idx) = dent.file_name().to_str().and_then(parse_segment_file_name) {
            out.push((idx, dent.path()));
        }
    }
    out.sort_by_key(|(idx, _)| *idx);
    Ok(out)
}

/// Read only the 28-byte header of a segment (compaction decides
/// coverage from headers without touching record bodies).
pub fn read_segment_header(path: &Path) -> io::Result<SegmentHeader> {
    let mut buf = [0u8; SEGMENT_HEADER_LEN];
    let mut f = File::open(path)?;
    f.read_exact(&mut buf)?;
    SegmentHeader::decode(&buf)
}

/// A fully scanned segment.
#[derive(Debug)]
pub struct SegmentContents {
    pub header: SegmentHeader,
    pub entries: Vec<AuditEntry>,
    /// Byte length of the intact prefix (header + clean records).
    pub clean_len: u64,
    /// Set when the record stream ended in a torn or corrupt record.
    pub torn: Option<TornTail>,
}

/// Read and verify a whole segment. Torn tails are reported, not
/// repaired; a record that passes its checksum but fails wire decode is
/// real corruption and errors out.
pub fn read_segment(path: &Path) -> io::Result<SegmentContents> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let header = SegmentHeader::decode(&buf)?;
    let scan = scan_records(&buf[SEGMENT_HEADER_LEN..]);
    let mut entries = Vec::with_capacity(scan.payloads.len());
    for payload in &scan.payloads {
        let entry = wire::decode_entry(payload).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })?;
        entries.push(entry);
    }
    Ok(SegmentContents {
        header,
        entries,
        clean_len: (SEGMENT_HEADER_LEN + scan.clean_len) as u64,
        torn: scan.torn,
    })
}

/// An open segment being appended to.
#[derive(Debug)]
pub struct SegmentWriter {
    pub path: PathBuf,
    pub header: SegmentHeader,
    file: File,
    /// Current byte length (header + records written so far).
    pub len: u64,
    /// Sequence number of the last entry written, or `base_seq - 1`.
    pub last_seq: u64,
}

impl SegmentWriter {
    /// Create a fresh segment file. Fails if it already exists (an index
    /// collision means two writers share the directory — never continue).
    pub fn create(dir: &Path, index: u64, base_seq: u64) -> io::Result<Self> {
        let path = dir.join(segment_file_name(index));
        let mut file = OpenOptions::new().write(true).create_new(true).open(&path)?;
        let header = SegmentHeader { version: SEGMENT_VERSION, index, base_seq };
        file.write_all(&header.encode())?;
        Ok(Self {
            path,
            header,
            file,
            len: SEGMENT_HEADER_LEN as u64,
            last_seq: base_seq.saturating_sub(1),
        })
    }

    /// Re-open an existing segment for append, truncating any torn tail
    /// left by a crash. Returns the writer positioned after the last
    /// intact record, plus what was recovered from the file.
    pub fn open_for_append(path: &Path) -> io::Result<(Self, SegmentContents)> {
        let contents = read_segment(path)?;
        if contents.torn.is_some() {
            // Repair: drop the torn tail so appends extend a clean log.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(contents.clean_len)?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let last_seq = contents
            .entries
            .last()
            .map(|e| e.stamped.seq)
            .unwrap_or_else(|| contents.header.base_seq.saturating_sub(1));
        Ok((
            Self {
                path: path.to_path_buf(),
                header: contents.header,
                file,
                len: contents.clean_len,
                last_seq,
            },
            contents,
        ))
    }

    /// Append one audit entry as a framed record.
    pub fn append(&mut self, entry: &AuditEntry) -> io::Result<()> {
        let payload = wire::encode_entry(entry);
        let mut framed = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        encode_record(&payload, &mut framed);
        self.file.write_all(&framed)?;
        self.len += framed.len() as u64;
        self.last_seq = entry.stamped.seq;
        Ok(())
    }

    /// Flush to the OS and fsync to the platter.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{NodeId, SceneUpdate, StampedUpdate};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rave-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(seq: u64) -> AuditEntry {
        AuditEntry {
            at_secs: seq as f64 * 0.5,
            stamped: StampedUpdate {
                seq,
                origin: "seg-test".into(),
                update: SceneUpdate::SetName { id: NodeId(0), name: format!("n{seq}") },
            },
        }
    }

    #[test]
    fn header_roundtrips_and_rejects_garbage() {
        let h = SegmentHeader { version: SEGMENT_VERSION, index: 7, base_seq: 1000 };
        assert_eq!(SegmentHeader::decode(&h.encode()).unwrap(), h);
        assert!(SegmentHeader::decode(b"NOTAWAL_____________________").is_err());
        let mut bad = h.encode();
        bad[8] = 99; // future version
        assert!(SegmentHeader::decode(&bad).is_err());
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(segment_file_name(42), "wal-00000042.seg");
        assert_eq!(parse_segment_file_name("wal-00000042.seg"), Some(42));
        assert_eq!(parse_segment_file_name("snap-0001.snap"), None);
        assert_eq!(parse_segment_file_name("wal-xx.seg"), None);
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = SegmentWriter::create(&dir, 0, 1).unwrap();
        for seq in 1..=5 {
            w.append(&entry(seq)).unwrap();
        }
        w.sync().unwrap();
        let c = read_segment(&w.path).unwrap();
        assert_eq!(c.header.index, 0);
        assert_eq!(c.entries.len(), 5);
        assert_eq!(c.entries[4].stamped.seq, 5);
        assert!(c.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_repaired_on_open() {
        let dir = tmp_dir("torn");
        let path = {
            let mut w = SegmentWriter::create(&dir, 3, 10).unwrap();
            w.append(&entry(10)).unwrap();
            w.append(&entry(11)).unwrap();
            w.sync().unwrap();
            w.path
        };
        // Simulate a crash mid-append: chop 3 bytes off the last record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let c = read_segment(&path).unwrap();
        assert_eq!(c.entries.len(), 1, "only the intact record survives");
        assert!(c.torn.is_some());

        // Re-open for append: tail truncated, log continues cleanly.
        let (mut w, recovered) = SegmentWriter::open_for_append(&path).unwrap();
        assert_eq!(recovered.entries.len(), 1);
        assert_eq!(w.last_seq, 10);
        w.append(&entry(11)).unwrap();
        w.sync().unwrap();
        let c2 = read_segment(&path).unwrap();
        assert_eq!(c2.entries.len(), 2);
        assert!(c2.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_file() {
        let dir = tmp_dir("dup");
        SegmentWriter::create(&dir, 0, 1).unwrap();
        assert!(SegmentWriter::create(&dir, 0, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_segments_sorted() {
        let dir = tmp_dir("list");
        for idx in [2u64, 0, 1] {
            SegmentWriter::create(&dir, idx, idx * 100 + 1).unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
