//! Snapshot checkpoints: the full scene tree, wire-encoded and
//! run-length compressed, written atomically.
//!
//! ```text
//! snapshot := magic "RAVESNAP" (8) | version: u32 LE
//!           | last_seq: u64 LE | at_secs: f64 LE
//!           | raw_len: u32 LE | comp_len: u32 LE
//!           | rle(wire_tree)                -- comp_len bytes
//!           | crc32(compressed): u32 LE
//! ```
//!
//! A snapshot at `last_seq` subsumes every WAL entry with `seq <=
//! last_seq`; recovery loads the newest intact snapshot and replays only
//! the WAL tail past it. Files are written to a temp name and renamed so
//! a crash mid-checkpoint can never shadow an older good snapshot with a
//! half-written one.

use crate::record::crc32;
use rave_compress::rle;
use rave_scene::{wire, SceneTree};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RAVESNAP";
pub const SNAPSHOT_VERSION: u32 = 1;
const FIXED_HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4 + 4;

/// A loaded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The snapshot covers every update up to and including this seq.
    pub last_seq: u64,
    /// Session time at which the checkpoint was taken.
    pub at_secs: f64,
    pub tree: SceneTree,
}

/// `snap-0000000000001234.snap`
pub fn snapshot_file_name(last_seq: u64) -> String {
    format!("snap-{last_seq:016}.snap")
}

/// Inverse of [`snapshot_file_name`]; `None` for unrelated files.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    stem.parse().ok()
}

/// All snapshot paths in a directory, sorted ascending by covered seq.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for dent in std::fs::read_dir(dir)? {
        let dent = dent?;
        if let Some(seq) = dent.file_name().to_str().and_then(parse_snapshot_file_name) {
            out.push((seq, dent.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// Serialize and write a checkpoint atomically. Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    tree: &SceneTree,
    last_seq: u64,
    at_secs: f64,
) -> io::Result<PathBuf> {
    let raw = wire::encode_tree(tree);
    let compressed = rle::encode(&raw);
    let mut buf = Vec::with_capacity(FIXED_HEADER_LEN + compressed.len() + 4);
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&last_seq.to_le_bytes());
    buf.extend_from_slice(&at_secs.to_le_bytes());
    buf.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
    buf.extend_from_slice(&compressed);
    buf.extend_from_slice(&crc32(&compressed).to_le_bytes());

    let final_path = dir.join(snapshot_file_name(last_seq));
    let tmp_path = dir.join(format!(".{}.tmp", snapshot_file_name(last_seq)));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&buf)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Read and verify one snapshot file.
pub fn read_snapshot(path: &Path) -> io::Result<Snapshot> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let bad = |msg: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("{}: {msg}", path.display()))
    };
    if buf.len() < FIXED_HEADER_LEN + 4 || buf[..8] != SNAPSHOT_MAGIC {
        return Err(bad("not a RAVE snapshot"));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(bad(&format!("unsupported snapshot version {version}")));
    }
    let last_seq = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let at_secs = f64::from_le_bytes(buf[20..28].try_into().unwrap());
    let raw_len = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
    let comp_len = u32::from_le_bytes(buf[32..36].try_into().unwrap()) as usize;
    if buf.len() != FIXED_HEADER_LEN + comp_len + 4 {
        return Err(bad("truncated snapshot"));
    }
    let compressed = &buf[FIXED_HEADER_LEN..FIXED_HEADER_LEN + comp_len];
    let stored_crc = u32::from_le_bytes(buf[FIXED_HEADER_LEN + comp_len..].try_into().unwrap());
    if crc32(compressed) != stored_crc {
        return Err(bad("snapshot checksum mismatch"));
    }
    let raw = rle::decode(compressed).ok_or_else(|| bad("corrupt compressed payload"))?;
    if raw.len() != raw_len {
        return Err(bad("decompressed size mismatch"));
    }
    let tree = wire::decode_tree(&raw).map_err(|e| bad(&e.to_string()))?;
    Ok(Snapshot { last_seq, at_secs, tree })
}

/// The newest snapshot that loads and verifies. Corrupt or torn snapshot
/// files (e.g. the machine died mid-rename on a non-atomic filesystem)
/// are skipped, falling back to the next older one.
pub fn latest_snapshot(dir: &Path) -> io::Result<Option<(PathBuf, Snapshot)>> {
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        match read_snapshot(&path) {
            Ok(snap) => return Ok(Some((path, snap))),
            Err(_) => continue,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::NodeKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rave-store-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_tree(n: usize) -> SceneTree {
        let mut tree = SceneTree::new();
        let root = tree.root();
        for i in 0..n {
            tree.add_node(root, format!("node-{i}"), NodeKind::Group).unwrap();
        }
        tree
    }

    #[test]
    fn snapshot_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let tree = sample_tree(20);
        let path = write_snapshot(&dir, &tree, 20, 3.5).unwrap();
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.last_seq, 20);
        assert_eq!(snap.at_secs, 3.5);
        assert_eq!(snap.tree, tree);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_picks_newest_and_skips_corrupt() {
        let dir = tmp_dir("latest");
        write_snapshot(&dir, &sample_tree(2), 10, 1.0).unwrap();
        write_snapshot(&dir, &sample_tree(4), 25, 2.0).unwrap();
        let (_, snap) = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.last_seq, 25);

        // Corrupt the newest: recovery falls back to seq 10.
        let newest = dir.join(snapshot_file_name(25));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (_, snap) = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.last_seq, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp_dir("empty");
        assert!(latest_snapshot(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let dir = tmp_dir("trunc");
        let path = write_snapshot(&dir, &sample_tree(8), 8, 0.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 7, FIXED_HEADER_LEN, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(read_snapshot(&path).is_err(), "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = tmp_dir("tmpclean");
        write_snapshot(&dir, &sample_tree(3), 3, 0.0).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|d| d.ok())
            .filter(|d| d.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
