//! Crash recovery: latest intact snapshot + WAL tail replay.
//!
//! The recovered state is exactly what the data service had durably
//! committed before it died: the snapshot restores the bulk of the scene
//! in one decode, then every WAL entry past the snapshot's sequence
//! number is re-applied in order. A torn final record (the append that
//! was in flight when the crash hit) is detected by its framing and
//! dropped — recovery always lands on a clean update boundary.

use crate::snapshot::latest_snapshot;
use crate::wal::Wal;
use rave_scene::{AuditEntry, SceneTree};
use std::io;
use std::path::Path;

/// The reconstructed session state.
#[derive(Debug)]
pub struct Recovery {
    /// The scene as of the last durably logged update.
    pub tree: SceneTree,
    /// Sequence number of the last recovered update (0 = empty store).
    pub last_seq: u64,
    /// Sequence the loaded snapshot covered (0 = no snapshot, full
    /// replay).
    pub snapshot_seq: u64,
    /// WAL entries replayed on top of the snapshot. A replacement data
    /// service seeds its audit trail from these — history at or before
    /// `snapshot_seq` is subsumed by the snapshot itself.
    pub entries: Vec<AuditEntry>,
}

/// Rebuild session state from a store directory. An empty or missing
/// directory recovers to a fresh scene at seq 0 (cold start and crash
/// recovery share one code path).
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    if !dir.exists() {
        return Ok(Recovery {
            tree: SceneTree::new(),
            last_seq: 0,
            snapshot_seq: 0,
            entries: Vec::new(),
        });
    }
    let (mut tree, snapshot_seq) = match latest_snapshot(dir)? {
        Some((_, snap)) => (snap.tree, snap.last_seq),
        None => (SceneTree::new(), 0),
    };
    let entries = Wal::replay_after(dir, snapshot_seq)?;
    let mut last_seq = snapshot_seq;
    for e in &entries {
        // Checksums passed, so a rejected update means the log and
        // snapshot genuinely disagree — corruption, not a crash artifact.
        e.stamped.update.apply(&mut tree).map_err(|err| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL entry seq {} does not apply: {err}", e.stamped.seq),
            )
        })?;
        last_seq = e.stamped.seq;
    }
    Ok(Recovery { tree, last_seq, snapshot_seq, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use rave_scene::{NodeKind, SceneUpdate, StampedUpdate};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rave-store-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Drive a live tree and a WAL in lockstep, as a data service would.
    fn run_session(dir: &Path, n: u64, snapshot_at: Option<u64>) -> SceneTree {
        let (mut wal, _) = Wal::open(dir, 512, false).unwrap();
        let mut tree = SceneTree::new();
        for seq in 1..=n {
            let id = tree.allocate_id();
            let update = SceneUpdate::AddNode {
                id,
                parent: tree.root(),
                name: format!("n{seq}"),
                kind: NodeKind::Group,
            };
            update.apply(&mut tree).unwrap();
            wal.append(&AuditEntry {
                at_secs: seq as f64,
                stamped: StampedUpdate { seq, origin: "sess".into(), update },
            })
            .unwrap();
            if snapshot_at == Some(seq) {
                write_snapshot(dir, &tree, seq, seq as f64).unwrap();
            }
        }
        wal.sync().unwrap();
        tree
    }

    #[test]
    fn empty_store_recovers_to_fresh_scene() {
        let dir = tmp_dir("fresh");
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 0);
        assert_eq!(rec.tree, SceneTree::new());
        assert!(rec.entries.is_empty());
    }

    #[test]
    fn wal_only_recovery_replays_everything() {
        let dir = tmp_dir("walonly");
        let live = run_session(&dir, 30, None);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 30);
        assert_eq!(rec.snapshot_seq, 0);
        assert_eq!(rec.entries.len(), 30);
        assert_eq!(rec.tree, live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_equals_full_replay() {
        let dir = tmp_dir("snaptail");
        let live = run_session(&dir, 30, Some(18));
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.snapshot_seq, 18);
        assert_eq!(rec.entries.len(), 12, "only the tail replayed");
        assert_eq!(rec.last_seq, 30);
        assert_eq!(rec.tree, live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_record_recovers_prefix() {
        let dir = tmp_dir("torn");
        run_session(&dir, 10, None);
        let (_, last) = crate::segment::list_segments(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() - 5]).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 9, "torn entry 10 dropped");
        assert_eq!(rec.tree.len(), 10, "root + 9 nodes");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
