//! Geometry payloads carried by scene nodes: polygon meshes, point clouds
//! and voxel volumes (the three data formats §3.1.1 names).

use rave_math::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// An indexed triangle mesh.
///
/// Vertex positions/normals/colors are parallel arrays; triangles index
/// into them. `texture_bytes` models texture memory demand without storing
/// actual texels (capacity planning needs the size, the software renderer
/// shades with vertex colors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshData {
    pub positions: Vec<Vec3>,
    /// Per-vertex normals; either empty (renderer uses face normals) or the
    /// same length as `positions`.
    pub normals: Vec<Vec3>,
    /// Per-vertex colors; either empty (renderer uses the node material) or
    /// the same length as `positions`.
    pub colors: Vec<Vec3>,
    pub triangles: Vec<[u32; 3]>,
    pub texture_bytes: u64,
}

impl MeshData {
    pub fn new(positions: Vec<Vec3>, triangles: Vec<[u32; 3]>) -> Self {
        Self { positions, normals: Vec::new(), colors: Vec::new(), triangles, texture_bytes: 0 }
    }

    pub fn triangle_count(&self) -> u64 {
        self.triangles.len() as u64
    }

    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Structural validity: index ranges and parallel-array lengths.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.positions.len() as u32;
        for (i, t) in self.triangles.iter().enumerate() {
            if t.iter().any(|&v| v >= n) {
                return Err(format!("triangle {i} references vertex out of range"));
            }
        }
        if !self.normals.is_empty() && self.normals.len() != self.positions.len() {
            return Err("normals length mismatch".into());
        }
        if !self.colors.is_empty() && self.colors.len() != self.positions.len() {
            return Err("colors length mismatch".into());
        }
        Ok(())
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(self.positions.iter().copied())
    }

    /// Bytes this mesh occupies on the wire / in memory (the planner's and
    /// the network model's size input). 12 bytes per Vec3, 12 per triangle.
    pub fn wire_size(&self) -> u64 {
        (self.positions.len() + self.normals.len() + self.colors.len()) as u64 * 12
            + self.triangles.len() as u64 * 12
            + self.texture_bytes
    }

    /// Compute smooth per-vertex normals by area-weighted face-normal
    /// accumulation (what the Java3D loader did for OBJ files without
    /// normals).
    pub fn compute_normals(&mut self) {
        let mut acc = vec![Vec3::ZERO; self.positions.len()];
        for t in &self.triangles {
            let [a, b, c] = [
                self.positions[t[0] as usize],
                self.positions[t[1] as usize],
                self.positions[t[2] as usize],
            ];
            // Cross product length is 2x area: weighting falls out for free.
            let fn_ = (b - a).cross(c - a);
            for &i in t {
                acc[i as usize] += fn_;
            }
        }
        self.normals = acc.into_iter().map(|n| n.normalized()).collect();
    }

    /// Split the mesh into two halves along the longest axis of its bounds
    /// by triangle centroid. Vertices are re-indexed per half (duplicating
    /// shared boundary vertices). Used by the dataset-distribution planner
    /// to carve a node that is too large for any single render service.
    ///
    /// Returns `None` when the mesh cannot be meaningfully split (fewer
    /// than 2 triangles, or all centroids identical).
    pub fn split_spatial(&self) -> Option<(MeshData, MeshData)> {
        if self.triangles.len() < 2 {
            return None;
        }
        let b = self.bounds();
        let e = b.extent();
        // Longest axis selector.
        let axis = if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        };
        let key = |p: Vec3| match axis {
            0 => p.x,
            1 => p.y,
            _ => p.z,
        };
        let centroid = |t: &[u32; 3]| {
            (self.positions[t[0] as usize]
                + self.positions[t[1] as usize]
                + self.positions[t[2] as usize])
                * (1.0 / 3.0)
        };
        // Median split by centroid key keeps the halves balanced even for
        // skewed geometry; a midpoint split can put everything on one side.
        let mut keys: Vec<f32> = self.triangles.iter().map(|t| key(centroid(t))).collect();
        let mid = keys.len() / 2;
        keys.select_nth_unstable_by(mid, |a, bb| a.total_cmp(bb));
        let pivot = keys[mid];
        let (mut left, mut right): (Vec<[u32; 3]>, Vec<[u32; 3]>) = (Vec::new(), Vec::new());
        for t in &self.triangles {
            if key(centroid(t)) < pivot {
                left.push(*t);
            } else {
                right.push(*t);
            }
        }
        if left.is_empty() || right.is_empty() {
            return None; // degenerate distribution (all centroids equal)
        }
        let half_tex = self.texture_bytes / 2;
        Some((self.extract(&left, half_tex), self.extract(&right, self.texture_bytes - half_tex)))
    }

    /// Build a sub-mesh containing only `tris`, with compacted vertex
    /// arrays.
    fn extract(&self, tris: &[[u32; 3]], texture_bytes: u64) -> MeshData {
        let mut remap = vec![u32::MAX; self.positions.len()];
        let mut positions = Vec::new();
        let mut normals = Vec::new();
        let mut colors = Vec::new();
        let mut triangles = Vec::with_capacity(tris.len());
        for t in tris {
            let mut nt = [0u32; 3];
            for (k, &vi) in t.iter().enumerate() {
                let vi = vi as usize;
                if remap[vi] == u32::MAX {
                    remap[vi] = positions.len() as u32;
                    positions.push(self.positions[vi]);
                    if !self.normals.is_empty() {
                        normals.push(self.normals[vi]);
                    }
                    if !self.colors.is_empty() {
                        colors.push(self.colors[vi]);
                    }
                }
                nt[k] = remap[vi];
            }
            triangles.push(nt);
        }
        MeshData { positions, normals, colors, triangles, texture_bytes }
    }
}

/// An unstructured point cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointCloudData {
    pub points: Vec<Vec3>,
    /// Per-point colors; empty or parallel to `points`.
    pub colors: Vec<Vec3>,
    /// Splat radius in world units.
    pub point_size: f32,
}

impl PointCloudData {
    pub fn new(points: Vec<Vec3>) -> Self {
        Self { points, colors: Vec::new(), point_size: 0.01 }
    }

    /// Split into two halves along the longest axis by median coordinate
    /// (the point analogue of [`MeshData::split_spatial`]). `None` for
    /// clouds with fewer than 2 points or all-coincident points.
    pub fn split_spatial(&self) -> Option<(PointCloudData, PointCloudData)> {
        if self.points.len() < 2 {
            return None;
        }
        let b = self.bounds();
        let e = b.extent();
        let axis = if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        };
        let key = |p: &Vec3| match axis {
            0 => p.x,
            1 => p.y,
            _ => p.z,
        };
        let mut keys: Vec<f32> = self.points.iter().map(key).collect();
        let mid = keys.len() / 2;
        keys.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        let pivot = keys[mid];
        let mut a =
            PointCloudData { points: Vec::new(), colors: Vec::new(), point_size: self.point_size };
        let mut b2 = a.clone();
        for (i, p) in self.points.iter().enumerate() {
            let (side_pts, side_cols) = if key(p) < pivot {
                (&mut a.points, &mut a.colors)
            } else {
                (&mut b2.points, &mut b2.colors)
            };
            side_pts.push(*p);
            if !self.colors.is_empty() {
                side_cols.push(self.colors[i]);
            }
        }
        if a.points.is_empty() || b2.points.is_empty() {
            return None;
        }
        Some((a, b2))
    }

    pub fn point_count(&self) -> u64 {
        self.points.len() as u64
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(self.points.iter().copied())
    }

    pub fn wire_size(&self) -> u64 {
        (self.points.len() + self.colors.len()) as u64 * 12 + 4
    }
}

/// A regular scalar-density voxel grid (the volume-rendering payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeData {
    /// Grid resolution `[nx, ny, nz]`; `voxels.len() == nx*ny*nz`.
    pub dims: [u32; 3],
    /// World-space size of one voxel cell.
    pub spacing: Vec3,
    /// Density samples in x-fastest order.
    pub voxels: Vec<u8>,
}

impl VolumeData {
    pub fn new(dims: [u32; 3], spacing: Vec3, voxels: Vec<u8>) -> Self {
        assert_eq!(
            voxels.len() as u64,
            dims[0] as u64 * dims[1] as u64 * dims[2] as u64,
            "voxel buffer size must match dims"
        );
        Self { dims, spacing, voxels }
    }

    pub fn voxel_count(&self) -> u64 {
        self.voxels.len() as u64
    }

    pub fn bounds(&self) -> Aabb {
        let ext = Vec3::new(
            self.dims[0] as f32 * self.spacing.x,
            self.dims[1] as f32 * self.spacing.y,
            self.dims[2] as f32 * self.spacing.z,
        );
        Aabb::new(Vec3::ZERO, ext)
    }

    pub fn wire_size(&self) -> u64 {
        self.voxels.len() as u64 + 24
    }

    /// Nearest-neighbour density at integer voxel coordinates (clamped).
    pub fn at(&self, x: i64, y: i64, z: i64) -> u8 {
        let cx = x.clamp(0, self.dims[0] as i64 - 1) as u64;
        let cy = y.clamp(0, self.dims[1] as i64 - 1) as u64;
        let cz = z.clamp(0, self.dims[2] as i64 - 1) as u64;
        let idx = cx + self.dims[0] as u64 * (cy + self.dims[1] as u64 * cz);
        self.voxels[idx as usize]
    }

    /// Trilinear density at a world-space point, in `[0, 1]`; 0 outside.
    pub fn sample(&self, p: Vec3) -> f32 {
        let gx = p.x / self.spacing.x - 0.5;
        let gy = p.y / self.spacing.y - 0.5;
        let gz = p.z / self.spacing.z - 0.5;
        if gx < -1.0
            || gy < -1.0
            || gz < -1.0
            || gx > self.dims[0] as f32
            || gy > self.dims[1] as f32
            || gz > self.dims[2] as f32
        {
            return 0.0;
        }
        let (x0, y0, z0) = (gx.floor() as i64, gy.floor() as i64, gz.floor() as i64);
        let (fx, fy, fz) = (gx - x0 as f32, gy - y0 as f32, gz - z0 as f32);
        let mut acc = 0.0;
        for dz in 0..2i64 {
            for dy in 0..2i64 {
                for dx in 0..2i64 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    acc += w * self.at(x0 + dx, y0 + dy, z0 + dz) as f32;
                }
            }
        }
        acc / 255.0
    }

    /// Split into two sub-bricks along the largest dimension, returning the
    /// bricks and the world-space Z offset of the second (used for
    /// back-to-front blending order when volume subsets are distributed —
    /// §6 "Subset blocks of the volume can be blended ... by considering
    /// their relative distance from the view").
    pub fn split_bricks(&self) -> Option<(VolumeData, VolumeData, Vec3)> {
        let axis = if self.dims[0] >= self.dims[1] && self.dims[0] >= self.dims[2] {
            0
        } else if self.dims[1] >= self.dims[2] {
            1
        } else {
            2
        };
        if self.dims[axis] < 2 {
            return None;
        }
        let cut = self.dims[axis] / 2;
        let mut d1 = self.dims;
        let mut d2 = self.dims;
        d1[axis] = cut;
        d2[axis] = self.dims[axis] - cut;
        let mut v1 = Vec::with_capacity((d1[0] * d1[1] * d1[2]) as usize);
        let mut v2 = Vec::with_capacity((d2[0] * d2[1] * d2[2]) as usize);
        for z in 0..self.dims[2] {
            for y in 0..self.dims[1] {
                for x in 0..self.dims[0] {
                    let coord = [x, y, z];
                    let v = self.at(x as i64, y as i64, z as i64);
                    if coord[axis] < cut {
                        v1.push(v);
                    } else {
                        v2.push(v);
                    }
                }
            }
        }
        let mut offset = Vec3::ZERO;
        let off = cut as f32
            * match axis {
                0 => self.spacing.x,
                1 => self.spacing.y,
                _ => self.spacing.z,
            };
        match axis {
            0 => offset.x = off,
            1 => offset.y = off,
            _ => offset.z = off,
        }
        Some((VolumeData::new(d1, self.spacing, v1), VolumeData::new(d2, self.spacing, v2), offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> MeshData {
        MeshData::new(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
    }

    #[test]
    fn validate_accepts_good_mesh() {
        assert!(quad().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_index() {
        let mut m = quad();
        m.triangles.push([0, 1, 9]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_normal_mismatch() {
        let mut m = quad();
        m.normals = vec![Vec3::Z];
        assert!(m.validate().is_err());
    }

    #[test]
    fn computed_normals_point_up_for_flat_quad() {
        let mut m = quad();
        m.compute_normals();
        assert_eq!(m.normals.len(), 4);
        for n in &m.normals {
            assert!((n.z - 1.0).abs() < 1e-6, "normal {n:?}");
        }
    }

    #[test]
    fn wire_size_counts_everything() {
        let mut m = quad();
        assert_eq!(m.wire_size(), 4 * 12 + 2 * 12);
        m.compute_normals();
        m.texture_bytes = 100;
        assert_eq!(m.wire_size(), 8 * 12 + 2 * 12 + 100);
    }

    #[test]
    fn split_partitions_triangles() {
        // A strip of 8 quads along X: splits cleanly in half.
        let mut positions = Vec::new();
        let mut triangles = Vec::new();
        for i in 0..9u32 {
            positions.push(Vec3::new(i as f32, 0.0, 0.0));
            positions.push(Vec3::new(i as f32, 1.0, 0.0));
        }
        for i in 0..8u32 {
            let b = i * 2;
            triangles.push([b, b + 2, b + 3]);
            triangles.push([b, b + 3, b + 1]);
        }
        let m = MeshData::new(positions, triangles);
        let (a, b) = m.split_spatial().expect("splittable");
        assert_eq!(a.triangle_count() + b.triangle_count(), m.triangle_count());
        assert!(a.triangle_count() > 0 && b.triangle_count() > 0);
        assert!(a.validate().is_ok() && b.validate().is_ok());
        // Split halves separate along X.
        assert!(a.bounds().max.x <= b.bounds().min.x + 1.01);
    }

    #[test]
    fn split_preserves_texture_budget() {
        let mut m = quad();
        m.texture_bytes = 101;
        // quad has 2 triangles; may or may not split, but if it does the
        // texture budget must be conserved.
        if let Some((a, b)) = m.split_spatial() {
            assert_eq!(a.texture_bytes + b.texture_bytes, 101);
        }
    }

    #[test]
    fn split_refuses_single_triangle() {
        let m = MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        assert!(m.split_spatial().is_none());
    }

    #[test]
    fn pointcloud_split_partitions_points() {
        let mut pc = PointCloudData::new(
            (0..100).map(|i| Vec3::new(i as f32, (i % 7) as f32, 0.0)).collect(),
        );
        pc.colors = (0..100).map(|i| Vec3::splat(i as f32 / 100.0)).collect();
        let (a, b) = pc.split_spatial().expect("splittable");
        assert_eq!(a.point_count() + b.point_count(), 100);
        assert_eq!(a.colors.len(), a.points.len());
        assert_eq!(b.colors.len(), b.points.len());
        // Halves separate along X (longest axis).
        assert!(a.bounds().max.x <= b.bounds().min.x);
        // Point size preserved.
        assert_eq!(a.point_size, pc.point_size);
    }

    #[test]
    fn pointcloud_split_refuses_degenerate() {
        assert!(PointCloudData::new(vec![Vec3::ZERO]).split_spatial().is_none());
        // All coincident points: one side would be empty.
        assert!(PointCloudData::new(vec![Vec3::ONE; 10]).split_spatial().is_none());
    }

    #[test]
    fn pointcloud_bounds_and_size() {
        let pc = PointCloudData::new(vec![Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0)]);
        assert_eq!(pc.bounds().max, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(pc.wire_size(), 2 * 12 + 4);
        assert_eq!(pc.point_count(), 2);
    }

    #[test]
    #[should_panic]
    fn volume_rejects_wrong_buffer() {
        VolumeData::new([2, 2, 2], Vec3::ONE, vec![0; 7]);
    }

    #[test]
    fn volume_sampling_interpolates() {
        // 2x1x1 grid: densities 0 and 255 along X.
        let v = VolumeData::new([2, 1, 1], Vec3::ONE, vec![0, 255]);
        let mid = v.sample(Vec3::new(1.0, 0.5, 0.5));
        assert!((mid - 0.5).abs() < 0.01, "mid sample {mid}");
        assert_eq!(v.sample(Vec3::new(-5.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn volume_split_conserves_voxels() {
        let voxels: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let v = VolumeData::new([4, 4, 4], Vec3::ONE, voxels);
        let (a, b, off) = v.split_bricks().expect("splittable");
        assert_eq!(a.voxel_count() + b.voxel_count(), 64);
        assert_eq!(off, Vec3::new(2.0, 0.0, 0.0));
        // Every original voxel present in exactly one brick: check a value
        // known to be in the second half.
        assert_eq!(v.at(3, 0, 0), b.at(1, 0, 0));
    }
}
