//! The scene tree proper.

use crate::cost::NodeCost;
use crate::node::{Node, NodeId, NodeKind, Transform};
use rave_math::{Aabb, Mat4};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Cached per-node subtree-cost aggregates, rebuilt lazily on the first
/// [`SceneTree::subtree_cost`] query after any structural edit. The
/// planner's feasibility pre-check and queue build hammer
/// `subtree_cost`/`total_cost`; without the cache each call re-walks the
/// whole `BTreeMap`, which made planning quadratic in scene size.
///
/// Interior mutability is a `Mutex` (not a `RefCell`) so `SceneTree`
/// stays `Sync` — the parallel rasterizer shares `&SceneTree` across
/// rayon workers. The lock is only ever held for a flag check or the
/// one-shot rebuild; reads after that are a `HashMap` lookup.
#[derive(Debug, Default)]
struct CostIndex(Mutex<CostIndexState>);

#[derive(Debug, Default)]
struct CostIndexState {
    valid: bool,
    subtree: HashMap<NodeId, NodeCost>,
}

impl Clone for CostIndex {
    /// Clones start cold: the copy rebuilds on first query rather than
    /// duplicating (and having to trust) the source's cache.
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// A scene tree: a rooted hierarchy of typed nodes.
///
/// Storage is a `BTreeMap` keyed by [`NodeId`] so iteration order is
/// deterministic (render services on different "machines" must walk the
/// same scene in the same order for compositing to be reproducible).
#[derive(Debug, Clone)]
pub struct SceneTree {
    nodes: BTreeMap<NodeId, Node>,
    root: NodeId,
    next_id: u64,
    /// Derived data only — never serialized, never compared.
    cost_index: CostIndex,
}

impl PartialEq for SceneTree {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.root == other.root && self.next_id == other.next_id
    }
}

// Manual serde impls (the vendored derive cannot skip fields): the wire
// shape is exactly what the derive produced before the cost index was
// added — a map of the three structural fields. Deserialized trees start
// with a cold cache.
impl Serialize for SceneTree {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("nodes".into(), self.nodes.to_value()),
            ("root".into(), self.root.to_value()),
            ("next_id".into(), self.next_id.to_value()),
        ])
    }
}

impl Deserialize for SceneTree {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = serde::expect_map(v, "SceneTree")?;
        Ok(Self {
            nodes: serde::de_field(m, "nodes", "SceneTree")?,
            root: serde::de_field(m, "root", "SceneTree")?,
            next_id: serde::de_field(m, "next_id", "SceneTree")?,
            cost_index: CostIndex::default(),
        })
    }
}

impl Default for SceneTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SceneTree {
    pub fn new() -> Self {
        let root = NodeId(0);
        let mut nodes = BTreeMap::new();
        nodes.insert(root, Node::new(root, "root", NodeKind::Group));
        Self { nodes, root, next_id: 1, cost_index: CostIndex::default() }
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        // The caller may rewrite the node's kind (e.g. `split_node`
        // demoting a mesh to a Group), which changes its cost.
        self.invalidate_cost_index();
        self.nodes.get_mut(&id)
    }

    /// Drop the cached subtree-cost aggregates; the next cost query
    /// rebuilds them in one O(n) pass.
    fn invalidate_cost_index(&mut self) {
        self.cost_index.0.get_mut().expect("cost index poisoned").valid = false;
    }

    /// Every node in id order (the map's deterministic iteration order).
    pub fn iter_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// The id the allocator would hand out next. Snapshots persist this so
    /// a recovered tree never re-issues an id burned by a removed node.
    pub fn id_allocator_state(&self) -> u64 {
        self.next_id
    }

    /// Reassemble a tree from its raw parts — the snapshot decode path.
    /// The caller guarantees structural validity (wire decode checks the
    /// root exists; `check_invariants` covers the rest in tests).
    pub(crate) fn from_parts(nodes: BTreeMap<NodeId, Node>, root: NodeId, next_id: u64) -> Self {
        Self { nodes, root, next_id, cost_index: CostIndex::default() }
    }

    /// Allocate the next id without inserting — the data service allocates
    /// ids before broadcasting `AddNode` updates.
    pub fn allocate_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Insert a new child of `parent`. Returns the id.
    pub fn add_node(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, TreeError> {
        let id = self.allocate_id();
        self.insert_with_id(id, parent, name, kind)?;
        Ok(id)
    }

    /// Insert a node under a caller-supplied id (the replication path:
    /// render services apply `AddNode` updates that carry the data
    /// service's id). Fails if the id is taken or the parent is missing.
    pub fn insert_with_id(
        &mut self,
        id: NodeId,
        parent: NodeId,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<(), TreeError> {
        if self.nodes.contains_key(&id) {
            return Err(TreeError::DuplicateId(id));
        }
        if !self.nodes.contains_key(&parent) {
            return Err(TreeError::MissingNode(parent));
        }
        let mut node = Node::new(id, name, kind);
        node.parent = Some(parent);
        self.nodes.insert(id, node);
        self.nodes.get_mut(&parent).expect("parent checked").children.push(id);
        self.next_id = self.next_id.max(id.0 + 1);
        self.invalidate_cost_index();
        Ok(())
    }

    /// Remove a node and its whole subtree. Removing the root is rejected.
    pub fn remove(&mut self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        if id == self.root {
            return Err(TreeError::CannotRemoveRoot);
        }
        let Some(parent) = self.nodes.get(&id).map(|n| n.parent) else {
            return Err(TreeError::MissingNode(id));
        };
        let mut removed = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let Some(node) = self.nodes.remove(&n) {
                stack.extend(node.children.iter().copied());
                removed.push(n);
            }
        }
        // Unlink from the parent.
        if let Some(p) = parent.and_then(|p| self.nodes.get_mut(&p)) {
            p.children.retain(|&c| c != id);
        }
        self.invalidate_cost_index();
        Ok(removed)
    }

    /// Pre-order traversal from `start` (inclusive), children in insertion
    /// order.
    pub fn descendants(&self, start: NodeId) -> Vec<NodeId> {
        // From the root the subtree is the whole tree, so the size is
        // known exactly; elsewhere `len()` is only an upper bound and
        // over-reserving for tiny subtrees of huge trees would hurt.
        let mut out = Vec::with_capacity(if start == self.root { self.nodes.len() } else { 0 });
        out.extend(self.descendants_iter(start).map(|n| n.id));
        out
    }

    /// Iterator form of [`SceneTree::descendants`]: same pre-order, same
    /// children-in-insertion-order, but yielding `&Node` with no output
    /// `Vec` — callers that filter or fold (the planner's queue build,
    /// `find_all`) traverse without materializing the id list or paying a
    /// second map lookup per visited node.
    pub fn descendants_iter(&self, start: NodeId) -> Descendants<'_> {
        Descendants { tree: self, stack: vec![start] }
    }

    /// Ancestors from the node's parent up to and including the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes.get(&id).and_then(|n| n.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes.get(&p).and_then(|n| n.parent);
        }
        out
    }

    /// The composed local-to-world matrix for a node.
    pub fn world_transform(&self, id: NodeId) -> Mat4 {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(node) = self.nodes.get(&c) else { break };
            chain.push(node.transform.matrix());
            cur = node.parent;
        }
        chain.into_iter().rev().fold(Mat4::IDENTITY, |acc, m| acc * m)
    }

    /// World-space bounds of a subtree.
    pub fn world_bounds(&self, id: NodeId) -> Aabb {
        let mut b = Aabb::EMPTY;
        for n in self.descendants(id) {
            let node = &self.nodes[&n];
            let local = node.kind.local_bounds();
            if !local.is_empty() {
                b = b.union(&local.transformed(&self.world_transform(n)));
            }
        }
        b
    }

    /// Aggregate cost of a subtree (§3.2.7's "how much data are contained
    /// in a given set of nodes").
    ///
    /// Served from the [`CostIndex`]: the first query after a structural
    /// edit rebuilds every node's aggregate in one O(n) bottom-up pass;
    /// queries until the next edit are a hash lookup. An unknown id costs
    /// [`NodeCost::ZERO`], exactly as the uncached walk summed an empty
    /// traversal.
    pub fn subtree_cost(&self, id: NodeId) -> NodeCost {
        let mut state = self.cost_index.0.lock().expect("cost index poisoned");
        if !state.valid {
            self.rebuild_cost_index(&mut state);
        }
        state.subtree.get(&id).copied().unwrap_or(NodeCost::ZERO)
    }

    /// Recompute every node's subtree aggregate. Walking the pre-order
    /// list in reverse visits children before their parents, so each
    /// parent just adds its children's already-final aggregates.
    fn rebuild_cost_index(&self, state: &mut CostIndexState) {
        state.subtree.clear();
        state.subtree.reserve(self.nodes.len());
        let order = self.descendants(self.root);
        for &id in order.iter().rev() {
            let node = &self.nodes[&id];
            let mut agg = node.kind.cost();
            for c in &node.children {
                if let Some(child) = state.subtree.get(c) {
                    agg += *child;
                }
            }
            state.subtree.insert(id, agg);
        }
        state.valid = true;
    }

    /// Total cost of the whole scene.
    pub fn total_cost(&self) -> NodeCost {
        self.subtree_cost(self.root)
    }

    /// Slash-separated path from the root, e.g. `/galleon/hull`.
    pub fn path_of(&self, id: NodeId) -> Option<String> {
        if id == self.root {
            return Some("/".into());
        }
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == self.root {
                break;
            }
            let node = self.nodes.get(&c)?;
            parts.push(node.name.clone());
            cur = node.parent;
        }
        parts.reverse();
        Some(format!("/{}", parts.join("/")))
    }

    /// Look a node up by slash path (first match wins among same-named
    /// siblings).
    pub fn find_by_path(&self, path: &str) -> Option<NodeId> {
        let mut cur = self.root;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let node = self.nodes.get(&cur)?;
            cur = *node
                .children
                .iter()
                .find(|c| self.nodes.get(c).map(|n| n.name.as_str()) == Some(part))?;
        }
        Some(cur)
    }

    /// Every node id whose kind matches `pred`, in deterministic order.
    pub fn find_all(&self, mut pred: impl FnMut(&Node) -> bool) -> Vec<NodeId> {
        self.descendants_iter(self.root).filter(|n| pred(n)).map(|n| n.id).collect()
    }

    /// The *ancestor closure* of a node set: the nodes themselves, all
    /// their descendants, plus every ancestor (as structure-only context).
    /// This is exactly what a render service receives for dataset
    /// distribution: "a subset of the scene tree, including the parent
    /// nodes to orientate the scene subset in the world" (§3.2.5).
    pub fn subset_closure(&self, roots: &[NodeId]) -> Vec<NodeId> {
        // Collect-then-dedup in a pre-sized Vec rather than inserting into
        // a BTreeSet node by node; the sorted, duplicate-free result is
        // identical.
        let mut included = Vec::with_capacity(self.nodes.len().min(roots.len().max(1) * 8));
        for &r in roots {
            included.extend(self.descendants_iter(r).map(|n| n.id));
            included.extend(self.ancestors(r));
        }
        included.sort_unstable();
        included.dedup();
        included
    }

    /// Extract a standalone subtree containing exactly `closure` nodes
    /// (typically from [`SceneTree::subset_closure`]). Ancestor nodes that
    /// are included for orientation keep their transforms but drop any
    /// content payload if they are not within a requested subtree
    /// (`content_roots`).
    pub fn extract_subset(&self, roots: &[NodeId]) -> SceneTree {
        let closure = self.subset_closure(roots); // sorted + deduped
        let mut in_subtree: Vec<NodeId> =
            roots.iter().flat_map(|&r| self.descendants_iter(r).map(|n| n.id)).collect();
        in_subtree.sort_unstable();
        in_subtree.dedup();
        let mut out = SceneTree::new();
        out.next_id = self.next_id;
        // The root's transform orients everything: copy it so world
        // transforms in the subset match the source exactly.
        let root_transform = self.nodes[&self.root].transform;
        out.node_mut(out.root).expect("fresh root").transform = root_transform;
        // Walk in pre-order from our root so parents are inserted first.
        for src in self.descendants_iter(self.root) {
            let id = src.id;
            if id == self.root || closure.binary_search(&id).is_err() {
                continue;
            }
            let parent = src.parent.expect("non-root has parent");
            let parent_in_out = if parent == self.root { out.root } else { parent };
            let kind = if in_subtree.binary_search(&id).is_ok() {
                src.kind.clone()
            } else {
                NodeKind::Group // ancestor kept for orientation only
            };
            out.insert_with_id(id, parent_in_out, src.name.clone(), kind)
                .expect("closure preserves parent-before-child");
            let n = out.node_mut(id).unwrap();
            n.transform = src.transform;
            n.version = src.version;
        }
        out
    }

    /// Merge another tree's nodes into this one, preserving ids: nodes
    /// already present keep their local state; missing nodes are inserted
    /// under their (id-mapped) parents, `subset`'s root mapping to this
    /// root. This is how a replica integrates an arriving snapshot or a
    /// migrated subtree without discarding content it already holds.
    pub fn merge_subset(&mut self, subset: &SceneTree) {
        for src in subset.descendants_iter(subset.root()) {
            let id = src.id;
            if id == subset.root() || self.contains(id) {
                continue;
            }
            let parent = src.parent.expect("non-root has parent");
            let parent = if parent == subset.root() { self.root } else { parent };
            if !self.contains(parent) {
                continue; // orphaned branch: parent was never replicated
            }
            self.insert_with_id(id, parent, src.name.clone(), src.kind.clone())
                .expect("id checked missing");
            let n = self.node_mut(id).expect("just inserted");
            n.transform = src.transform;
            n.version = src.version;
        }
    }

    /// Structural invariant check, used by property tests and debug
    /// assertions: every child link has a matching parent link, the root
    /// exists, and there are no orphans or cycles.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.nodes.contains_key(&self.root) {
            return Err("root missing".into());
        }
        let reachable = self.descendants(self.root);
        if reachable.len() != self.nodes.len() {
            return Err(format!(
                "orphaned nodes: {} reachable of {}",
                reachable.len(),
                self.nodes.len()
            ));
        }
        for node in self.nodes.values() {
            for c in &node.children {
                let child = self
                    .nodes
                    .get(c)
                    .ok_or_else(|| format!("dangling child {c} of {}", node.id))?;
                if child.parent != Some(node.id) {
                    return Err(format!("child {c} parent link mismatch"));
                }
            }
            if let Some(p) = node.parent {
                let parent =
                    self.nodes.get(&p).ok_or_else(|| format!("dangling parent of {}", node.id))?;
                if !parent.children.contains(&node.id) {
                    return Err(format!("parent {p} missing child link to {}", node.id));
                }
            }
        }
        Ok(())
    }

    /// Convenience: set a node's transform, bumping its version. Returns
    /// false if the node does not exist.
    ///
    /// Deliberately bypasses [`SceneTree::node_mut`]: transforms do not
    /// affect [`NodeCost`], so the cost index stays valid — avatar and
    /// camera motion (the per-frame update stream) never forces a cost
    /// rebuild.
    pub fn set_transform(&mut self, id: NodeId, t: Transform) -> bool {
        match self.nodes.get_mut(&id) {
            Some(n) => {
                n.transform = t;
                n.version += 1;
                true
            }
            None => false,
        }
    }
}

/// Pre-order subtree traversal, yielded lazily as `&Node`. Created by
/// [`SceneTree::descendants_iter`]; only the internal DFS stack
/// allocates, never an output list.
pub struct Descendants<'a> {
    tree: &'a SceneTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Node;

    fn next(&mut self) -> Option<&'a Node> {
        while let Some(id) = self.stack.pop() {
            if let Some(node) = self.tree.nodes.get(&id) {
                // Reverse so the first child is popped first.
                self.stack.extend(node.children.iter().rev().copied());
                return Some(node);
            }
        }
        None
    }
}

/// Errors from structural tree edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    MissingNode(NodeId),
    DuplicateId(NodeId),
    CannotRemoveRoot,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::MissingNode(id) => write!(f, "node {id} does not exist"),
            TreeError::DuplicateId(id) => write!(f, "node {id} already exists"),
            TreeError::CannotRemoveRoot => write!(f, "the root node cannot be removed"),
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::MeshData;
    use rave_math::Vec3;
    use std::sync::Arc;

    fn tri_mesh() -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]])))
    }

    #[test]
    fn new_tree_has_root_only() {
        let t = SceneTree::new();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert!(t.contains(t.root()));
        t.check_invariants().unwrap();
    }

    #[test]
    fn add_and_find_by_path() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "galleon", NodeKind::Group).unwrap();
        let h = t.add_node(g, "hull", tri_mesh()).unwrap();
        assert_eq!(t.find_by_path("/galleon/hull"), Some(h));
        assert_eq!(t.find_by_path("/galleon"), Some(g));
        assert_eq!(t.find_by_path("/nope"), None);
        assert_eq!(t.path_of(h).unwrap(), "/galleon/hull");
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_subtree_removes_descendants() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let c1 = t.add_node(g, "c1", tri_mesh()).unwrap();
        let c2 = t.add_node(g, "c2", tri_mesh()).unwrap();
        let removed = t.remove(g).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(!t.contains(g) && !t.contains(c1) && !t.contains(c2));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn cannot_remove_root() {
        let mut t = SceneTree::new();
        assert_eq!(t.remove(t.root()), Err(TreeError::CannotRemoveRoot));
    }

    #[test]
    fn remove_missing_errors() {
        let mut t = SceneTree::new();
        assert!(matches!(t.remove(NodeId(99)), Err(TreeError::MissingNode(_))));
    }

    #[test]
    fn ids_never_reused_after_removal() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        t.remove(a).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn world_transform_composes_down_the_chain() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(a, "b", NodeKind::Group).unwrap();
        t.set_transform(a, Transform::from_translation(Vec3::new(1.0, 0.0, 0.0)));
        t.set_transform(b, Transform::from_translation(Vec3::new(0.0, 2.0, 0.0)));
        let p = t.world_transform(b).transform_point(Vec3::ZERO);
        assert_eq!(p, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn world_bounds_include_transforms() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", tri_mesh()).unwrap();
        t.set_transform(a, Transform::from_translation(Vec3::new(10.0, 0.0, 0.0)));
        let b = t.world_bounds(t.root());
        assert!(b.contains(Vec3::new(10.5, 0.5, 0.0)));
        assert!(!b.contains(Vec3::ZERO));
    }

    #[test]
    fn subtree_cost_aggregates() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        t.add_node(g, "m1", tri_mesh()).unwrap();
        t.add_node(g, "m2", tri_mesh()).unwrap();
        assert_eq!(t.subtree_cost(g).polygons, 2);
        assert_eq!(t.total_cost().polygons, 2);
    }

    #[test]
    fn descendants_preorder_deterministic() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        let a1 = t.add_node(a, "a1", NodeKind::Group).unwrap();
        assert_eq!(t.descendants(t.root()), vec![t.root(), a, a1, b]);
    }

    #[test]
    fn ancestors_to_root() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(a, "b", NodeKind::Group).unwrap();
        assert_eq!(t.ancestors(b), vec![a, t.root()]);
        assert!(t.ancestors(t.root()).is_empty());
    }

    #[test]
    fn subset_closure_includes_parents_and_descendants() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let m = t.add_node(g, "m", tri_mesh()).unwrap();
        let leaf = t.add_node(m, "leaf", NodeKind::Group).unwrap();
        let other = t.add_node(t.root(), "other", tri_mesh()).unwrap();
        let closure = t.subset_closure(&[m]);
        assert!(closure.contains(&m));
        assert!(closure.contains(&leaf), "descendants included");
        assert!(closure.contains(&g), "ancestors included");
        assert!(!closure.contains(&other), "siblings excluded");
    }

    #[test]
    fn extract_subset_keeps_ids_transforms_and_strips_foreign_content() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", tri_mesh()).unwrap(); // ancestor WITH content
        t.set_transform(g, Transform::from_translation(Vec3::new(5.0, 0.0, 0.0)));
        let m = t.add_node(g, "m", tri_mesh()).unwrap();
        t.add_node(t.root(), "other", tri_mesh()).unwrap();
        let sub = t.extract_subset(&[m]);
        sub.check_invariants().unwrap();
        assert!(sub.contains(m));
        assert!(sub.contains(g));
        // Ancestor content stripped — only orientation kept.
        assert!(matches!(sub.node(g).unwrap().kind, NodeKind::Group));
        assert_eq!(sub.node(g).unwrap().transform.translation, Vec3::new(5.0, 0.0, 0.0));
        // The requested subtree keeps its payload.
        assert!(matches!(sub.node(m).unwrap().kind, NodeKind::Mesh(_)));
        // Cost of the subset is just the subtree's.
        assert_eq!(sub.total_cost().polygons, 1);
        // World transform identical in both trees.
        let p0 = t.world_transform(m).transform_point(Vec3::ZERO);
        let p1 = sub.world_transform(m).transform_point(Vec3::ZERO);
        assert_eq!(p0, p1);
    }

    #[test]
    fn merge_subset_adds_missing_keeps_existing() {
        let mut master = SceneTree::new();
        let a = master.add_node(master.root(), "a", tri_mesh()).unwrap();
        let b = master.add_node(master.root(), "b", tri_mesh()).unwrap();
        let subset_a = master.extract_subset(&[a]);
        let subset_b = master.extract_subset(&[b]);

        let mut replica = SceneTree::new();
        replica.merge_subset(&subset_a);
        assert!(replica.contains(a) && !replica.contains(b));
        // Locally mutate a, then merge b: a's local state survives.
        replica.set_transform(a, Transform::from_translation(Vec3::new(9.0, 0.0, 0.0)));
        replica.merge_subset(&subset_b);
        assert!(replica.contains(b));
        assert_eq!(
            replica.node(a).unwrap().transform.translation,
            Vec3::new(9.0, 0.0, 0.0),
            "existing node untouched by merge"
        );
        replica.check_invariants().unwrap();
        // Merging again is a no-op.
        let before = replica.len();
        replica.merge_subset(&subset_b);
        assert_eq!(replica.len(), before);
    }

    #[test]
    fn insert_with_duplicate_id_rejected() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        assert_eq!(
            t.insert_with_id(a, t.root(), "dup", NodeKind::Group),
            Err(TreeError::DuplicateId(a))
        );
    }

    #[test]
    fn find_all_filters() {
        let mut t = SceneTree::new();
        t.add_node(t.root(), "m", tri_mesh()).unwrap();
        t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let meshes = t.find_all(|n| matches!(n.kind, NodeKind::Mesh(_)));
        assert_eq!(meshes.len(), 1);
    }

    #[test]
    fn descendants_iter_matches_descendants() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", tri_mesh()).unwrap();
        let a1 = t.add_node(a, "a1", tri_mesh()).unwrap();
        let a2 = t.add_node(a, "a2", NodeKind::Group).unwrap();
        t.add_node(a2, "a2x", tri_mesh()).unwrap();
        for start in [t.root(), a, b, a1, a2, NodeId(999)] {
            let eager = t.descendants(start);
            let lazy: Vec<NodeId> = t.descendants_iter(start).map(|n| n.id).collect();
            assert_eq!(eager, lazy, "start {start:?}");
        }
    }

    #[test]
    fn cost_index_tracks_adds_removes_and_kind_changes() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let m1 = t.add_node(g, "m1", tri_mesh()).unwrap();
        assert_eq!(t.total_cost().polygons, 1);
        // Add after a cached query: cache must refresh.
        let m2 = t.add_node(g, "m2", tri_mesh()).unwrap();
        assert_eq!(t.subtree_cost(g).polygons, 2);
        // Remove.
        t.remove(m1).unwrap();
        assert_eq!(t.total_cost().polygons, 1);
        // Kind change through node_mut (the split_node pattern).
        t.node_mut(m2).unwrap().kind = NodeKind::Group;
        assert_eq!(t.total_cost().polygons, 0);
        // Missing nodes cost zero, as the uncached walk did.
        assert_eq!(t.subtree_cost(NodeId(999)), NodeCost::ZERO);
    }

    #[test]
    fn cost_index_survives_transform_updates_and_clone() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", tri_mesh()).unwrap();
        assert_eq!(t.total_cost().polygons, 1);
        // set_transform must not perturb cost results (and, by design,
        // does not invalidate the cache).
        t.set_transform(a, Transform::from_translation(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(t.total_cost().polygons, 1);
        // Clones answer independently and correctly.
        let mut c = t.clone();
        assert_eq!(c.total_cost().polygons, 1);
        c.remove(a).unwrap();
        assert_eq!(c.total_cost().polygons, 0);
        assert_eq!(t.total_cost().polygons, 1, "source unaffected by clone's edit");
    }

    #[test]
    fn subset_closure_is_sorted_and_duplicate_free() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let m = t.add_node(g, "m", tri_mesh()).unwrap();
        let leaf = t.add_node(m, "leaf", NodeKind::Group).unwrap();
        // Overlapping roots: m's subtree is inside g's.
        let closure = t.subset_closure(&[g, m, leaf]);
        let mut sorted = closure.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(closure, sorted);
        assert_eq!(closure, vec![t.root(), g, m, leaf]);
    }
}
