//! The scene tree proper: a flat generational arena with a hot/cold
//! data split.
//!
//! # Storage layout
//!
//! The paper's automatic distribution walks the scene constantly — the
//! planner costs and partitions it, interest management expands closures
//! over it, render services replay it. Up to 100k nodes the old
//! `BTreeMap<NodeId, Node>` held up; beyond that every traversal step was
//! a pointer chase that dragged node names, geometry handles and audit
//! versions through cache for no reason. Storage is now two parallel
//! slot-indexed arrays:
//!
//! - **hot** ([`HotNode`]): everything a traversal touches — intrusive
//!   topology links (parent / first–last child / prev–next sibling), the
//!   local transform, the node's own content cost, the one-byte
//!   [`KindTag`], and the slot generation;
//! - **cold** ([`ColdNode`]): everything it must not — the name, the full
//!   [`NodeKind`] payload, and the conflict-resolution version.
//!
//! Slots of removed nodes go on a free list and are reused under a bumped
//! generation, so the arena stays dense under churn and stale internal
//! handles can never alias a recycled slot. External identity is still
//! [`NodeId`] — the u64 the data service allocates, never reuses, and
//! writes into every wire message — mapped to its slot by an O(1)
//! integer-keyed index. Wire bytes, JSON serde shape and id allocation
//! semantics are exactly the pre-arena ones (pinned by
//! `tests/wire_fixture.rs`).
//!
//! # Derived caches
//!
//! Two lazily built caches (invalidated by `&mut self` edits, rebuilt
//! once on the next `&self` query, shareable across rayon workers):
//!
//! - [`FlatCache`]: the pre-order slot sequence plus, per slot, its
//!   position and subtree length. Pre-order puts every subtree in one
//!   contiguous run, so [`SceneTree::descendants_iter`] is a slice walk —
//!   no stack, no hashing, no per-step branching — and `iter_nodes`' id
//!   order is one sorted slot list. One O(n) pass over hot data builds
//!   all of it.
//! - subtree costs: a dense per-slot `Vec<NodeCost>` aggregated in one
//!   reverse-pre-order pass (children before parents) over hot data
//!   only. This replaces the old `Mutex<HashMap>` cost index; kind edits
//!   invalidate costs but keep the structure cache, and
//!   [`SceneTree::set_transform`] deliberately invalidates neither (the
//!   per-frame motion stream must never force a rebuild — pinned by a
//!   regression test below).

use crate::cost::NodeCost;
use crate::node::{Interaction, KindTag, Node, NodeId, NodeKind, Transform};
use rave_math::{Aabb, Mat4};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;

/// Sentinel for "no slot" in the intrusive topology links.
const NIL: u32 = u32::MAX;

/// Per-traversal node state. ~128 bytes, fetched sequentially by every
/// walk; nothing here owns an allocation.
#[derive(Debug, Clone)]
struct HotNode {
    id: NodeId,
    parent: u32,
    first_child: u32,
    last_child: u32,
    prev_sibling: u32,
    next_sibling: u32,
    child_count: u32,
    /// Bumped every time the slot is freed; an internal handle minted
    /// under an older generation can never alias the reused slot.
    generation: u32,
    alive: bool,
    tag: KindTag,
    transform: Transform,
    /// The node's *own* content cost (`NodeKind::cost()`), cached here so
    /// the subtree-cost rebuild never touches the cold payload.
    cost: NodeCost,
}

/// Cold per-node state: touched by lookups and edits, never by
/// traversal, costing or culling walks.
#[derive(Debug, Clone)]
struct ColdNode {
    name: String,
    kind: NodeKind,
    version: u64,
}

impl ColdNode {
    /// A freed slot's cold state: payload dropped, allocations released.
    fn vacant() -> Self {
        Self { name: String::new(), kind: NodeKind::Group, version: 0 }
    }
}

/// Multiply-shift hasher for the id→slot index: `NodeId` keys are
/// sequentially allocated u64s, so one odd-constant multiply mixes them
/// better than SipHash at a fraction of the cost.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type IdIndex = HashMap<NodeId, u32, BuildHasherDefault<IdHasher>>;

/// The structure cache: pre-order as one flat slot array. A subtree is a
/// contiguous range of `preorder`, so every traversal is a slice walk.
#[derive(Debug)]
struct FlatCache {
    /// Live slots in pre-order from the root (children in insertion
    /// order) — the exact order the old `Descendants` stack produced.
    preorder: Vec<u32>,
    /// Per slot: index into `preorder` (`NIL` for dead slots).
    pos: Vec<u32>,
    /// Per slot: number of pre-order entries in the slot's subtree
    /// (itself included).
    subtree_len: Vec<u32>,
    /// Live slots sorted by id — `iter_nodes`' deterministic order (the
    /// old `BTreeMap` iteration order).
    id_order: Vec<u32>,
}

/// What changed since a consumer last drained the tree's cost-dirt log.
/// This is the scheduler's dirty-set source: instead of re-walking the
/// whole scene after every edit, an incremental planner asks the tree
/// which nodes could have changed their own cost or plan eligibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostDirt {
    /// No cost-relevant edit since the last drain.
    Clean,
    /// Exactly these nodes were touched (sorted, deduplicated). A listed
    /// id may no longer exist (it was removed) — consumers re-resolve
    /// each id against the tree.
    Nodes(Vec<NodeId>),
    /// The log overflowed, the tree was cloned/deserialized, or it was
    /// never drained: assume every node changed.
    Everything,
}

/// Bounded recorder behind [`SceneTree::drain_cost_dirt`]. Mirrors the
/// cache-invalidation hooks: every edit that takes the cost cache also
/// lands here; `set_transform` is exempt from both.
#[derive(Debug, Clone)]
struct DirtLog {
    /// Monotone count of cost-invalidating edits — cheap staleness probe
    /// for consumers that only want to know *whether* anything changed.
    epoch: u64,
    nodes: Vec<NodeId>,
    /// Log overflowed (or was never drained): the node list is
    /// meaningless and the next drain reports [`CostDirt::Everything`].
    saturated: bool,
}

/// Past this many distinct touches between drains, enumerating dirt is
/// no cheaper than a full re-walk for the consumer — give up and report
/// `Everything`.
const DIRT_LOG_CAP: usize = 512;

impl DirtLog {
    /// Fresh trees (and clones / deserialized trees) start saturated: a
    /// consumer that has never drained must treat everything as dirty.
    fn saturated() -> Self {
        Self { epoch: 0, nodes: Vec::new(), saturated: true }
    }

    fn note(&mut self, id: NodeId) {
        self.epoch += 1;
        if self.saturated {
            return;
        }
        if self.nodes.len() >= DIRT_LOG_CAP {
            self.nodes = Vec::new();
            self.saturated = true;
        } else {
            self.nodes.push(id);
        }
    }
}

/// A scene tree: a rooted hierarchy of typed nodes over a flat
/// generational arena (see the module docs for the layout).
pub struct SceneTree {
    hot: Vec<HotNode>,
    cold: Vec<ColdNode>,
    /// Freed slots available for reuse (generation already bumped).
    free: Vec<u32>,
    /// Live node count (`hot.len()` minus freed slots).
    live: usize,
    index: IdIndex,
    root: NodeId,
    root_slot: u32,
    next_id: u64,
    /// Derived data only — never serialized, never compared. Rebuilt at
    /// most once per structural edit on the next `&self` query.
    structure: OnceLock<Box<FlatCache>>,
    /// Per-slot subtree-cost aggregates; invalidated by structural *and*
    /// kind edits, exempt from transform updates.
    costs: OnceLock<Vec<NodeCost>>,
    /// Cost-invalidation export for incremental consumers — like the
    /// caches, derived data: never serialized, never compared.
    dirt: DirtLog,
    /// Structure-invalidation export: which nodes were touched by edits
    /// that move pre-order positions (insert/remove/reparent). A second,
    /// independent log so the interest index and the scheduler can each
    /// drain at their own cadence without starving the other.
    sdirt: DirtLog,
}

impl std::fmt::Debug for SceneTree {
    /// Logical state only (nodes in id order, root, allocator), not the
    /// arena internals: two trees that compare equal print identically
    /// regardless of slot layout, free-list history or cache warmth.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SceneTree")
            .field("nodes", &self.iter_nodes().map(|n| n.to_node()).collect::<Vec<_>>())
            .field("root", &self.root)
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl Clone for SceneTree {
    /// Clones start with cold caches: the copy rebuilds on first query
    /// rather than duplicating (and having to trust) the source's.
    fn clone(&self) -> Self {
        Self {
            hot: self.hot.clone(),
            cold: self.cold.clone(),
            free: self.free.clone(),
            live: self.live,
            index: self.index.clone(),
            root: self.root,
            root_slot: self.root_slot,
            next_id: self.next_id,
            structure: OnceLock::new(),
            costs: OnceLock::new(),
            // The clone has new consumers with no drain history: report
            // Everything on their first drain.
            dirt: DirtLog::saturated(),
            sdirt: DirtLog::saturated(),
        }
    }
}

impl PartialEq for SceneTree {
    fn eq(&self, other: &Self) -> bool {
        if self.root != other.root || self.next_id != other.next_id || self.live != other.live {
            return false;
        }
        // Same node set, same per-node state, same children order —
        // exactly what the old `BTreeMap<NodeId, Node>` equality checked.
        // Slot layout is deliberately NOT compared: two trees that took
        // different edit paths to the same logical state are equal.
        self.iter_nodes().zip(other.iter_nodes()).all(|(a, b)| {
            a.id() == b.id()
                && a.name() == b.name()
                && a.transform() == b.transform()
                && a.kind() == b.kind()
                && a.version() == b.version()
                && a.parent() == b.parent()
                && a.children().eq(b.children())
        })
    }
}

// Manual serde impls: the wire shape is exactly what the derive produced
// for the pre-arena struct — a map of `nodes` (id-keyed `BTreeMap` of
// detached `Node` records), `root` and `next_id`. Deserialized trees
// start with cold caches.
impl Serialize for SceneTree {
    fn to_value(&self) -> serde::Value {
        let nodes: BTreeMap<NodeId, Node> =
            self.iter_nodes().map(|n| (n.id(), n.to_node())).collect();
        serde::Value::Map(vec![
            ("nodes".into(), nodes.to_value()),
            ("root".into(), self.root.to_value()),
            ("next_id".into(), self.next_id.to_value()),
        ])
    }
}

impl Deserialize for SceneTree {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = serde::expect_map(v, "SceneTree")?;
        let nodes: BTreeMap<NodeId, Node> = serde::de_field(m, "nodes", "SceneTree")?;
        let root: NodeId = serde::de_field(m, "root", "SceneTree")?;
        let next_id: u64 = serde::de_field(m, "next_id", "SceneTree")?;
        Self::from_parts(nodes, root, next_id)
            .map_err(|what| serde::DeError::new(format!("SceneTree: {what}")))
    }
}

impl Default for SceneTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SceneTree {
    pub fn new() -> Self {
        let root = NodeId(0);
        let mut tree = Self {
            hot: Vec::new(),
            cold: Vec::new(),
            free: Vec::new(),
            live: 0,
            index: IdIndex::default(),
            root,
            root_slot: 0,
            next_id: 1,
            structure: OnceLock::new(),
            costs: OnceLock::new(),
            dirt: DirtLog::saturated(),
            sdirt: DirtLog::saturated(),
        };
        tree.root_slot = tree.alloc_slot(root, NIL, "root", NodeKind::Group);
        tree
    }

    /// Pre-size the arena for `n` nodes (bulk scene builds).
    pub fn with_capacity(n: usize) -> Self {
        let mut t = Self::new();
        t.reserve(n.saturating_sub(1));
        t
    }

    /// Reserve arena room for `additional` more nodes.
    pub fn reserve(&mut self, additional: usize) {
        self.hot.reserve(additional);
        self.cold.reserve(additional);
        self.index.reserve(additional);
    }

    // ---- slot plumbing --------------------------------------------------

    #[inline]
    fn slot(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Allocate a slot (reusing the free list) and link nothing: the
    /// caller wires topology.
    fn alloc_slot(
        &mut self,
        id: NodeId,
        parent: u32,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> u32 {
        let cost = kind.cost();
        let tag = kind.tag();
        let cold = ColdNode { name: name.into(), kind, version: 0 };
        let slot = match self.free.pop() {
            Some(s) => {
                let gen = self.hot[s as usize].generation;
                self.hot[s as usize] = HotNode {
                    id,
                    parent,
                    first_child: NIL,
                    last_child: NIL,
                    prev_sibling: NIL,
                    next_sibling: NIL,
                    child_count: 0,
                    generation: gen,
                    alive: true,
                    tag,
                    transform: Transform::IDENTITY,
                    cost,
                };
                self.cold[s as usize] = cold;
                s
            }
            None => {
                let s = self.hot.len() as u32;
                self.hot.push(HotNode {
                    id,
                    parent,
                    first_child: NIL,
                    last_child: NIL,
                    prev_sibling: NIL,
                    next_sibling: NIL,
                    child_count: 0,
                    generation: 0,
                    alive: true,
                    tag,
                    transform: Transform::IDENTITY,
                    cost,
                });
                self.cold.push(cold);
                s
            }
        };
        self.index.insert(id, slot);
        self.live += 1;
        slot
    }

    /// Append `child` as the last child of `parent` (insertion order is
    /// sibling-link order).
    fn link_last_child(&mut self, parent: u32, child: u32) {
        let prev_last = self.hot[parent as usize].last_child;
        self.hot[child as usize].prev_sibling = prev_last;
        self.hot[child as usize].next_sibling = NIL;
        self.hot[child as usize].parent = parent;
        if prev_last == NIL {
            self.hot[parent as usize].first_child = child;
        } else {
            self.hot[prev_last as usize].next_sibling = child;
        }
        self.hot[parent as usize].last_child = child;
        self.hot[parent as usize].child_count += 1;
    }

    /// Detach `child` from its parent's sibling chain.
    fn unlink_child(&mut self, child: u32) {
        let (parent, prev, next) = {
            let h = &self.hot[child as usize];
            (h.parent, h.prev_sibling, h.next_sibling)
        };
        if prev == NIL {
            self.hot[parent as usize].first_child = next;
        } else {
            self.hot[prev as usize].next_sibling = next;
        }
        if next == NIL {
            self.hot[parent as usize].last_child = prev;
        } else {
            self.hot[next as usize].prev_sibling = prev;
        }
        self.hot[parent as usize].child_count -= 1;
        let h = &mut self.hot[child as usize];
        h.prev_sibling = NIL;
        h.next_sibling = NIL;
    }

    fn invalidate_structure(&mut self) {
        self.structure.take();
        self.costs.take();
    }

    fn invalidate_costs(&mut self) {
        self.costs.take();
    }

    /// The structure cache, built on first use after an edit: one O(n)
    /// pass over hot data produces pre-order, per-slot positions,
    /// subtree lengths and the id-sorted order.
    fn flat(&self) -> &FlatCache {
        self.structure.get_or_init(|| {
            let n = self.hot.len();
            let mut preorder = Vec::with_capacity(self.live);
            let mut pos = vec![NIL; n];
            let mut subtree_len = vec![0u32; n];
            let mut stack = Vec::with_capacity(64);
            stack.push(self.root_slot);
            while let Some(s) = stack.pop() {
                pos[s as usize] = preorder.len() as u32;
                preorder.push(s);
                subtree_len[s as usize] = 1;
                // Push children last→first so the first child pops first
                // (the old Descendants stack order).
                let mut c = self.hot[s as usize].last_child;
                while c != NIL {
                    stack.push(c);
                    c = self.hot[c as usize].prev_sibling;
                }
            }
            // Children precede parents in reverse pre-order, so one
            // reverse sweep finalizes every subtree length.
            for &s in preorder.iter().rev() {
                let p = self.hot[s as usize].parent;
                if p != NIL {
                    subtree_len[p as usize] += subtree_len[s as usize];
                }
            }
            let mut id_order = preorder.clone();
            id_order.sort_unstable_by_key(|&s| self.hot[s as usize].id);
            Box::new(FlatCache { preorder, pos, subtree_len, id_order })
        })
    }

    /// The subtree-cost cache: own costs seeded from the hot array, then
    /// one reverse-pre-order sweep adds children into parents.
    fn cost_cache(&self) -> &[NodeCost] {
        self.costs.get_or_init(|| {
            let flat = self.flat();
            let mut agg = vec![NodeCost::ZERO; self.hot.len()];
            for &s in &flat.preorder {
                agg[s as usize] = self.hot[s as usize].cost;
            }
            for &s in flat.preorder.iter().rev() {
                let p = self.hot[s as usize].parent;
                if p != NIL {
                    let c = agg[s as usize];
                    agg[p as usize] += c;
                }
            }
            agg
        })
    }

    // ---- queries --------------------------------------------------------

    pub fn root(&self) -> NodeId {
        self.root
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live <= 1
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    pub fn node(&self, id: NodeId) -> Option<NodeRef<'_>> {
        self.slot(id).map(|slot| NodeRef { tree: self, slot })
    }

    /// Mutable access to one node's editable state. Conservatively
    /// invalidates the cost cache (the caller may rewrite the node's
    /// kind, e.g. `split_node` demoting a mesh to a Group); the
    /// structure cache survives.
    pub fn node_mut(&mut self, id: NodeId) -> Option<NodeMut<'_>> {
        let slot = self.slot(id)?;
        self.invalidate_costs();
        self.dirt.note(id);
        Some(NodeMut { tree: self, slot, kind_touched: false })
    }

    /// Every node in id order (the old map's deterministic iteration
    /// order — render services on different "machines" must walk the
    /// same scene in the same order for compositing to be reproducible).
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeRef<'_>> + '_ {
        self.flat().id_order.iter().map(move |&slot| NodeRef { tree: self, slot })
    }

    /// The id the allocator would hand out next. Snapshots persist this so
    /// a recovered tree never re-issues an id burned by a removed node.
    pub fn id_allocator_state(&self) -> u64 {
        self.next_id
    }

    /// Reassemble a tree from detached records — the snapshot/serde decode
    /// path. Children order comes from each record's `children` list (the
    /// wire-authoritative order); the records' structural claims are
    /// verified (root present, every child link matched by a parent link,
    /// no unreachable nodes), since arena assembly would otherwise turn a
    /// corrupt snapshot into silent node loss.
    pub(crate) fn from_parts(
        nodes: BTreeMap<NodeId, Node>,
        root: NodeId,
        next_id: u64,
    ) -> Result<Self, &'static str> {
        let Some(root_rec) = nodes.get(&root) else { return Err("root node missing") };
        let mut tree = Self {
            hot: Vec::with_capacity(nodes.len()),
            cold: Vec::with_capacity(nodes.len()),
            free: Vec::new(),
            live: 0,
            index: IdIndex::default(),
            root,
            root_slot: 0,
            next_id,
            structure: OnceLock::new(),
            costs: OnceLock::new(),
            dirt: DirtLog::saturated(),
            sdirt: DirtLog::saturated(),
        };
        tree.index.reserve(nodes.len());
        tree.root_slot = tree.alloc_slot(root, NIL, root_rec.name.clone(), root_rec.kind.clone());
        tree.hot[tree.root_slot as usize].transform = root_rec.transform;
        tree.cold[tree.root_slot as usize].version = root_rec.version;
        // Pre-order DFS over the records' children lists: parents are
        // always materialized before their children.
        let mut stack: Vec<(NodeId, u32)> =
            root_rec.children.iter().rev().map(|&c| (c, tree.root_slot)).collect();
        while let Some((id, parent_slot)) = stack.pop() {
            let rec = nodes.get(&id).ok_or("child link to missing node")?;
            if rec.parent != Some(self_id(&tree, parent_slot)) {
                return Err("child/parent link mismatch");
            }
            if tree.index.contains_key(&id) {
                return Err("node reachable twice (cycle or duplicate child link)");
            }
            let slot = tree.alloc_slot(id, parent_slot, rec.name.clone(), rec.kind.clone());
            tree.link_last_child(parent_slot, slot);
            tree.hot[slot as usize].transform = rec.transform;
            tree.cold[slot as usize].version = rec.version;
            for &c in rec.children.iter().rev() {
                stack.push((c, slot));
            }
        }
        if tree.live != nodes.len() {
            return Err("unreachable nodes in record set");
        }
        if tree.next_id <= nodes.keys().next_back().map_or(0, |id| id.0) {
            // Tolerate (don't reject) a stale allocator: advance past the
            // largest live id exactly as `insert_with_id` would.
            tree.next_id = nodes.keys().next_back().unwrap().0 + 1;
        }
        Ok(tree)
    }

    /// Allocate the next id without inserting — the data service allocates
    /// ids before broadcasting `AddNode` updates.
    pub fn allocate_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Insert a new child of `parent`. Returns the id.
    pub fn add_node(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, TreeError> {
        let id = self.allocate_id();
        self.insert_with_id(id, parent, name, kind)?;
        Ok(id)
    }

    /// Insert a node under a caller-supplied id (the replication path:
    /// render services apply `AddNode` updates that carry the data
    /// service's id). Fails if the id is taken or the parent is missing.
    pub fn insert_with_id(
        &mut self,
        id: NodeId,
        parent: NodeId,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<(), TreeError> {
        if self.contains(id) {
            return Err(TreeError::DuplicateId(id));
        }
        let Some(parent_slot) = self.slot(parent) else {
            return Err(TreeError::MissingNode(parent));
        };
        let slot = self.alloc_slot(id, parent_slot, name, kind);
        self.link_last_child(parent_slot, slot);
        self.next_id = self.next_id.max(id.0 + 1);
        self.invalidate_structure();
        self.dirt.note(id);
        self.sdirt.note(id);
        Ok(())
    }

    /// Remove a node and its whole subtree. Removing the root is rejected.
    /// Returns the removed ids (subtree in last-child-first DFS order,
    /// matching the pre-arena implementation).
    pub fn remove(&mut self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        if id == self.root {
            return Err(TreeError::CannotRemoveRoot);
        }
        let Some(slot) = self.slot(id) else {
            return Err(TreeError::MissingNode(id));
        };
        self.unlink_child(slot);
        let mut removed = Vec::new();
        let mut stack = vec![slot];
        while let Some(s) = stack.pop() {
            let h = &self.hot[s as usize];
            removed.push(h.id);
            // Push first→last so the last child pops first — the order the
            // old `stack.extend(children)` produced.
            let mut c = h.first_child;
            while c != NIL {
                stack.push(c);
                c = self.hot[c as usize].next_sibling;
            }
            self.index.remove(&self.hot[s as usize].id);
            let h = &mut self.hot[s as usize];
            h.alive = false;
            h.generation = h.generation.wrapping_add(1);
            h.first_child = NIL;
            h.last_child = NIL;
            h.child_count = 0;
            self.cold[s as usize] = ColdNode::vacant();
            self.free.push(s);
        }
        self.live -= removed.len();
        self.invalidate_structure();
        for &id in &removed {
            self.dirt.note(id);
            self.sdirt.note(id);
        }
        Ok(removed)
    }

    /// Move a subtree under a new parent, appended as its last child.
    /// O(1) link surgery in the arena (plus one ancestor walk for the
    /// cycle check); the subtree keeps every id, transform and version.
    pub fn reparent(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        if id == self.root {
            return Err(TreeError::CannotReparentRoot);
        }
        let Some(slot) = self.slot(id) else {
            return Err(TreeError::MissingNode(id));
        };
        let Some(parent_slot) = self.slot(new_parent) else {
            return Err(TreeError::MissingNode(new_parent));
        };
        // Reject moves into the node's own subtree (including itself).
        let mut cur = parent_slot;
        while cur != NIL {
            if cur == slot {
                return Err(TreeError::WouldCreateCycle(id));
            }
            cur = self.hot[cur as usize].parent;
        }
        if self.hot[slot as usize].parent != parent_slot {
            self.unlink_child(slot);
            self.link_last_child(parent_slot, slot);
        } else {
            // Same parent: move to the end of the sibling order.
            self.unlink_child(slot);
            self.link_last_child(parent_slot, slot);
        }
        self.invalidate_structure();
        // A reparent leaves the node's own cost unchanged, but consumers
        // tracking subtree membership still want to hear about it.
        self.dirt.note(id);
        self.sdirt.note(id);
        Ok(())
    }

    /// Pre-order traversal from `start` (inclusive), children in insertion
    /// order.
    pub fn descendants(&self, start: NodeId) -> Vec<NodeId> {
        self.descendants_iter(start).map(|n| n.id()).collect()
    }

    /// Iterator form of [`SceneTree::descendants`]: same pre-order, same
    /// children-in-insertion-order, yielding [`NodeRef`]s. A subtree is a
    /// contiguous range of the cached pre-order, so this is a slice walk
    /// over dense `u32`s — no DFS stack, no per-step lookups.
    pub fn descendants_iter(&self, start: NodeId) -> Descendants<'_> {
        let slots: &[u32] = match self.slot(start) {
            Some(s) => {
                let flat = self.flat();
                let p = flat.pos[s as usize] as usize;
                let len = flat.subtree_len[s as usize] as usize;
                &flat.preorder[p..p + len]
            }
            None => &[],
        };
        Descendants { tree: self, slots: slots.iter() }
    }

    /// Ancestors from the node's parent up to and including the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let Some(mut cur) = self.slot(id) else { return out };
        loop {
            let p = self.hot[cur as usize].parent;
            if p == NIL {
                break;
            }
            out.push(self.hot[p as usize].id);
            cur = p;
        }
        out
    }

    /// The composed local-to-world matrix for a node.
    pub fn world_transform(&self, id: NodeId) -> Mat4 {
        let mut chain = Vec::new();
        let mut cur = match self.slot(id) {
            Some(s) => s,
            None => return Mat4::IDENTITY,
        };
        loop {
            chain.push(self.hot[cur as usize].transform.matrix());
            let p = self.hot[cur as usize].parent;
            if p == NIL {
                break;
            }
            cur = p;
        }
        chain.into_iter().rev().fold(Mat4::IDENTITY, |acc, m| acc * m)
    }

    /// World-space bounds of a subtree.
    pub fn world_bounds(&self, id: NodeId) -> Aabb {
        let mut b = Aabb::EMPTY;
        for n in self.descendants_iter(id) {
            let local = n.kind().local_bounds();
            if !local.is_empty() {
                b = b.union(&local.transformed(&self.world_transform(n.id())));
            }
        }
        b
    }

    /// Aggregate cost of a subtree (§3.2.7's "how much data are contained
    /// in a given set of nodes").
    ///
    /// Served from the dense cost cache: the first query after an edit
    /// aggregates every node in one O(n) reverse-pre-order pass over hot
    /// data; queries until the next edit are two array reads. An unknown
    /// id costs [`NodeCost::ZERO`], exactly as the uncached walk summed an
    /// empty traversal.
    pub fn subtree_cost(&self, id: NodeId) -> NodeCost {
        match self.slot(id) {
            Some(s) => self.cost_cache()[s as usize],
            None => NodeCost::ZERO,
        }
    }

    /// Total cost of the whole scene.
    pub fn total_cost(&self) -> NodeCost {
        self.subtree_cost(self.root)
    }

    /// Slash-separated path from the root, e.g. `/galleon/hull`.
    pub fn path_of(&self, id: NodeId) -> Option<String> {
        if id == self.root {
            return Some("/".into());
        }
        let mut parts = Vec::new();
        let mut cur = self.slot(id)?;
        while cur != self.root_slot {
            parts.push(self.cold[cur as usize].name.as_str());
            cur = self.hot[cur as usize].parent;
            if cur == NIL {
                break;
            }
        }
        parts.reverse();
        Some(format!("/{}", parts.join("/")))
    }

    /// Look a node up by slash path (first match wins among same-named
    /// siblings).
    pub fn find_by_path(&self, path: &str) -> Option<NodeId> {
        let mut cur = self.root_slot;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let mut c = self.hot[cur as usize].first_child;
            loop {
                if c == NIL {
                    return None;
                }
                if self.cold[c as usize].name == part {
                    break;
                }
                c = self.hot[c as usize].next_sibling;
            }
            cur = c;
        }
        Some(self.hot[cur as usize].id)
    }

    /// Every node id whose kind matches `pred`, in deterministic
    /// (pre-order) order.
    pub fn find_all(&self, mut pred: impl FnMut(NodeRef<'_>) -> bool) -> Vec<NodeId> {
        self.descendants_iter(self.root).filter(|n| pred(*n)).map(|n| n.id()).collect()
    }

    /// The *ancestor closure* of a node set: the nodes themselves, all
    /// their descendants, plus every ancestor (as structure-only context).
    /// This is exactly what a render service receives for dataset
    /// distribution: "a subset of the scene tree, including the parent
    /// nodes to orientate the scene subset in the world" (§3.2.5).
    pub fn subset_closure(&self, roots: &[NodeId]) -> Vec<NodeId> {
        // Collect-then-dedup in a pre-sized Vec rather than inserting into
        // a BTreeSet node by node; the sorted, duplicate-free result is
        // identical.
        let mut included = Vec::with_capacity(self.live.min(roots.len().max(1) * 8));
        for &r in roots {
            included.extend(self.descendants_iter(r).map(|n| n.id()));
            included.extend(self.ancestors(r));
        }
        included.sort_unstable();
        included.dedup();
        included
    }

    /// Extract a standalone subtree containing exactly the closure of
    /// `roots` (see [`SceneTree::subset_closure`]). Ancestor nodes that
    /// are included for orientation keep their transforms but drop any
    /// content payload if they are not within a requested subtree.
    pub fn extract_subset(&self, roots: &[NodeId]) -> SceneTree {
        let closure = self.subset_closure(roots); // sorted + deduped
        let mut in_subtree: Vec<NodeId> =
            roots.iter().flat_map(|&r| self.descendants_iter(r).map(|n| n.id())).collect();
        in_subtree.sort_unstable();
        in_subtree.dedup();
        let mut out = SceneTree::with_capacity(closure.len());
        out.next_id = self.next_id;
        // The root's transform orients everything: copy it so world
        // transforms in the subset match the source exactly.
        out.hot[out.root_slot as usize].transform = self.hot[self.root_slot as usize].transform;
        // Walk in pre-order from our root so parents are inserted first.
        for src in self.descendants_iter(self.root) {
            let id = src.id();
            if id == self.root || closure.binary_search(&id).is_err() {
                continue;
            }
            let parent = src.parent().expect("non-root has parent");
            let parent_in_out = if parent == self.root { out.root } else { parent };
            let kind = if in_subtree.binary_search(&id).is_ok() {
                src.kind().clone()
            } else {
                NodeKind::Group // ancestor kept for orientation only
            };
            out.insert_with_id(id, parent_in_out, src.name(), kind)
                .expect("closure preserves parent-before-child");
            let slot = out.slot(id).expect("just inserted");
            out.hot[slot as usize].transform = src.transform();
            out.cold[slot as usize].version = src.version();
        }
        out
    }

    /// Merge another tree's nodes into this one, preserving ids: nodes
    /// already present keep their local state; missing nodes are inserted
    /// under their (id-mapped) parents, `subset`'s root mapping to this
    /// root. This is how a replica integrates an arriving snapshot or a
    /// migrated subtree without discarding content it already holds.
    pub fn merge_subset(&mut self, subset: &SceneTree) {
        for src in subset.descendants_iter(subset.root()) {
            let id = src.id();
            if id == subset.root() || self.contains(id) {
                continue;
            }
            let parent = src.parent().expect("non-root has parent");
            let parent = if parent == subset.root() { self.root } else { parent };
            if !self.contains(parent) {
                continue; // orphaned branch: parent was never replicated
            }
            self.insert_with_id(id, parent, src.name(), src.kind().clone())
                .expect("id checked missing");
            let slot = self.slot(id).expect("just inserted");
            self.hot[slot as usize].transform = src.transform();
            self.cold[slot as usize].version = src.version();
        }
    }

    /// Structural invariant check, used by property tests and debug
    /// assertions: the id index is a bijection onto live slots, sibling
    /// links are doubly consistent, every child's parent link matches,
    /// the free list covers exactly the dead slots, and every live node
    /// is reachable from the root.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.contains(self.root) {
            return Err("root missing".into());
        }
        if self.slot(self.root) != Some(self.root_slot) {
            return Err("root slot mapping broken".into());
        }
        let alive_count = self.hot.iter().filter(|h| h.alive).count();
        if alive_count != self.live {
            return Err(format!("live count {} but {} alive slots", self.live, alive_count));
        }
        if self.index.len() != self.live {
            return Err(format!("index has {} entries for {} live", self.index.len(), self.live));
        }
        if self.free.len() != self.hot.len() - self.live {
            return Err(format!(
                "free list {} != {} dead slots",
                self.free.len(),
                self.hot.len() - self.live
            ));
        }
        for (&id, &slot) in &self.index {
            let h = self.hot.get(slot as usize).ok_or("index points past arena")?;
            if !h.alive || h.id != id {
                return Err(format!("index entry {id} -> slot {slot} stale"));
            }
        }
        for &f in &self.free {
            if self.hot.get(f as usize).is_none_or(|h| h.alive) {
                return Err(format!("free-list slot {f} is alive"));
            }
        }
        let reachable = self.descendants(self.root);
        if reachable.len() != self.live {
            return Err(format!("orphaned nodes: {} reachable of {}", reachable.len(), self.live));
        }
        for (s, h) in self.hot.iter().enumerate() {
            if !h.alive {
                continue;
            }
            let s = s as u32;
            // Walk the child chain, checking both link directions and the
            // cached count.
            let mut count = 0;
            let mut prev = NIL;
            let mut c = h.first_child;
            while c != NIL {
                let ch = self.hot.get(c as usize).ok_or("child link past arena")?;
                if !ch.alive {
                    return Err(format!("dangling child slot {c} of {}", h.id));
                }
                if ch.parent != s {
                    return Err(format!("child {} parent link mismatch", ch.id));
                }
                if ch.prev_sibling != prev {
                    return Err(format!("sibling back-link broken at {}", ch.id));
                }
                count += 1;
                prev = c;
                c = ch.next_sibling;
            }
            if h.last_child != prev {
                return Err(format!("last_child stale on {}", h.id));
            }
            if h.child_count != count {
                return Err(format!("child_count {} != {} on {}", h.child_count, count, h.id));
            }
            // Hot mirrors of cold state must agree.
            if h.tag != self.cold[s as usize].kind.tag() {
                return Err(format!("hot tag stale on {}", h.id));
            }
            if h.cost != self.cold[s as usize].kind.cost() {
                return Err(format!("hot cost stale on {}", h.id));
            }
        }
        Ok(())
    }

    /// Convenience: set a node's transform, bumping its version. Returns
    /// false if the node does not exist.
    ///
    /// Deliberately bypasses [`SceneTree::node_mut`]: transforms affect
    /// neither structure nor [`NodeCost`], so both caches stay valid —
    /// avatar and camera motion (the per-frame update stream) never
    /// forces a rebuild.
    pub fn set_transform(&mut self, id: NodeId, t: Transform) -> bool {
        match self.slot(id) {
            Some(s) => {
                self.hot[s as usize].transform = t;
                self.cold[s as usize].version += 1;
                true
            }
            None => false,
        }
    }

    // ---- cost-dirt export -----------------------------------------------

    /// Monotone count of cost-invalidating edits. Two equal epochs mean
    /// no node's own cost (or plan eligibility) changed in between —
    /// the cheap "anything to do?" probe for incremental planners.
    /// Transform updates are exempt, exactly like the cost cache.
    pub fn cost_epoch(&self) -> u64 {
        self.dirt.epoch
    }

    /// Drain the accumulated cost-dirt log: which nodes were touched by
    /// cost-invalidating edits since the last drain. Resets the log to
    /// [`CostDirt::Clean`]. Fresh, cloned and deserialized trees report
    /// [`CostDirt::Everything`] on their first drain, as does any tree
    /// whose log overflowed — consumers must then re-derive their view
    /// with a full walk.
    pub fn drain_cost_dirt(&mut self) -> CostDirt {
        let out = if self.dirt.saturated {
            CostDirt::Everything
        } else if self.dirt.nodes.is_empty() {
            CostDirt::Clean
        } else {
            let mut ids = std::mem::take(&mut self.dirt.nodes);
            ids.sort_unstable();
            ids.dedup();
            CostDirt::Nodes(ids)
        };
        self.dirt = DirtLog { epoch: self.dirt.epoch, nodes: Vec::new(), saturated: false };
        out
    }

    // ---- structure-dirt export ------------------------------------------

    /// Monotone count of pre-order-moving edits (insert/remove/reparent).
    /// Transform, name and kind edits are exempt: they move no intervals.
    pub fn structure_epoch(&self) -> u64 {
        self.sdirt.epoch
    }

    /// Drain the accumulated structural-dirt log: which nodes were
    /// inserted, removed or reparented since the last drain. Same
    /// contract as [`SceneTree::drain_cost_dirt`] (fresh/cloned/
    /// deserialized trees and overflowed logs report
    /// [`CostDirt::Everything`]; listed ids may no longer exist) but on
    /// an independent log, so the interest index draining here never
    /// starves the scheduler draining the cost log.
    pub fn drain_structure_dirt(&mut self) -> CostDirt {
        let out = if self.sdirt.saturated {
            CostDirt::Everything
        } else if self.sdirt.nodes.is_empty() {
            CostDirt::Clean
        } else {
            let mut ids = std::mem::take(&mut self.sdirt.nodes);
            ids.sort_unstable();
            ids.dedup();
            CostDirt::Nodes(ids)
        };
        self.sdirt = DirtLog { epoch: self.sdirt.epoch, nodes: Vec::new(), saturated: false };
        out
    }

    /// A node's subtree as its contiguous pre-order slice: `(pos, len)`
    /// with every descendant (itself included) at positions
    /// `[pos, pos + len)`. This is the interval an interest subscription
    /// on the node occupies in the flat pre-order, the basis of the
    /// inverted interest index. Positions are only stable until the next
    /// structural edit.
    pub fn preorder_interval(&self, id: NodeId) -> Option<(u32, u32)> {
        let s = self.slot(id)?;
        let flat = self.flat();
        Some((flat.pos[s as usize], flat.subtree_len[s as usize]))
    }

    // ---- test-only cache instrumentation --------------------------------

    /// Is the subtree-cost cache currently built? (Regression pins for
    /// the invalidation contract; not part of the public API surface.)
    #[doc(hidden)]
    pub fn cost_cache_is_warm(&self) -> bool {
        self.costs.get().is_some()
    }

    /// Is the structure cache currently built?
    #[doc(hidden)]
    pub fn structure_cache_is_warm(&self) -> bool {
        self.structure.get().is_some()
    }
}

fn self_id(tree: &SceneTree, slot: u32) -> NodeId {
    tree.hot[slot as usize].id
}

// ---- node views --------------------------------------------------------

/// Shared view of one live node. Copy-cheap (a tree pointer and a slot);
/// field reads resolve into the hot or cold array as appropriate, so a
/// traversal that never asks for a name or payload never loads one.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    tree: &'a SceneTree,
    slot: u32,
}

impl std::fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRef")
            .field("id", &self.id())
            .field("name", &self.name())
            .field("kind", &self.kind_tag())
            .finish()
    }
}

impl<'a> NodeRef<'a> {
    #[inline]
    fn hot(&self) -> &'a HotNode {
        &self.tree.hot[self.slot as usize]
    }

    #[inline]
    fn cold(&self) -> &'a ColdNode {
        &self.tree.cold[self.slot as usize]
    }

    #[inline]
    pub fn id(&self) -> NodeId {
        self.hot().id
    }

    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        let p = self.hot().parent;
        (p != NIL).then(|| self.tree.hot[p as usize].id)
    }

    #[inline]
    pub fn transform(&self) -> Transform {
        self.hot().transform
    }

    /// The node's own content cost (children excluded) — hot-array read,
    /// no payload access.
    #[inline]
    pub fn own_cost(&self) -> NodeCost {
        self.hot().cost
    }

    /// The payload-free kind discriminant — hot-array read.
    #[inline]
    pub fn kind_tag(&self) -> KindTag {
        self.hot().tag
    }

    #[inline]
    pub fn child_count(&self) -> usize {
        self.hot().child_count as usize
    }

    /// The node's children in insertion order. Double-ended (the
    /// renderer's DFS pushes children reversed) and exact-size.
    pub fn children(&self) -> Children<'a> {
        let h = self.hot();
        Children {
            tree: self.tree,
            front: h.first_child,
            back: h.last_child,
            remaining: h.child_count as usize,
        }
    }

    #[inline]
    pub fn name(&self) -> &'a str {
        &self.cold().name
    }

    #[inline]
    pub fn kind(&self) -> &'a NodeKind {
        &self.cold().kind
    }

    #[inline]
    pub fn version(&self) -> u64 {
        self.cold().version
    }

    /// Interrogate the node for its supported interactions (§5.2) — tag
    /// dispatch only, no payload access, no allocation.
    pub fn supported_interactions(&self) -> &'static [Interaction] {
        self.kind_tag().supported_interactions()
    }

    /// Materialize a detached [`Node`] record (the serde/wire shape).
    /// Payloads are `Arc`-shared, so this is cheap even for geometry.
    pub fn to_node(&self) -> Node {
        let cold = self.cold();
        Node {
            id: self.id(),
            name: cold.name.clone(),
            transform: self.transform(),
            kind: cold.kind.clone(),
            children: self.children().collect(),
            parent: self.parent(),
            version: cold.version,
        }
    }
}

/// Iterator over a node's children (insertion order), walking the
/// intrusive sibling links in the hot array.
#[derive(Clone)]
pub struct Children<'a> {
    tree: &'a SceneTree,
    front: u32,
    back: u32,
    remaining: usize,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        let s = self.front;
        self.remaining -= 1;
        self.front = self.tree.hot[s as usize].next_sibling;
        Some(self.tree.hot[s as usize].id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DoubleEndedIterator for Children<'_> {
    fn next_back(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        let s = self.back;
        self.remaining -= 1;
        self.back = self.tree.hot[s as usize].prev_sibling;
        Some(self.tree.hot[s as usize].id)
    }
}

impl ExactSizeIterator for Children<'_> {}

/// Mutable view of one live node's editable state (name, kind, version,
/// transform). Created by [`SceneTree::node_mut`]; if the kind is
/// touched, the hot mirrors (tag, own cost) are refreshed when the view
/// drops.
pub struct NodeMut<'a> {
    tree: &'a mut SceneTree,
    slot: u32,
    kind_touched: bool,
}

impl NodeMut<'_> {
    pub fn id(&self) -> NodeId {
        self.tree.hot[self.slot as usize].id
    }

    pub fn name(&self) -> &str {
        &self.tree.cold[self.slot as usize].name
    }

    pub fn kind(&self) -> &NodeKind {
        &self.tree.cold[self.slot as usize].kind
    }

    pub fn version(&self) -> u64 {
        self.tree.cold[self.slot as usize].version
    }

    pub fn transform(&self) -> Transform {
        self.tree.hot[self.slot as usize].transform
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.tree.cold[self.slot as usize].name = name.into();
    }

    /// Replace the content payload. The hot tag/cost mirrors refresh when
    /// this view drops.
    pub fn set_kind(&mut self, kind: NodeKind) {
        self.tree.cold[self.slot as usize].kind = kind;
        self.kind_touched = true;
    }

    /// In-place payload mutation (camera pose updates, avatar metadata).
    pub fn kind_mut(&mut self) -> &mut NodeKind {
        self.kind_touched = true;
        &mut self.tree.cold[self.slot as usize].kind
    }

    /// Set the transform without bumping the version (subset extraction
    /// and merge copy versions verbatim).
    pub fn set_transform(&mut self, t: Transform) {
        self.tree.hot[self.slot as usize].transform = t;
    }

    pub fn transform_mut(&mut self) -> &mut Transform {
        &mut self.tree.hot[self.slot as usize].transform
    }

    pub fn bump_version(&mut self) {
        self.tree.cold[self.slot as usize].version += 1;
    }

    pub fn set_version(&mut self, v: u64) {
        self.tree.cold[self.slot as usize].version = v;
    }
}

impl Drop for NodeMut<'_> {
    fn drop(&mut self) {
        if self.kind_touched {
            let kind = &self.tree.cold[self.slot as usize].kind;
            let (tag, cost) = (kind.tag(), kind.cost());
            let h = &mut self.tree.hot[self.slot as usize];
            h.tag = tag;
            h.cost = cost;
        }
    }
}

/// Pre-order subtree traversal as a slice walk over the cached flat
/// order. Created by [`SceneTree::descendants_iter`].
pub struct Descendants<'a> {
    tree: &'a SceneTree,
    slots: std::slice::Iter<'a, u32>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeRef<'a>;

    #[inline]
    fn next(&mut self) -> Option<NodeRef<'a>> {
        self.slots.next().map(|&slot| NodeRef { tree: self.tree, slot })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.slots.size_hint()
    }
}

impl ExactSizeIterator for Descendants<'_> {}

/// Errors from structural tree edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    MissingNode(NodeId),
    DuplicateId(NodeId),
    CannotRemoveRoot,
    CannotReparentRoot,
    /// Reparenting a node under its own descendant (or itself).
    WouldCreateCycle(NodeId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::MissingNode(id) => write!(f, "node {id} does not exist"),
            TreeError::DuplicateId(id) => write!(f, "node {id} already exists"),
            TreeError::CannotRemoveRoot => write!(f, "the root node cannot be removed"),
            TreeError::CannotReparentRoot => write!(f, "the root node cannot be reparented"),
            TreeError::WouldCreateCycle(id) => {
                write!(f, "reparenting {id} into its own subtree would create a cycle")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::MeshData;
    use rave_math::Vec3;
    use std::sync::Arc;

    fn tri_mesh() -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]])))
    }

    #[test]
    fn new_tree_has_root_only() {
        let t = SceneTree::new();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert!(t.contains(t.root()));
        t.check_invariants().unwrap();
    }

    #[test]
    fn add_and_find_by_path() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "galleon", NodeKind::Group).unwrap();
        let h = t.add_node(g, "hull", tri_mesh()).unwrap();
        assert_eq!(t.find_by_path("/galleon/hull"), Some(h));
        assert_eq!(t.find_by_path("/galleon"), Some(g));
        assert_eq!(t.find_by_path("/nope"), None);
        assert_eq!(t.path_of(h).unwrap(), "/galleon/hull");
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_subtree_removes_descendants() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let c1 = t.add_node(g, "c1", tri_mesh()).unwrap();
        let c2 = t.add_node(g, "c2", tri_mesh()).unwrap();
        let removed = t.remove(g).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(!t.contains(g) && !t.contains(c1) && !t.contains(c2));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn cannot_remove_root() {
        let mut t = SceneTree::new();
        assert_eq!(t.remove(t.root()), Err(TreeError::CannotRemoveRoot));
    }

    #[test]
    fn remove_missing_errors() {
        let mut t = SceneTree::new();
        assert!(matches!(t.remove(NodeId(99)), Err(TreeError::MissingNode(_))));
    }

    #[test]
    fn ids_never_reused_after_removal() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        t.remove(a).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn slots_are_reused_under_new_generations() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let slot_a = t.slot(a).unwrap();
        let gen_a = t.hot[slot_a as usize].generation;
        t.remove(a).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        let slot_b = t.slot(b).unwrap();
        assert_eq!(slot_a, slot_b, "freed slot is recycled");
        assert!(t.hot[slot_b as usize].generation > gen_a, "generation bumped");
        assert_eq!(t.hot.len(), 2, "arena stays dense under churn");
        t.check_invariants().unwrap();
    }

    #[test]
    fn world_transform_composes_down_the_chain() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(a, "b", NodeKind::Group).unwrap();
        t.set_transform(a, Transform::from_translation(Vec3::new(1.0, 0.0, 0.0)));
        t.set_transform(b, Transform::from_translation(Vec3::new(0.0, 2.0, 0.0)));
        let p = t.world_transform(b).transform_point(Vec3::ZERO);
        assert_eq!(p, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn world_bounds_include_transforms() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", tri_mesh()).unwrap();
        t.set_transform(a, Transform::from_translation(Vec3::new(10.0, 0.0, 0.0)));
        let b = t.world_bounds(t.root());
        assert!(b.contains(Vec3::new(10.5, 0.5, 0.0)));
        assert!(!b.contains(Vec3::ZERO));
    }

    #[test]
    fn subtree_cost_aggregates() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        t.add_node(g, "m1", tri_mesh()).unwrap();
        t.add_node(g, "m2", tri_mesh()).unwrap();
        assert_eq!(t.subtree_cost(g).polygons, 2);
        assert_eq!(t.total_cost().polygons, 2);
    }

    #[test]
    fn descendants_preorder_deterministic() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        let a1 = t.add_node(a, "a1", NodeKind::Group).unwrap();
        assert_eq!(t.descendants(t.root()), vec![t.root(), a, a1, b]);
    }

    #[test]
    fn ancestors_to_root() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(a, "b", NodeKind::Group).unwrap();
        assert_eq!(t.ancestors(b), vec![a, t.root()]);
        assert!(t.ancestors(t.root()).is_empty());
    }

    #[test]
    fn subset_closure_includes_parents_and_descendants() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let m = t.add_node(g, "m", tri_mesh()).unwrap();
        let leaf = t.add_node(m, "leaf", NodeKind::Group).unwrap();
        let other = t.add_node(t.root(), "other", tri_mesh()).unwrap();
        let closure = t.subset_closure(&[m]);
        assert!(closure.contains(&m));
        assert!(closure.contains(&leaf), "descendants included");
        assert!(closure.contains(&g), "ancestors included");
        assert!(!closure.contains(&other), "siblings excluded");
    }

    #[test]
    fn extract_subset_keeps_ids_transforms_and_strips_foreign_content() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", tri_mesh()).unwrap(); // ancestor WITH content
        t.set_transform(g, Transform::from_translation(Vec3::new(5.0, 0.0, 0.0)));
        let m = t.add_node(g, "m", tri_mesh()).unwrap();
        t.add_node(t.root(), "other", tri_mesh()).unwrap();
        let sub = t.extract_subset(&[m]);
        sub.check_invariants().unwrap();
        assert!(sub.contains(m));
        assert!(sub.contains(g));
        // Ancestor content stripped — only orientation kept.
        assert!(matches!(sub.node(g).unwrap().kind(), NodeKind::Group));
        assert_eq!(sub.node(g).unwrap().transform().translation, Vec3::new(5.0, 0.0, 0.0));
        // The requested subtree keeps its payload.
        assert!(matches!(sub.node(m).unwrap().kind(), NodeKind::Mesh(_)));
        // Cost of the subset is just the subtree's.
        assert_eq!(sub.total_cost().polygons, 1);
        // World transform identical in both trees.
        let p0 = t.world_transform(m).transform_point(Vec3::ZERO);
        let p1 = sub.world_transform(m).transform_point(Vec3::ZERO);
        assert_eq!(p0, p1);
    }

    #[test]
    fn merge_subset_adds_missing_keeps_existing() {
        let mut master = SceneTree::new();
        let a = master.add_node(master.root(), "a", tri_mesh()).unwrap();
        let b = master.add_node(master.root(), "b", tri_mesh()).unwrap();
        let subset_a = master.extract_subset(&[a]);
        let subset_b = master.extract_subset(&[b]);

        let mut replica = SceneTree::new();
        replica.merge_subset(&subset_a);
        assert!(replica.contains(a) && !replica.contains(b));
        // Locally mutate a, then merge b: a's local state survives.
        replica.set_transform(a, Transform::from_translation(Vec3::new(9.0, 0.0, 0.0)));
        replica.merge_subset(&subset_b);
        assert!(replica.contains(b));
        assert_eq!(
            replica.node(a).unwrap().transform().translation,
            Vec3::new(9.0, 0.0, 0.0),
            "existing node untouched by merge"
        );
        replica.check_invariants().unwrap();
        // Merging again is a no-op.
        let before = replica.len();
        replica.merge_subset(&subset_b);
        assert_eq!(replica.len(), before);
    }

    #[test]
    fn insert_with_duplicate_id_rejected() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        assert_eq!(
            t.insert_with_id(a, t.root(), "dup", NodeKind::Group),
            Err(TreeError::DuplicateId(a))
        );
    }

    #[test]
    fn find_all_filters() {
        let mut t = SceneTree::new();
        t.add_node(t.root(), "m", tri_mesh()).unwrap();
        t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let meshes = t.find_all(|n| matches!(n.kind(), NodeKind::Mesh(_)));
        assert_eq!(meshes.len(), 1);
    }

    #[test]
    fn descendants_iter_matches_descendants() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", tri_mesh()).unwrap();
        let a1 = t.add_node(a, "a1", tri_mesh()).unwrap();
        let a2 = t.add_node(a, "a2", NodeKind::Group).unwrap();
        t.add_node(a2, "a2x", tri_mesh()).unwrap();
        for start in [t.root(), a, b, a1, a2, NodeId(999)] {
            let eager = t.descendants(start);
            let lazy: Vec<NodeId> = t.descendants_iter(start).map(|n| n.id()).collect();
            assert_eq!(eager, lazy, "start {start:?}");
        }
    }

    #[test]
    fn cost_index_tracks_adds_removes_and_kind_changes() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let m1 = t.add_node(g, "m1", tri_mesh()).unwrap();
        assert_eq!(t.total_cost().polygons, 1);
        // Add after a cached query: cache must refresh.
        let m2 = t.add_node(g, "m2", tri_mesh()).unwrap();
        assert_eq!(t.subtree_cost(g).polygons, 2);
        // Remove.
        t.remove(m1).unwrap();
        assert_eq!(t.total_cost().polygons, 1);
        // Kind change through node_mut (the split_node pattern).
        t.node_mut(m2).unwrap().set_kind(NodeKind::Group);
        assert_eq!(t.total_cost().polygons, 0);
        // Missing nodes cost zero, as the uncached walk did.
        assert_eq!(t.subtree_cost(NodeId(999)), NodeCost::ZERO);
    }

    #[test]
    fn cost_index_survives_transform_updates_and_clone() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", tri_mesh()).unwrap();
        assert_eq!(t.total_cost().polygons, 1);
        // set_transform must not perturb cost results (and, by design,
        // does not invalidate the cache).
        t.set_transform(a, Transform::from_translation(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(t.total_cost().polygons, 1);
        // Clones answer independently and correctly.
        let mut c = t.clone();
        assert_eq!(c.total_cost().polygons, 1);
        c.remove(a).unwrap();
        assert_eq!(c.total_cost().polygons, 0);
        assert_eq!(t.total_cost().polygons, 1, "source unaffected by clone's edit");
    }

    /// Regression pin for the documented contract: `set_transform` is
    /// deliberately exempt from cost invalidation (the per-frame avatar/
    /// camera motion stream must never force an O(n) rebuild), while
    /// `node_mut` — which may rewrite the kind — must invalidate. The
    /// arena port keeps both behaviors observable via the test-only
    /// cache probes.
    #[test]
    fn set_transform_is_exempt_from_cost_invalidation() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", tri_mesh()).unwrap();
        assert_eq!(t.total_cost().polygons, 1); // warm the cost cache
        assert!(t.cost_cache_is_warm());
        assert!(t.structure_cache_is_warm());

        // The exemption: transform motion leaves both caches warm.
        t.set_transform(a, Transform::from_translation(Vec3::new(2.0, 0.0, 0.0)));
        assert!(t.cost_cache_is_warm(), "set_transform must NOT invalidate the cost cache");
        assert!(t.structure_cache_is_warm(), "set_transform must NOT invalidate structure");
        assert_eq!(t.total_cost().polygons, 1);

        // The counterpart: node_mut (potential kind rewrite) invalidates
        // costs but not structure…
        t.node_mut(a).unwrap().set_kind(NodeKind::Group);
        assert!(!t.cost_cache_is_warm(), "node_mut must invalidate the cost cache");
        assert!(t.structure_cache_is_warm(), "kind edits keep the structure cache");
        assert_eq!(t.total_cost().polygons, 0);

        // …and structural edits invalidate both.
        t.add_node(t.root(), "b", tri_mesh()).unwrap();
        assert!(!t.structure_cache_is_warm(), "structural edits invalidate structure");
        assert!(!t.cost_cache_is_warm());
        assert_eq!(t.total_cost().polygons, 1);
    }

    #[test]
    fn cost_dirt_log_tracks_the_invalidation_contract() {
        let mut t = SceneTree::new();
        // Never drained: everything is dirty.
        assert_eq!(t.drain_cost_dirt(), CostDirt::Everything);
        assert_eq!(t.drain_cost_dirt(), CostDirt::Clean, "drain resets the log");

        let epoch0 = t.cost_epoch();
        let a = t.add_node(t.root(), "a", tri_mesh()).unwrap();
        let b = t.add_node(t.root(), "b", tri_mesh()).unwrap();
        assert!(t.cost_epoch() > epoch0, "inserts bump the epoch");
        assert_eq!(t.drain_cost_dirt(), CostDirt::Nodes(vec![a, b]));

        // set_transform is exempt, exactly like the cost cache.
        let epoch = t.cost_epoch();
        t.set_transform(a, Transform::from_translation(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(t.cost_epoch(), epoch, "set_transform must not dirty costs");
        assert_eq!(t.drain_cost_dirt(), CostDirt::Clean);

        // node_mut touches are recorded and deduplicated.
        t.node_mut(a).unwrap().bump_version();
        t.node_mut(a).unwrap().bump_version();
        assert_eq!(t.drain_cost_dirt(), CostDirt::Nodes(vec![a]));

        // A subtree removal reports every removed id.
        let c = t.add_node(b, "c", tri_mesh()).unwrap();
        t.drain_cost_dirt();
        t.remove(b).unwrap();
        assert_eq!(t.drain_cost_dirt(), CostDirt::Nodes(vec![b, c]));
    }

    #[test]
    fn cost_dirt_log_saturates_to_everything() {
        let mut t = SceneTree::new();
        t.drain_cost_dirt();
        let mut last = t.root();
        for i in 0..(DIRT_LOG_CAP + 10) {
            last = t.add_node(t.root(), format!("n{i}"), NodeKind::Group).unwrap();
        }
        assert_eq!(t.drain_cost_dirt(), CostDirt::Everything);
        // The saturated state drains away: subsequent edits enumerate.
        t.node_mut(last).unwrap().bump_version();
        assert_eq!(t.drain_cost_dirt(), CostDirt::Nodes(vec![last]));
    }

    #[test]
    fn clones_report_everything_dirty() {
        let mut t = SceneTree::new();
        t.add_node(t.root(), "a", tri_mesh()).unwrap();
        t.drain_cost_dirt();
        let mut copy = t.clone();
        assert_eq!(copy.drain_cost_dirt(), CostDirt::Everything);
        assert_eq!(t.drain_cost_dirt(), CostDirt::Clean, "source log untouched");
    }

    #[test]
    fn subset_closure_is_sorted_and_duplicate_free() {
        let mut t = SceneTree::new();
        let g = t.add_node(t.root(), "g", NodeKind::Group).unwrap();
        let m = t.add_node(g, "m", tri_mesh()).unwrap();
        let leaf = t.add_node(m, "leaf", NodeKind::Group).unwrap();
        // Overlapping roots: m's subtree is inside g's.
        let closure = t.subset_closure(&[g, m, leaf]);
        let mut sorted = closure.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(closure, sorted);
        assert_eq!(closure, vec![t.root(), g, m, leaf]);
    }

    #[test]
    fn reparent_moves_subtree_and_preserves_state() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        let m = t.add_node(a, "m", tri_mesh()).unwrap();
        let leaf = t.add_node(m, "leaf", NodeKind::Group).unwrap();
        t.set_transform(m, Transform::from_translation(Vec3::new(3.0, 0.0, 0.0)));
        let version = t.node(m).unwrap().version();

        t.reparent(m, b).unwrap();
        t.check_invariants().unwrap();
        assert_eq!(t.node(m).unwrap().parent(), Some(b));
        assert_eq!(t.path_of(leaf).unwrap(), "/b/m/leaf");
        assert_eq!(t.node(m).unwrap().transform().translation, Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(t.node(m).unwrap().version(), version, "reparent keeps versions");
        assert_eq!(t.subtree_cost(a), NodeCost::ZERO, "cost follows the move");
        assert_eq!(t.subtree_cost(b).polygons, 1);
        // Pre-order reflects the move.
        assert_eq!(t.descendants(t.root()), vec![t.root(), a, b, m, leaf]);
    }

    #[test]
    fn reparent_rejects_cycles_and_root() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(a, "b", NodeKind::Group).unwrap();
        assert_eq!(t.reparent(t.root(), a), Err(TreeError::CannotReparentRoot));
        assert_eq!(t.reparent(a, b), Err(TreeError::WouldCreateCycle(a)));
        assert_eq!(t.reparent(a, a), Err(TreeError::WouldCreateCycle(a)));
        assert!(matches!(t.reparent(NodeId(99), a), Err(TreeError::MissingNode(_))));
        assert!(matches!(t.reparent(a, NodeId(99)), Err(TreeError::MissingNode(_))));
        t.check_invariants().unwrap();
    }

    #[test]
    fn reparent_to_same_parent_moves_to_last() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        t.reparent(a, t.root()).unwrap();
        let children: Vec<NodeId> = t.node(t.root()).unwrap().children().collect();
        assert_eq!(children, vec![b, a]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn iter_nodes_is_id_ordered_even_after_churn() {
        let mut t = SceneTree::new();
        let a = t.add_node(t.root(), "a", NodeKind::Group).unwrap();
        let b = t.add_node(t.root(), "b", NodeKind::Group).unwrap();
        t.remove(a).unwrap();
        // Reuses a's slot: arena order now differs from id order.
        let c = t.add_node(b, "c", NodeKind::Group).unwrap();
        let ids: Vec<NodeId> = t.iter_nodes().map(|n| n.id()).collect();
        assert_eq!(ids, vec![t.root(), b, c]);
    }

    #[test]
    fn children_iterator_is_double_ended_and_exact() {
        let mut t = SceneTree::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| t.add_node(t.root(), format!("c{i}"), NodeKind::Group).unwrap())
            .collect();
        let root = t.node(t.root()).unwrap();
        assert_eq!(root.child_count(), 5);
        assert_eq!(root.children().len(), 5);
        let fwd: Vec<NodeId> = root.children().collect();
        assert_eq!(fwd, ids);
        let mut rev: Vec<NodeId> = root.children().rev().collect();
        rev.reverse();
        assert_eq!(rev, ids);
        // Meet-in-the-middle.
        let mut it = root.children();
        assert_eq!(it.next(), Some(ids[0]));
        assert_eq!(it.next_back(), Some(ids[4]));
        assert_eq!(it.next(), Some(ids[1]));
        assert_eq!(it.next_back(), Some(ids[3]));
        assert_eq!(it.next(), Some(ids[2]));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }
}
