//! Scene-tree nodes.

use crate::camera::CameraParams;
use crate::cost::NodeCost;
use crate::geometry::{MeshData, PointCloudData, VolumeData};
use rave_math::{Aabb, Mat4, Quat, Vec3};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Stable identifier of a node within one session's scene tree.
///
/// Ids are allocated by the data service and never reused, so updates that
/// race with removals can be detected (an update to a dead id is rejected,
/// not misapplied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A local TRS transform. Every node carries one (identity by default);
/// "the parent nodes ... orientate the scene subset in the world" (§3.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transform {
    pub translation: Vec3,
    pub rotation: Quat,
    pub scale: Vec3,
}

impl Default for Transform {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Transform {
    pub const IDENTITY: Self =
        Self { translation: Vec3::ZERO, rotation: Quat::IDENTITY, scale: Vec3::ONE };

    pub fn from_translation(t: Vec3) -> Self {
        Self { translation: t, ..Self::IDENTITY }
    }

    pub fn from_rotation(r: Quat) -> Self {
        Self { rotation: r, ..Self::IDENTITY }
    }

    pub fn matrix(&self) -> Mat4 {
        Mat4::trs(self.translation, self.rotation, self.scale)
    }
}

/// Avatar metadata: "Clients are represented in the dataset by an avatar —
/// a simple graphical object to indicate the position and view of the
/// client" (§3.2.4). The avatar node's transform carries the pose; the
/// camera it mirrors travels alongside so observers can render the view
/// cone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvatarInfo {
    /// User or host name rendered as the label (Fig 3 shows "Desktop").
    pub label: String,
    /// Display color of the cone, RGB in [0,1].
    pub color: Vec3,
    /// The camera this avatar mirrors.
    pub camera: CameraParams,
}

/// Content of a scene node. `Mesh`/`PointCloud`/`Volume` payloads are
/// `Arc`-shared: cloning a scene (every render service keeps a local copy)
/// must not duplicate multi-million-polygon buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Pure structure / transform carrier.
    Group,
    Mesh(Arc<MeshData>),
    PointCloud(Arc<PointCloudData>),
    Volume(Arc<VolumeData>),
    /// A client's camera object (selectable in the GUI, drives rendering).
    Camera(CameraParams),
    /// A collaborating client's presence marker.
    Avatar(AvatarInfo),
}

/// Discriminant of a [`NodeKind`] without its payload. One byte; lives in
/// the scene arena's hot array so traversals that only need to classify a
/// node (cullable? presence marker? splittable content?) never touch the
/// cold payload store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KindTag {
    Group = 0,
    Mesh = 1,
    PointCloud = 2,
    Volume = 3,
    Camera = 4,
    Avatar = 5,
}

impl KindTag {
    pub fn kind_name(self) -> &'static str {
        match self {
            KindTag::Group => "group",
            KindTag::Mesh => "mesh",
            KindTag::PointCloud => "pointcloud",
            KindTag::Volume => "volume",
            KindTag::Camera => "camera",
            KindTag::Avatar => "avatar",
        }
    }

    /// The interaction set for this kind (§5.2). Static: the GUI
    /// interrogates every visible node each menu rebuild, so this must
    /// not allocate.
    pub fn supported_interactions(self) -> &'static [Interaction] {
        match self {
            KindTag::Group => &[Interaction::Select, Interaction::EditTransform],
            KindTag::Mesh | KindTag::PointCloud | KindTag::Volume => &[
                Interaction::Select,
                Interaction::Drag,
                Interaction::RotateAround,
                Interaction::EditTransform,
            ],
            KindTag::Camera => &[Interaction::Select, Interaction::Drag, Interaction::RotateAround],
            KindTag::Avatar => &[Interaction::Select],
        }
    }
}

impl NodeKind {
    /// The payload-free discriminant stored in the arena's hot array.
    pub fn tag(&self) -> KindTag {
        match self {
            NodeKind::Group => KindTag::Group,
            NodeKind::Mesh(_) => KindTag::Mesh,
            NodeKind::PointCloud(_) => KindTag::PointCloud,
            NodeKind::Volume(_) => KindTag::Volume,
            NodeKind::Camera(_) => KindTag::Camera,
            NodeKind::Avatar(_) => KindTag::Avatar,
        }
    }

    pub fn kind_name(&self) -> &'static str {
        self.tag().kind_name()
    }

    /// Interrogate the kind for its supported interactions (§5.2).
    pub fn supported_interactions(&self) -> &'static [Interaction] {
        self.tag().supported_interactions()
    }

    /// Bounds of the content in the node's local frame.
    pub fn local_bounds(&self) -> Aabb {
        match self {
            NodeKind::Group => Aabb::EMPTY,
            NodeKind::Mesh(m) => m.bounds(),
            NodeKind::PointCloud(p) => p.bounds(),
            NodeKind::Volume(v) => v.bounds(),
            // Cameras/avatars occupy a small marker volume so that they are
            // selectable and cullable.
            NodeKind::Camera(c) => {
                Aabb::new(c.position - Vec3::splat(0.1), c.position + Vec3::splat(0.1))
            }
            NodeKind::Avatar(_) => Aabb::new(Vec3::splat(-0.25), Vec3::splat(0.25)),
        }
    }

    /// Resource cost of the content alone (no children).
    pub fn cost(&self) -> NodeCost {
        match self {
            NodeKind::Group | NodeKind::Camera(_) => NodeCost::ZERO,
            NodeKind::Mesh(m) => NodeCost {
                polygons: m.triangle_count(),
                texture_bytes: m.texture_bytes,
                data_bytes: m.wire_size(),
                ..NodeCost::ZERO
            },
            NodeKind::PointCloud(p) => {
                NodeCost { points: p.point_count(), data_bytes: p.wire_size(), ..NodeCost::ZERO }
            }
            NodeKind::Volume(v) => {
                NodeCost { voxels: v.voxel_count(), data_bytes: v.wire_size(), ..NodeCost::ZERO }
            }
            // The avatar cone is a handful of polygons.
            NodeKind::Avatar(_) => NodeCost { polygons: 8, data_bytes: 256, ..NodeCost::ZERO },
        }
    }
}

/// The set of interactions an object supports. "The GUI interrogates
/// objects for any supported interactions, and reflects this in the
/// drop-down menus" (§5.2) — this is that interrogation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interaction {
    Select,
    Drag,
    RotateAround,
    EditTransform,
    /// Bridge into a remote process (the molecule-force example in §5.2).
    RemoteBridge,
}

/// A detached scene-node record: the serde/wire shape of one node, and
/// the unit [`crate::tree::SceneTree::from_parts`] rebuilds a tree from.
///
/// The tree itself no longer stores `Node` values — storage is a flat
/// generational arena with the per-traversal fields (topology, transform,
/// cost, kind tag) split from the cold payload (name, [`NodeKind`],
/// version). Read access goes through [`crate::tree::NodeRef`]; this
/// struct survives as the stable interchange shape so snapshot bytes and
/// JSON written before the arena refactor decode unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub name: String,
    pub transform: Transform,
    pub kind: NodeKind,
    pub children: Vec<NodeId>,
    pub parent: Option<NodeId>,
    /// Monotone per-node version; bumped by every update that touches the
    /// node, used for last-writer-wins conflict resolution.
    pub version: u64,
}

impl Node {
    pub fn new(id: NodeId, name: impl Into<String>, kind: NodeKind) -> Self {
        Self {
            id,
            name: name.into(),
            transform: Transform::IDENTITY,
            kind,
            children: Vec::new(),
            parent: None,
            version: 0,
        }
    }

    /// Interrogate the node for its supported interactions (§5.2). The GUI
    /// builds its menus from this, so extending interactions requires no
    /// GUI or transport change. Returns a static slice — the menu rebuild
    /// runs per node per frame and must not allocate.
    pub fn supported_interactions(&self) -> &'static [Interaction] {
        self.kind.supported_interactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_identity_matrix() {
        let t = Transform::IDENTITY;
        assert_eq!(t.matrix(), Mat4::IDENTITY);
    }

    #[test]
    fn transform_composition() {
        let t = Transform {
            translation: Vec3::new(1.0, 0.0, 0.0),
            rotation: Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2),
            scale: Vec3::splat(2.0),
        };
        // Point (1,0,0): scaled to (2,0,0), rotated to (0,2,0), translated
        // to (1,2,0).
        let p = t.matrix().transform_point(Vec3::X);
        assert!((p.x - 1.0).abs() < 1e-5);
        assert!((p.y - 2.0).abs() < 1e-5);
    }

    #[test]
    fn mesh_cost_counts_polygons() {
        let mesh = MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        let k = NodeKind::Mesh(Arc::new(mesh));
        let c = k.cost();
        assert_eq!(c.polygons, 1);
        assert!(c.data_bytes > 0);
    }

    #[test]
    fn group_costs_nothing() {
        assert!(NodeKind::Group.cost().is_zero());
    }

    #[test]
    fn arc_sharing_means_cheap_clone() {
        let mesh = Arc::new(MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]));
        let a = NodeKind::Mesh(Arc::clone(&mesh));
        let b = a.clone();
        if let (NodeKind::Mesh(ma), NodeKind::Mesh(mb)) = (&a, &b) {
            assert!(Arc::ptr_eq(ma, mb), "clone must share the payload");
        } else {
            unreachable!()
        }
    }

    #[test]
    fn interactions_differ_by_kind() {
        let mesh_node =
            Node::new(NodeId(1), "m", NodeKind::Mesh(Arc::new(MeshData::new(vec![], vec![]))));
        let avatar_node = Node::new(
            NodeId(2),
            "a",
            NodeKind::Avatar(AvatarInfo {
                label: "Desktop".into(),
                color: Vec3::ONE,
                camera: CameraParams::default(),
            }),
        );
        assert!(mesh_node.supported_interactions().contains(&Interaction::Drag));
        assert!(!avatar_node.supported_interactions().contains(&Interaction::Drag));
    }

    #[test]
    fn node_serde_roundtrip() {
        let n = Node::new(NodeId(7), "test", NodeKind::Camera(CameraParams::default()));
        let json = serde_json::to_string(&n).unwrap();
        let back: Node = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
