//! Compact binary serialization of updates, audit entries and whole
//! scene trees.
//!
//! The JSON-lines audit format (see [`crate::audit`]) is the
//! human-inspectable session recording; this module is the machine
//! format: the write-ahead log and snapshot checkpoints in `rave-store`
//! frame these bytes, and replaying a multi-thousand-update session is an
//! order of magnitude cheaper than re-parsing JSON.
//!
//! All integers are little-endian. Strings and sequences are
//! length-prefixed with a `u32`. Enums carry a one-byte tag. The format
//! is self-contained per value — no back-references — so a decoder can
//! always tell a truncated buffer ([`WireError::Eof`]) from a corrupt tag.

use crate::audit::AuditEntry;
use crate::camera::CameraParams;
use crate::geometry::{MeshData, PointCloudData, VolumeData};
use crate::node::{AvatarInfo, Node, NodeId, NodeKind, Transform};
use crate::tree::SceneTree;
use crate::update::{SceneUpdate, StampedUpdate};
use rave_math::{Quat, Vec3};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended mid-value.
    Eof,
    /// An enum tag byte outside the known range.
    BadTag { what: &'static str, tag: u8 },
    /// A string field was not valid UTF-8.
    Utf8,
    /// Decoding finished with bytes left over.
    Trailing(usize),
    /// A structural invariant failed after decode (e.g. a tree whose
    /// root is missing).
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of buffer"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::Utf8 => write!(f, "invalid utf-8 in string field"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Invalid(what) => write!(f, "decoded value invalid: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- writer ------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_vec3(out: &mut Vec<u8>, v: Vec3) {
    put_f32(out, v.x);
    put_f32(out, v.y);
    put_f32(out, v.z);
}

fn put_quat(out: &mut Vec<u8>, q: Quat) {
    put_f32(out, q.x);
    put_f32(out, q.y);
    put_f32(out, q.z);
    put_f32(out, q.w);
}

fn put_vec3s(out: &mut Vec<u8>, vs: &[Vec3]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        put_vec3(out, *v);
    }
}

fn put_transform(out: &mut Vec<u8>, t: &Transform) {
    put_vec3(out, t.translation);
    put_quat(out, t.rotation);
    put_vec3(out, t.scale);
}

fn put_camera(out: &mut Vec<u8>, c: &CameraParams) {
    put_vec3(out, c.position);
    put_quat(out, c.orientation);
    put_f32(out, c.fov_y);
    put_f32(out, c.near);
    put_f32(out, c.far);
}

fn put_avatar(out: &mut Vec<u8>, a: &AvatarInfo) {
    put_str(out, &a.label);
    put_vec3(out, a.color);
    put_camera(out, &a.camera);
}

fn put_kind(out: &mut Vec<u8>, kind: &NodeKind) {
    match kind {
        NodeKind::Group => put_u8(out, 0),
        NodeKind::Mesh(m) => {
            put_u8(out, 1);
            put_vec3s(out, &m.positions);
            put_vec3s(out, &m.normals);
            put_vec3s(out, &m.colors);
            put_u32(out, m.triangles.len() as u32);
            for t in &m.triangles {
                put_u32(out, t[0]);
                put_u32(out, t[1]);
                put_u32(out, t[2]);
            }
            put_u64(out, m.texture_bytes);
        }
        NodeKind::PointCloud(p) => {
            put_u8(out, 2);
            put_vec3s(out, &p.points);
            put_vec3s(out, &p.colors);
            put_f32(out, p.point_size);
        }
        NodeKind::Volume(v) => {
            put_u8(out, 3);
            put_u32(out, v.dims[0]);
            put_u32(out, v.dims[1]);
            put_u32(out, v.dims[2]);
            put_vec3(out, v.spacing);
            put_u32(out, v.voxels.len() as u32);
            out.extend_from_slice(&v.voxels);
        }
        NodeKind::Camera(c) => {
            put_u8(out, 4);
            put_camera(out, c);
        }
        NodeKind::Avatar(a) => {
            put_u8(out, 5);
            put_avatar(out, a);
        }
    }
}

fn put_update(out: &mut Vec<u8>, u: &SceneUpdate) {
    match u {
        SceneUpdate::AddNode { id, parent, name, kind } => {
            put_u8(out, 0);
            put_u64(out, id.0);
            put_u64(out, parent.0);
            put_str(out, name);
            put_kind(out, kind);
        }
        SceneUpdate::RemoveNode { id } => {
            put_u8(out, 1);
            put_u64(out, id.0);
        }
        SceneUpdate::SetTransform { id, transform } => {
            put_u8(out, 2);
            put_u64(out, id.0);
            put_transform(out, transform);
        }
        SceneUpdate::SetName { id, name } => {
            put_u8(out, 3);
            put_u64(out, id.0);
            put_str(out, name);
        }
        SceneUpdate::ReplaceKind { id, kind } => {
            put_u8(out, 4);
            put_u64(out, id.0);
            put_kind(out, kind);
        }
        SceneUpdate::CameraMoved { id, camera } => {
            put_u8(out, 5);
            put_u64(out, id.0);
            put_camera(out, camera);
        }
        SceneUpdate::AvatarUpdated { id, avatar } => {
            put_u8(out, 6);
            put_u64(out, id.0);
            put_avatar(out, avatar);
        }
    }
}

// ---- reader ------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Eof)?;
        if end > self.buf.len() {
            return Err(WireError::Eof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Utf8)
    }

    fn vec3(&mut self) -> Result<Vec3, WireError> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }

    fn quat(&mut self) -> Result<Quat, WireError> {
        Ok(Quat { x: self.f32()?, y: self.f32()?, z: self.f32()?, w: self.f32()? })
    }

    /// Length-prefixed sequence, with the count sanity-capped against the
    /// remaining bytes so a corrupt length can't trigger a huge
    /// allocation before `Eof` surfaces.
    fn counted(&mut self, elem_min_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_min_bytes) > self.buf.len() - self.pos {
            return Err(WireError::Eof);
        }
        Ok(n)
    }

    fn vec3s(&mut self) -> Result<Vec<Vec3>, WireError> {
        let n = self.counted(12)?;
        (0..n).map(|_| self.vec3()).collect()
    }

    fn transform(&mut self) -> Result<Transform, WireError> {
        Ok(Transform { translation: self.vec3()?, rotation: self.quat()?, scale: self.vec3()? })
    }

    fn camera(&mut self) -> Result<CameraParams, WireError> {
        Ok(CameraParams {
            position: self.vec3()?,
            orientation: self.quat()?,
            fov_y: self.f32()?,
            near: self.f32()?,
            far: self.f32()?,
        })
    }

    fn avatar(&mut self) -> Result<AvatarInfo, WireError> {
        Ok(AvatarInfo { label: self.str()?, color: self.vec3()?, camera: self.camera()? })
    }

    fn kind(&mut self) -> Result<NodeKind, WireError> {
        match self.u8()? {
            0 => Ok(NodeKind::Group),
            1 => {
                let positions = self.vec3s()?;
                let normals = self.vec3s()?;
                let colors = self.vec3s()?;
                let n = self.counted(12)?;
                let triangles = (0..n)
                    .map(|_| Ok([self.u32()?, self.u32()?, self.u32()?]))
                    .collect::<Result<Vec<_>, WireError>>()?;
                let texture_bytes = self.u64()?;
                Ok(NodeKind::Mesh(Arc::new(MeshData {
                    positions,
                    normals,
                    colors,
                    triangles,
                    texture_bytes,
                })))
            }
            2 => {
                let points = self.vec3s()?;
                let colors = self.vec3s()?;
                let point_size = self.f32()?;
                Ok(NodeKind::PointCloud(Arc::new(PointCloudData { points, colors, point_size })))
            }
            3 => {
                let dims = [self.u32()?, self.u32()?, self.u32()?];
                let spacing = self.vec3()?;
                let n = self.counted(1)?;
                let voxels = self.take(n)?.to_vec();
                Ok(NodeKind::Volume(Arc::new(VolumeData { dims, spacing, voxels })))
            }
            4 => Ok(NodeKind::Camera(self.camera()?)),
            5 => Ok(NodeKind::Avatar(self.avatar()?)),
            tag => Err(WireError::BadTag { what: "node kind", tag }),
        }
    }

    fn update(&mut self) -> Result<SceneUpdate, WireError> {
        match self.u8()? {
            0 => Ok(SceneUpdate::AddNode {
                id: NodeId(self.u64()?),
                parent: NodeId(self.u64()?),
                name: self.str()?,
                kind: self.kind()?,
            }),
            1 => Ok(SceneUpdate::RemoveNode { id: NodeId(self.u64()?) }),
            2 => Ok(SceneUpdate::SetTransform {
                id: NodeId(self.u64()?),
                transform: self.transform()?,
            }),
            3 => Ok(SceneUpdate::SetName { id: NodeId(self.u64()?), name: self.str()? }),
            4 => Ok(SceneUpdate::ReplaceKind { id: NodeId(self.u64()?), kind: self.kind()? }),
            5 => Ok(SceneUpdate::CameraMoved { id: NodeId(self.u64()?), camera: self.camera()? }),
            6 => Ok(SceneUpdate::AvatarUpdated { id: NodeId(self.u64()?), avatar: self.avatar()? }),
            tag => Err(WireError::BadTag { what: "scene update", tag }),
        }
    }

    fn stamped(&mut self) -> Result<StampedUpdate, WireError> {
        Ok(StampedUpdate { seq: self.u64()?, origin: self.str()?, update: self.update()? })
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(left))
        }
    }
}

// ---- public entry points -----------------------------------------------

/// Encode a stamped update (a WAL record payload without its timestamp).
pub fn encode_stamped(s: &StampedUpdate) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + s.origin.len());
    put_u64(&mut out, s.seq);
    put_str(&mut out, &s.origin);
    put_update(&mut out, &s.update);
    out
}

pub fn decode_stamped(buf: &[u8]) -> Result<StampedUpdate, WireError> {
    let mut r = Reader::new(buf);
    let s = r.stamped()?;
    r.finish()?;
    Ok(s)
}

/// Encode a full audit entry: virtual timestamp plus stamped update.
/// This is the unit the write-ahead log frames.
pub fn encode_entry(e: &AuditEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + e.stamped.origin.len());
    put_f64(&mut out, e.at_secs);
    put_u64(&mut out, e.stamped.seq);
    put_str(&mut out, &e.stamped.origin);
    put_update(&mut out, &e.stamped.update);
    out
}

pub fn decode_entry(buf: &[u8]) -> Result<AuditEntry, WireError> {
    let mut r = Reader::new(buf);
    let at_secs = r.f64()?;
    let stamped = r.stamped()?;
    r.finish()?;
    Ok(AuditEntry { at_secs, stamped })
}

/// Encode a whole scene tree (the snapshot checkpoint payload). Captures
/// every node verbatim — ids, versions, hierarchy, allocator state — so
/// the decoded tree is indistinguishable from the original.
pub fn encode_tree(tree: &SceneTree) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * tree.len());
    put_u32(&mut out, tree.len() as u32);
    for node in tree.iter_nodes() {
        put_u64(&mut out, node.id().0);
        put_str(&mut out, node.name());
        put_transform(&mut out, &node.transform());
        put_kind(&mut out, node.kind());
        match node.parent() {
            Some(p) => {
                put_u8(&mut out, 1);
                put_u64(&mut out, p.0);
            }
            None => put_u8(&mut out, 0),
        }
        put_u32(&mut out, node.child_count() as u32);
        for c in node.children() {
            put_u64(&mut out, c.0);
        }
        put_u64(&mut out, node.version());
    }
    put_u64(&mut out, tree.root().0);
    put_u64(&mut out, tree.id_allocator_state());
    out
}

pub fn decode_tree(buf: &[u8]) -> Result<SceneTree, WireError> {
    let mut r = Reader::new(buf);
    let count = r.counted(8)?;
    let mut nodes = BTreeMap::new();
    for _ in 0..count {
        let id = NodeId(r.u64()?);
        let name = r.str()?;
        let transform = r.transform()?;
        let kind = r.kind()?;
        let parent = match r.u8()? {
            0 => None,
            1 => Some(NodeId(r.u64()?)),
            tag => return Err(WireError::BadTag { what: "parent flag", tag }),
        };
        let n = r.counted(8)?;
        let children = (0..n).map(|_| Ok(NodeId(r.u64()?))).collect::<Result<_, WireError>>()?;
        let version = r.u64()?;
        let mut node = Node::new(id, name, kind);
        node.transform = transform;
        node.parent = parent;
        node.children = children;
        node.version = version;
        nodes.insert(id, node);
    }
    let root = NodeId(r.u64()?);
    let next_id = r.u64()?;
    r.finish()?;
    SceneTree::from_parts(nodes, root, next_id).map_err(WireError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateError;

    fn mesh_kind() -> NodeKind {
        let mut m =
            MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z], vec![[0, 1, 2], [0, 2, 3]]);
        m.texture_bytes = 1024;
        NodeKind::Mesh(Arc::new(m))
    }

    fn all_update_variants() -> Vec<SceneUpdate> {
        vec![
            SceneUpdate::AddNode {
                id: NodeId(5),
                parent: NodeId(0),
                name: "mesh".into(),
                kind: mesh_kind(),
            },
            SceneUpdate::AddNode {
                id: NodeId(6),
                parent: NodeId(0),
                name: "cloud".into(),
                kind: NodeKind::PointCloud(Arc::new(PointCloudData::new(vec![Vec3::X, Vec3::Y]))),
            },
            SceneUpdate::AddNode {
                id: NodeId(7),
                parent: NodeId(0),
                name: "vol".into(),
                kind: NodeKind::Volume(Arc::new(VolumeData::new(
                    [2, 2, 2],
                    Vec3::ONE,
                    vec![0, 50, 100, 150, 200, 250, 30, 60],
                ))),
            },
            SceneUpdate::RemoveNode { id: NodeId(6) },
            SceneUpdate::SetTransform {
                id: NodeId(5),
                transform: Transform::from_translation(Vec3::new(1.5, -2.0, 0.25)),
            },
            SceneUpdate::SetName { id: NodeId(5), name: "renamed".into() },
            SceneUpdate::ReplaceKind { id: NodeId(5), kind: NodeKind::Group },
            SceneUpdate::CameraMoved {
                id: NodeId(7),
                camera: CameraParams::look_at(Vec3::new(3.0, 4.0, 5.0), Vec3::ZERO, Vec3::Y),
            },
            SceneUpdate::AvatarUpdated {
                id: NodeId(7),
                avatar: AvatarInfo {
                    label: "onyx".into(),
                    color: Vec3::new(0.2, 0.4, 0.9),
                    camera: CameraParams::default(),
                },
            },
        ]
    }

    #[test]
    fn every_update_variant_roundtrips() {
        for (i, u) in all_update_variants().into_iter().enumerate() {
            let s = StampedUpdate { seq: i as u64 + 1, origin: format!("host{i}"), update: u };
            let enc = encode_stamped(&s);
            let dec = decode_stamped(&enc).unwrap();
            assert_eq!(dec, s, "variant {i}");
        }
    }

    #[test]
    fn audit_entry_roundtrips_with_timestamp() {
        let e = AuditEntry {
            at_secs: 12.625,
            stamped: StampedUpdate {
                seq: 42,
                origin: "v880z".into(),
                update: SceneUpdate::RemoveNode { id: NodeId(3) },
            },
        };
        let enc = encode_entry(&e);
        assert_eq!(decode_entry(&enc).unwrap(), e);
    }

    #[test]
    fn truncated_buffer_is_eof_not_panic() {
        let e = AuditEntry {
            at_secs: 1.0,
            stamped: StampedUpdate {
                seq: 9,
                origin: "laptop".into(),
                update: SceneUpdate::SetName { id: NodeId(2), name: "abcdef".into() },
            },
        };
        let enc = encode_entry(&e);
        for cut in 0..enc.len() {
            let err = decode_entry(&enc[..cut]).unwrap_err();
            assert_eq!(err, WireError::Eof, "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_is_reported() {
        let s = StampedUpdate {
            seq: 1,
            origin: "x".into(),
            update: SceneUpdate::RemoveNode { id: NodeId(1) },
        };
        let mut enc = encode_stamped(&s);
        // Tag byte sits after seq (8) + origin len (4) + origin (1).
        enc[13] = 0xEE;
        assert!(matches!(
            decode_stamped(&enc),
            Err(WireError::BadTag { what: "scene update", tag: 0xEE })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let s = StampedUpdate {
            seq: 1,
            origin: "x".into(),
            update: SceneUpdate::RemoveNode { id: NodeId(1) },
        };
        let mut enc = encode_stamped(&s);
        enc.push(0);
        assert_eq!(decode_stamped(&enc), Err(WireError::Trailing(1)));
    }

    #[test]
    fn tree_snapshot_roundtrips_exactly() -> Result<(), UpdateError> {
        let mut tree = SceneTree::new();
        let g = tree.add_node(tree.root(), "group", NodeKind::Group)?;
        let m = tree.add_node(g, "mesh", mesh_kind())?;
        tree.add_node(g, "cam", NodeKind::Camera(CameraParams::default()))?;
        // Mutations bump versions; removal burns an id — next_id must
        // survive the roundtrip so recovered services don't reuse ids.
        SceneUpdate::SetName { id: m, name: "renamed".into() }.apply(&mut tree)?;
        let burned = tree.add_node(tree.root(), "doomed", NodeKind::Group)?;
        SceneUpdate::RemoveNode { id: burned }.apply(&mut tree)?;

        let enc = encode_tree(&tree);
        let dec = decode_tree(&enc).unwrap();
        assert_eq!(format!("{tree:?}"), format!("{dec:?}"));
        dec.check_invariants().unwrap();
        // Allocator state preserved: the next id differs from any live id.
        let mut a = tree.clone();
        let mut b = dec;
        assert_eq!(a.allocate_id(), b.allocate_id());
        Ok(())
    }

    #[test]
    fn corrupt_length_cannot_oom() {
        let tree = SceneTree::new();
        let mut enc = encode_tree(&tree);
        // Claim 4 billion nodes: decode must fail with Eof, not allocate.
        enc[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_tree(&enc), Err(WireError::Eof));
    }
}
