//! Camera state shared between collaborating clients.
//!
//! "The collaborating render services share the same camera view point, so
//! the framebuffer aligns exactly" (§3.1.2) — the camera is therefore a
//! first-class, serializable value that travels in scene updates.

use rave_math::{Frustum, Mat4, Quat, Vec3, Viewport};
use serde::{Deserialize, Serialize};

/// A perspective camera: position + orientation (the paper's "camera
/// position and orientation"), plus lens parameters.
///
/// The camera looks down its local `-Z`, with local `+Y` up, matching the
/// Java3D/OpenGL convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraParams {
    pub position: Vec3,
    pub orientation: Quat,
    /// Vertical field of view, radians.
    pub fov_y: f32,
    pub near: f32,
    pub far: f32,
}

impl Default for CameraParams {
    fn default() -> Self {
        Self {
            position: Vec3::new(0.0, 0.0, 5.0),
            orientation: Quat::IDENTITY,
            fov_y: std::f32::consts::FRAC_PI_3,
            near: 0.05,
            far: 1000.0,
        }
    }
}

impl CameraParams {
    /// Place the camera at `eye` looking at `target`.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let r = f.cross(up).normalized();
        let u = r.cross(f);
        // Build the rotation whose columns are (right, up, -forward) — the
        // camera-to-world basis — then convert to a quaternion via the
        // stable branch of the matrix-to-quaternion formula.
        let m = [[r.x, r.y, r.z], [u.x, u.y, u.z], [-f.x, -f.y, -f.z]];
        let trace = m[0][0] + m[1][1] + m[2][2];
        let q = if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            Quat::new(
                (m[1][2] - m[2][1]) / s,
                (m[2][0] - m[0][2]) / s,
                (m[0][1] - m[1][0]) / s,
                0.25 * s,
            )
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m[1][0] + m[0][1]) / s,
                (m[2][0] + m[0][2]) / s,
                (m[1][2] - m[2][1]) / s,
            )
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m[1][0] + m[0][1]) / s,
                0.25 * s,
                (m[2][1] + m[1][2]) / s,
                (m[2][0] - m[0][2]) / s,
            )
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m[2][0] + m[0][2]) / s,
                (m[2][1] + m[1][2]) / s,
                0.25 * s,
                (m[0][1] - m[1][0]) / s,
            )
        };
        Self { position: eye, orientation: q.normalized(), ..Self::default() }
    }

    /// The camera's forward direction in world space.
    pub fn forward(&self) -> Vec3 {
        self.orientation.rotate(-Vec3::Z)
    }

    pub fn up(&self) -> Vec3 {
        self.orientation.rotate(Vec3::Y)
    }

    pub fn right(&self) -> Vec3 {
        self.orientation.rotate(Vec3::X)
    }

    /// World → view matrix.
    pub fn view_matrix(&self) -> Mat4 {
        Mat4::look_at(self.position, self.position + self.forward(), self.up())
    }

    pub fn projection_matrix(&self, aspect: f32) -> Mat4 {
        Mat4::perspective(self.fov_y, aspect, self.near, self.far)
    }

    pub fn view_proj(&self, viewport: &Viewport) -> Mat4 {
        self.projection_matrix(viewport.aspect()) * self.view_matrix()
    }

    pub fn frustum(&self, viewport: &Viewport) -> Frustum {
        Frustum::from_view_proj(&self.view_proj(viewport))
    }

    /// Orbit around `center` by yaw/pitch deltas — the click-and-drag
    /// interaction ("rotate the camera around a selected object", §5.2).
    pub fn orbit(&mut self, center: Vec3, d_yaw: f32, d_pitch: f32) {
        let offset = self.position - center;
        let yaw = Quat::from_axis_angle(Vec3::Y, d_yaw);
        let pitch = Quat::from_axis_angle(self.right(), d_pitch);
        let rot = yaw * pitch;
        self.position = center + rot.rotate(offset);
        self.orientation = (rot * self.orientation).normalized();
    }

    /// Move along the view direction (mouse-wheel dolly).
    pub fn dolly(&mut self, dist: f32) {
        self.position += self.forward() * dist;
    }

    /// Translate in the view plane (middle-drag pan).
    pub fn pan(&mut self, dx: f32, dy: f32) {
        self.position += self.right() * dx + self.up() * dy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_math::approx_eq;

    fn close(a: Vec3, b: Vec3) -> bool {
        approx_eq(a.x, b.x, 1e-4) && approx_eq(a.y, b.y, 1e-4) && approx_eq(a.z, b.z, 1e-4)
    }

    #[test]
    fn look_at_faces_target() {
        let c = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        assert!(close(c.forward(), -Vec3::Z));
        assert!(close(c.up(), Vec3::Y));
    }

    #[test]
    fn look_at_oblique() {
        let eye = Vec3::new(3.0, 4.0, 5.0);
        let c = CameraParams::look_at(eye, Vec3::ZERO, Vec3::Y);
        assert!(close(c.forward(), (-eye).normalized()));
    }

    #[test]
    fn look_at_straight_down_does_not_degenerate() {
        // trace <= 0 branch exercise: looking along -Y with Z up.
        let c = CameraParams::look_at(Vec3::new(0.0, 5.0, 0.0), Vec3::ZERO, Vec3::Z);
        assert!(close(c.forward(), -Vec3::Y));
    }

    #[test]
    fn view_matrix_centers_target() {
        let c = CameraParams::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y);
        let p = c.view_matrix().transform_point(Vec3::ZERO);
        assert!(approx_eq(p.x, 0.0, 1e-4));
        assert!(approx_eq(p.y, 0.0, 1e-4));
        assert!(p.z < 0.0, "target ahead of camera");
    }

    #[test]
    fn orbit_preserves_distance() {
        let mut c = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        c.orbit(Vec3::ZERO, 0.3, -0.2);
        assert!(approx_eq(c.position.length(), 5.0, 1e-4));
        // Still facing the center.
        assert!(close(c.forward(), (-c.position).normalized()));
    }

    #[test]
    fn dolly_moves_forward() {
        let mut c = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        c.dolly(2.0);
        assert!(close(c.position, Vec3::new(0.0, 0.0, 3.0)));
    }

    #[test]
    fn pan_slides_in_view_plane() {
        let mut c = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        c.pan(1.0, 2.0);
        assert!(close(c.position, Vec3::new(1.0, 2.0, 5.0)));
    }

    #[test]
    fn frustum_sees_origin() {
        let c = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let f = c.frustum(&Viewport::new(200, 200));
        assert!(f.contains_point(Vec3::ZERO));
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, 20.0)));
    }

    #[test]
    fn serde_roundtrip() {
        let c = CameraParams::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y);
        let json = serde_json::to_string(&c).unwrap();
        let back: CameraParams = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
