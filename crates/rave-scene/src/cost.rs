//! Per-node resource cost metrics.
//!
//! §3.2.7: "we will use metrics to define ... how much data are contained
//! in a given set of nodes (in terms of texture memory and number of
//! polygons/voxels/points)". `NodeCost` is that metric; the migration
//! planner compares it against a service's remaining capacity.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Resource demand of a node (or aggregated subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeCost {
    pub polygons: u64,
    pub points: u64,
    pub voxels: u64,
    pub texture_bytes: u64,
    /// Total bytes the node's payload occupies on the wire (bootstrap and
    /// interest-update transfer sizing).
    pub data_bytes: u64,
}

impl NodeCost {
    pub const ZERO: Self =
        Self { polygons: 0, points: 0, voxels: 0, texture_bytes: 0, data_bytes: 0 };

    pub fn polygons(n: u64) -> Self {
        Self { polygons: n, ..Self::ZERO }
    }

    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// A scalar "render weight" commensurable across primitive kinds, used
    /// when the planner must order mixed nodes. Weights reflect relative
    /// per-primitive rasterization cost in the software renderer: points
    /// are ~1/4 of a triangle, voxels amortize heavily under ray casting.
    pub fn render_weight(&self) -> u64 {
        self.polygons * 4 + self.points + self.voxels / 16
    }

    /// Does a service with `poly_budget` polys/frame, `texture_budget`
    /// bytes of texture memory left fit this cost?
    pub fn fits(&self, poly_budget: u64, texture_budget: u64) -> bool {
        self.polygons <= poly_budget && self.texture_bytes <= texture_budget
    }

    /// Saturating subtraction on every axis.
    pub fn saturating_sub(&self, o: &Self) -> Self {
        Self {
            polygons: self.polygons.saturating_sub(o.polygons),
            points: self.points.saturating_sub(o.points),
            voxels: self.voxels.saturating_sub(o.voxels),
            texture_bytes: self.texture_bytes.saturating_sub(o.texture_bytes),
            data_bytes: self.data_bytes.saturating_sub(o.data_bytes),
        }
    }
}

impl Add for NodeCost {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self {
            polygons: self.polygons + o.polygons,
            points: self.points + o.points,
            voxels: self.voxels + o.voxels,
            texture_bytes: self.texture_bytes + o.texture_bytes,
            data_bytes: self.data_bytes + o.data_bytes,
        }
    }
}

impl AddAssign for NodeCost {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for NodeCost {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        self.saturating_sub(&o)
    }
}

impl Sum for NodeCost {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_all_axes() {
        let a = NodeCost { polygons: 1, points: 2, voxels: 3, texture_bytes: 4, data_bytes: 5 };
        let b =
            NodeCost { polygons: 10, points: 20, voxels: 30, texture_bytes: 40, data_bytes: 50 };
        let c = a + b;
        assert_eq!(c.polygons, 11);
        assert_eq!(c.data_bytes, 55);
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = NodeCost::polygons(5);
        let b = NodeCost::polygons(10);
        assert_eq!((a - b).polygons, 0);
        assert_eq!((b - a).polygons, 5);
    }

    #[test]
    fn fits_checks_both_budgets() {
        let c = NodeCost { polygons: 100, texture_bytes: 1000, ..NodeCost::ZERO };
        assert!(c.fits(100, 1000));
        assert!(!c.fits(99, 1000));
        assert!(!c.fits(100, 999));
    }

    #[test]
    fn sum_over_iterator() {
        let total: NodeCost = (1..=4u64).map(NodeCost::polygons).sum();
        assert_eq!(total.polygons, 10);
    }

    #[test]
    fn render_weight_ordering() {
        // A polygon node outweighs the same count of points.
        assert!(
            NodeCost::polygons(100).render_weight()
                > NodeCost { points: 100, ..NodeCost::ZERO }.render_weight()
        );
    }
}
