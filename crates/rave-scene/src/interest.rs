//! Interest sets.
//!
//! "To distribute the dataset, the data server requires sections of the
//! dataset to be marked as being of interest to a render service — this
//! render service must be updated if the data service receives any changes
//! to this subset of the data" (§3.2.5).

use crate::node::NodeId;
use crate::tree::SceneTree;
use crate::update::SceneUpdate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The set of subtree roots a render service has subscribed to, plus the
/// expanded node set (descendants + ancestor orientation chain) computed
/// against a specific tree state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterestSet {
    /// Subtree roots of interest.
    roots: BTreeSet<NodeId>,
    /// Expanded closure (descendants of roots + ancestors); refreshed via
    /// [`InterestSet::refresh`].
    expanded: BTreeSet<NodeId>,
    /// Whether this set subscribes to *everything* (a full replica, the
    /// common case for a render service that holds the whole scene).
    all: bool,
}

impl InterestSet {
    /// Interest in the entire scene.
    pub fn everything() -> Self {
        Self { all: true, ..Self::default() }
    }

    /// Interest in the given subtree roots.
    pub fn subtrees(roots: impl IntoIterator<Item = NodeId>) -> Self {
        Self { roots: roots.into_iter().collect(), ..Self::default() }
    }

    pub fn is_everything(&self) -> bool {
        self.all
    }

    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roots.iter().copied()
    }

    pub fn add_root(&mut self, id: NodeId) {
        self.roots.insert(id);
    }

    pub fn remove_root(&mut self, id: NodeId) -> bool {
        self.roots.remove(&id)
    }

    /// Recompute the expanded closure against the current tree. Must be
    /// called after structural changes to stay accurate; `relevant` on a
    /// stale set errs on the side of delivering.
    pub fn refresh(&mut self, tree: &SceneTree) {
        if self.all {
            return;
        }
        let roots: Vec<NodeId> = self.roots.iter().copied().collect();
        self.expanded = tree.subset_closure(&roots).into_iter().collect();
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.all || self.expanded.contains(&id)
    }

    /// Should `update` be delivered to the subscriber holding this set?
    ///
    /// `AddNode` is judged by its *parent* (a child added inside a
    /// subscribed subtree matters; the new id cannot be in the closure
    /// yet). Everything else is judged by its target. Two conservative
    /// rules widen delivery:
    /// - updates to unknown nodes are delivered (a stale closure must not
    ///   cause a replica to silently diverge);
    /// - *presence* nodes (avatars and cameras) are relevant to every
    ///   subscriber — collaborators must be visible in every view, even a
    ///   subset replica (§3.2.4).
    pub fn relevant(&self, update: &SceneUpdate, tree: &SceneTree) -> bool {
        if self.all {
            return true;
        }
        let presence = |id: crate::node::NodeId| {
            matches!(
                tree.node(id).map(|n| n.kind_tag()),
                Some(crate::node::KindTag::Avatar) | Some(crate::node::KindTag::Camera)
            )
        };
        match update {
            SceneUpdate::AddNode { parent, id, kind, .. } => {
                matches!(kind, crate::node::NodeKind::Avatar(_) | crate::node::NodeKind::Camera(_))
                    || presence(*id)
                    || self.contains(*parent)
            }
            other => {
                let t = other.target();
                if !tree.contains(t) {
                    return true; // unknown target: deliver conservatively
                }
                presence(t) || self.contains(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeKind, Transform};

    fn build_tree() -> (SceneTree, NodeId, NodeId, NodeId) {
        let mut t = SceneTree::new();
        let left = t.add_node(t.root(), "left", NodeKind::Group).unwrap();
        let leaf = t.add_node(left, "leaf", NodeKind::Group).unwrap();
        let right = t.add_node(t.root(), "right", NodeKind::Group).unwrap();
        (t, left, leaf, right)
    }

    #[test]
    fn everything_is_relevant() {
        let (tree, left, ..) = build_tree();
        let set = InterestSet::everything();
        let u = SceneUpdate::SetName { id: left, name: "x".into() };
        assert!(set.relevant(&u, &tree));
    }

    #[test]
    fn subtree_updates_relevant_descendant_and_ancestor() {
        let (tree, left, leaf, right) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.refresh(&tree);
        // Descendant of interest root.
        assert!(set.relevant(&SceneUpdate::SetName { id: leaf, name: "x".into() }, &tree));
        // Ancestor (root) transform orients the subset — relevant.
        assert!(set.relevant(
            &SceneUpdate::SetTransform { id: tree.root(), transform: Transform::IDENTITY },
            &tree
        ));
        // Unrelated sibling subtree — not relevant.
        assert!(!set.relevant(&SceneUpdate::SetName { id: right, name: "x".into() }, &tree));
    }

    #[test]
    fn add_node_judged_by_parent() {
        let (tree, left, _, right) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.refresh(&tree);
        let inside = SceneUpdate::AddNode {
            id: NodeId(99),
            parent: left,
            name: "n".into(),
            kind: NodeKind::Group,
        };
        let outside = SceneUpdate::AddNode {
            id: NodeId(100),
            parent: right,
            name: "n".into(),
            kind: NodeKind::Group,
        };
        assert!(set.relevant(&inside, &tree));
        assert!(!set.relevant(&outside, &tree));
    }

    #[test]
    fn unknown_target_delivered_conservatively() {
        let (tree, left, ..) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.refresh(&tree);
        let u = SceneUpdate::RemoveNode { id: NodeId(1234) };
        assert!(set.relevant(&u, &tree));
    }

    #[test]
    fn add_remove_roots() {
        let (tree, left, _, right) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.add_root(right);
        set.refresh(&tree);
        assert!(set.contains(right));
        assert!(set.remove_root(right));
        assert!(!set.remove_root(right));
        set.refresh(&tree);
        assert!(!set.contains(right));
    }
}
