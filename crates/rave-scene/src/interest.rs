//! Interest sets.
//!
//! "To distribute the dataset, the data server requires sections of the
//! dataset to be marked as being of interest to a render service — this
//! render service must be updated if the data service receives any changes
//! to this subset of the data" (§3.2.5).

use crate::node::{KindTag, NodeId, NodeKind};
use crate::tree::{CostDirt, SceneTree};
use crate::update::SceneUpdate;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// The set of subtree roots a render service has subscribed to, plus the
/// expanded node set (descendants + ancestor orientation chain) computed
/// against a specific tree state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterestSet {
    /// Subtree roots of interest.
    roots: BTreeSet<NodeId>,
    /// Expanded closure (descendants of roots + ancestors); refreshed via
    /// [`InterestSet::refresh`].
    expanded: BTreeSet<NodeId>,
    /// Whether this set subscribes to *everything* (a full replica, the
    /// common case for a render service that holds the whole scene).
    all: bool,
}

impl InterestSet {
    /// Interest in the entire scene.
    pub fn everything() -> Self {
        Self { all: true, ..Self::default() }
    }

    /// Interest in the given subtree roots.
    pub fn subtrees(roots: impl IntoIterator<Item = NodeId>) -> Self {
        Self { roots: roots.into_iter().collect(), ..Self::default() }
    }

    pub fn is_everything(&self) -> bool {
        self.all
    }

    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roots.iter().copied()
    }

    pub fn add_root(&mut self, id: NodeId) {
        self.roots.insert(id);
    }

    pub fn remove_root(&mut self, id: NodeId) -> bool {
        self.roots.remove(&id)
    }

    /// Recompute the expanded closure against the current tree. Must be
    /// called after structural changes to stay accurate; `relevant` on a
    /// stale set errs on the side of delivering.
    pub fn refresh(&mut self, tree: &SceneTree) {
        if self.all {
            return;
        }
        let roots: Vec<NodeId> = self.roots.iter().copied().collect();
        self.expanded = tree.subset_closure(&roots).into_iter().collect();
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.all || self.expanded.contains(&id)
    }

    /// Should `update` be delivered to the subscriber holding this set?
    ///
    /// `AddNode` is judged by its *parent* (a child added inside a
    /// subscribed subtree matters; the new id cannot be in the closure
    /// yet). Everything else is judged by its target. Two conservative
    /// rules widen delivery:
    /// - updates to unknown nodes are delivered (a stale closure must not
    ///   cause a replica to silently diverge);
    /// - *presence* nodes (avatars and cameras) are relevant to every
    ///   subscriber — collaborators must be visible in every view, even a
    ///   subset replica (§3.2.4).
    pub fn relevant(&self, update: &SceneUpdate, tree: &SceneTree) -> bool {
        if self.all {
            return true;
        }
        let presence = |id: crate::node::NodeId| {
            matches!(
                tree.node(id).map(|n| n.kind_tag()),
                Some(crate::node::KindTag::Avatar) | Some(crate::node::KindTag::Camera)
            )
        };
        match update {
            SceneUpdate::AddNode { parent, id, kind, .. } => {
                matches!(kind, crate::node::NodeKind::Avatar(_) | crate::node::NodeKind::Camera(_))
                    || presence(*id)
                    || self.contains(*parent)
            }
            other => {
                let t = other.target();
                if !tree.contains(t) {
                    return true; // unknown target: deliver conservatively
                }
                presence(t) || self.contains(t)
            }
        }
    }
}

/// A subscriber's dense handle inside an [`InterestIndex`]: slots are
/// assigned `0..n` in the iteration order of the interest sets passed to
/// [`InterestIndex::rebuild`], and stay valid until the next rebuild.
pub type SubSlot = u32;

const NO_PARENT: u32 = u32::MAX;

/// One unique interest root shared by every subscriber that listed it.
#[derive(Debug, Clone)]
struct RootEntry {
    root: NodeId,
    /// Subscriber slots holding this root (each at most once: roots are a
    /// set per subscriber).
    subs: Vec<SubSlot>,
    /// The root's ancestor chain (bottom-up, root excluded) as of the
    /// last rebuild/repair — keyed by stable ids, so it survives
    /// pre-order position shifts and is only recomputed when a structural
    /// edit touched the root or one of these ancestors.
    chain: Vec<NodeId>,
}

/// A root's subtree as a pre-order interval `[start, end)`, linked to its
/// nearest enclosing indexed interval. Subtree intervals of one pre-order
/// form a *laminar* family — any two are nested or disjoint, never
/// partially overlapping — so "all intervals containing position p" is
/// exactly the parent chain upward from the innermost one.
#[derive(Debug, Clone, Copy)]
struct Interval {
    start: u32,
    end: u32,
    /// Index into `InterestIndex::roots`.
    entry: u32,
    /// Index of the nearest enclosing interval, `NO_PARENT` at top level.
    parent: u32,
}

/// The inverted interest index: instead of asking every subscriber's
/// [`InterestSet`] whether one update is relevant (O(subscribers) closure
/// probes per update), index the subscriptions once and ask which
/// subscribers one update reaches — O(log roots + matches) per update.
///
/// Layout: subscribers with `everything` interest live in a bitset;
/// subtree interests become pre-order intervals (stabbed by binary search
/// plus a parent-chain walk, see [`Interval`]); ancestor-of-root interest
/// ("the parent nodes to orientate the scene subset", §3.2.5) is a
/// hash-map from ancestor id to subscriber slots. Decisions are
/// bit-for-bit those of [`InterestSet::relevant`] against freshly
/// refreshed closures — proptest-pinned in `tests/proptest_interest.rs`.
///
/// Maintenance is incremental: structural edits drain from
/// [`SceneTree::drain_structure_dirt`] into [`InterestIndex::repair`],
/// which re-resolves intervals (O(roots) id lookups) and recomputes only
/// the ancestor chains the dirty ids could have changed, instead of
/// re-expanding every subscriber's closure against the whole scene.
#[derive(Debug, Clone, Default)]
pub struct InterestIndex {
    n_subs: usize,
    /// Bitset of subscribers with `all` interest.
    everything: Vec<u64>,
    roots: Vec<RootEntry>,
    /// Resolved intervals, sorted by (start asc, end desc) — enclosing
    /// intervals sort before enclosed ones.
    intervals: Vec<Interval>,
    /// Ancestor id → subscriber slots owed the node because it orients
    /// one of their interest roots.
    ancestor_subs: HashMap<NodeId, Vec<SubSlot>>,
    /// Match accumulator reused across queries.
    scratch: Vec<u64>,
}

impl InterestIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribers indexed by the last [`InterestIndex::rebuild`].
    pub fn n_subs(&self) -> usize {
        self.n_subs
    }

    /// Re-index from scratch: slot `i` is the `i`-th interest set of
    /// `interests`. Call when the subscriber population or any set's
    /// roots changed; for structural scene edits [`InterestIndex::repair`]
    /// is the cheap path.
    pub fn rebuild<'a>(
        &mut self,
        tree: &SceneTree,
        interests: impl IntoIterator<Item = &'a InterestSet>,
    ) {
        self.roots.clear();
        self.everything.clear();
        let mut entry_of: HashMap<NodeId, u32> = HashMap::new();
        let mut n = 0usize;
        for (i, set) in interests.into_iter().enumerate() {
            let slot = i as SubSlot;
            n = i + 1;
            if set.is_everything() {
                let w = (slot / 64) as usize;
                if self.everything.len() <= w {
                    self.everything.resize(w + 1, 0);
                }
                self.everything[w] |= 1u64 << (slot % 64);
                continue;
            }
            for root in set.roots() {
                let e = *entry_of.entry(root).or_insert_with(|| {
                    self.roots.push(RootEntry { root, subs: Vec::new(), chain: Vec::new() });
                    (self.roots.len() - 1) as u32
                });
                self.roots[e as usize].subs.push(slot);
            }
        }
        self.n_subs = n;
        self.everything.resize(n.div_ceil(64), 0);
        for e in &mut self.roots {
            e.chain = if tree.contains(e.root) { tree.ancestors(e.root) } else { Vec::new() };
        }
        self.rebuild_ancestor_map();
        self.resolve_intervals(tree);
    }

    /// Fold a drained structural-dirt batch into the index. Intervals are
    /// re-resolved against the current pre-order; a root's ancestor chain
    /// is recomputed only if the batch touched the root or a node of its
    /// recorded chain — sufficient, because an edit moving node `x` moves
    /// exactly `subtree(x)`, and root `r ∈ subtree(x)` iff `x` is `r` or
    /// on `r`'s chain as recorded before the edit.
    pub fn repair(&mut self, tree: &SceneTree, dirt: &CostDirt) {
        let dirty_ids: &[NodeId] = match dirt {
            CostDirt::Clean => return,
            CostDirt::Nodes(ids) => ids,
            CostDirt::Everything => &[],
        };
        let all = matches!(dirt, CostDirt::Everything);
        let mut chains_changed = false;
        for e in &mut self.roots {
            let affected = all
                || dirty_ids.binary_search(&e.root).is_ok()
                || e.chain.iter().any(|a| dirty_ids.binary_search(a).is_ok());
            if !affected {
                continue;
            }
            let chain = if tree.contains(e.root) { tree.ancestors(e.root) } else { Vec::new() };
            if chain != e.chain {
                e.chain = chain;
                chains_changed = true;
            }
        }
        if chains_changed {
            self.rebuild_ancestor_map();
        }
        self.resolve_intervals(tree);
    }

    /// Which subscribers must `update` reach? Fills `out` with matching
    /// slots in ascending order. Decision per slot is identical to
    /// [`InterestSet::relevant`] on a freshly refreshed set:
    /// presence (avatar/camera) updates and updates to unknown targets go
    /// to everyone; `AddNode` is judged by its parent; everything else by
    /// its target.
    pub fn matches(&mut self, update: &SceneUpdate, tree: &SceneTree, out: &mut Vec<SubSlot>) {
        out.clear();
        if self.n_subs == 0 {
            return;
        }
        let words = self.n_subs.div_ceil(64);
        self.scratch.clear();
        self.scratch.resize(words, 0);
        let presence = |id: NodeId| {
            matches!(
                tree.node(id).map(|n| n.kind_tag()),
                Some(KindTag::Avatar) | Some(KindTag::Camera)
            )
        };
        let point = match update {
            SceneUpdate::AddNode { parent, id, kind, .. } => {
                if matches!(kind, NodeKind::Avatar(_) | NodeKind::Camera(_)) || presence(*id) {
                    None // presence join: everyone renders the new collaborator
                } else {
                    Some(*parent)
                }
            }
            other => {
                let t = other.target();
                if !tree.contains(t) || presence(t) {
                    None // unknown target (deliver conservatively) or presence
                } else {
                    Some(t)
                }
            }
        };
        match point {
            None => {
                // Deliver to all: whole words, then mask the tail.
                for w in &mut self.scratch {
                    *w = !0u64;
                }
                let tail = self.n_subs % 64;
                if tail > 0 {
                    self.scratch[words - 1] = (1u64 << tail) - 1;
                }
            }
            Some(p) => {
                for (w, &e) in self.scratch.iter_mut().zip(&self.everything) {
                    *w |= e;
                }
                if let Some((pos, _)) = tree.preorder_interval(p) {
                    // Stab: the predecessor by start is the innermost
                    // candidate; climb to the first interval containing
                    // `pos`, then every further parent contains it too.
                    let idx = self.intervals.partition_point(|iv| iv.start <= pos);
                    let mut i = match idx {
                        0 => NO_PARENT,
                        _ => (idx - 1) as u32,
                    };
                    while i != NO_PARENT && self.intervals[i as usize].end <= pos {
                        i = self.intervals[i as usize].parent;
                    }
                    while i != NO_PARENT {
                        let iv = self.intervals[i as usize];
                        for &s in &self.roots[iv.entry as usize].subs {
                            self.scratch[(s / 64) as usize] |= 1u64 << (s % 64);
                        }
                        i = iv.parent;
                    }
                }
                if let Some(subs) = self.ancestor_subs.get(&p) {
                    for &s in subs {
                        self.scratch[(s / 64) as usize] |= 1u64 << (s % 64);
                    }
                }
            }
        }
        for (w, &bits) in self.scratch.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(w as u32 * 64 + b);
                bits &= bits - 1;
            }
        }
    }

    fn rebuild_ancestor_map(&mut self) {
        self.ancestor_subs.clear();
        for e in &self.roots {
            for &a in &e.chain {
                self.ancestor_subs.entry(a).or_default().extend_from_slice(&e.subs);
            }
        }
    }

    /// Re-resolve every root to its current pre-order interval (roots no
    /// longer in the tree drop out), sort, and wire the laminar parent
    /// links with one monotone stack pass.
    fn resolve_intervals(&mut self, tree: &SceneTree) {
        self.intervals.clear();
        for (idx, e) in self.roots.iter().enumerate() {
            if let Some((pos, len)) = tree.preorder_interval(e.root) {
                self.intervals.push(Interval {
                    start: pos,
                    end: pos + len,
                    entry: idx as u32,
                    parent: NO_PARENT,
                });
            }
        }
        self.intervals.sort_unstable_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..self.intervals.len() {
            let start = self.intervals[i].start;
            while let Some(&t) = stack.last() {
                if self.intervals[t as usize].end <= start {
                    stack.pop(); // disjoint: closed before we start
                } else {
                    break; // laminar + sort order ⇒ the top encloses us
                }
            }
            self.intervals[i].parent = stack.last().copied().unwrap_or(NO_PARENT);
            stack.push(i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeKind, Transform};

    fn build_tree() -> (SceneTree, NodeId, NodeId, NodeId) {
        let mut t = SceneTree::new();
        let left = t.add_node(t.root(), "left", NodeKind::Group).unwrap();
        let leaf = t.add_node(left, "leaf", NodeKind::Group).unwrap();
        let right = t.add_node(t.root(), "right", NodeKind::Group).unwrap();
        (t, left, leaf, right)
    }

    #[test]
    fn everything_is_relevant() {
        let (tree, left, ..) = build_tree();
        let set = InterestSet::everything();
        let u = SceneUpdate::SetName { id: left, name: "x".into() };
        assert!(set.relevant(&u, &tree));
    }

    #[test]
    fn subtree_updates_relevant_descendant_and_ancestor() {
        let (tree, left, leaf, right) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.refresh(&tree);
        // Descendant of interest root.
        assert!(set.relevant(&SceneUpdate::SetName { id: leaf, name: "x".into() }, &tree));
        // Ancestor (root) transform orients the subset — relevant.
        assert!(set.relevant(
            &SceneUpdate::SetTransform { id: tree.root(), transform: Transform::IDENTITY },
            &tree
        ));
        // Unrelated sibling subtree — not relevant.
        assert!(!set.relevant(&SceneUpdate::SetName { id: right, name: "x".into() }, &tree));
    }

    #[test]
    fn add_node_judged_by_parent() {
        let (tree, left, _, right) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.refresh(&tree);
        let inside = SceneUpdate::AddNode {
            id: NodeId(99),
            parent: left,
            name: "n".into(),
            kind: NodeKind::Group,
        };
        let outside = SceneUpdate::AddNode {
            id: NodeId(100),
            parent: right,
            name: "n".into(),
            kind: NodeKind::Group,
        };
        assert!(set.relevant(&inside, &tree));
        assert!(!set.relevant(&outside, &tree));
    }

    #[test]
    fn unknown_target_delivered_conservatively() {
        let (tree, left, ..) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.refresh(&tree);
        let u = SceneUpdate::RemoveNode { id: NodeId(1234) };
        assert!(set.relevant(&u, &tree));
    }

    #[test]
    fn add_remove_roots() {
        let (tree, left, _, right) = build_tree();
        let mut set = InterestSet::subtrees([left]);
        set.add_root(right);
        set.refresh(&tree);
        assert!(set.contains(right));
        assert!(set.remove_root(right));
        assert!(!set.remove_root(right));
        set.refresh(&tree);
        assert!(!set.contains(right));
    }

    // ---- inverted index -------------------------------------------------

    /// The oracle: every set refreshed against the tree, then scanned.
    fn naive(sets: &mut [InterestSet], u: &SceneUpdate, tree: &SceneTree) -> Vec<u32> {
        sets.iter_mut().for_each(|s| s.refresh(tree));
        sets.iter()
            .enumerate()
            .filter(|(_, s)| s.relevant(u, tree))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn indexed(ix: &mut InterestIndex, u: &SceneUpdate, tree: &SceneTree) -> Vec<u32> {
        let mut out = Vec::new();
        ix.matches(u, tree, &mut out);
        out
    }

    #[test]
    fn index_matches_refreshed_naive_scan() {
        let (tree, left, leaf, right) = build_tree();
        let mut sets = vec![
            InterestSet::everything(),
            InterestSet::subtrees([left]),
            InterestSet::subtrees([right]),
            InterestSet::subtrees([leaf]),
            InterestSet::subtrees([left, right]),
        ];
        let mut ix = InterestIndex::new();
        ix.rebuild(&tree, sets.iter());
        let updates = [
            SceneUpdate::SetName { id: left, name: "l".into() },
            SceneUpdate::SetName { id: leaf, name: "f".into() },
            SceneUpdate::SetName { id: right, name: "r".into() },
            SceneUpdate::SetTransform { id: tree.root(), transform: Transform::IDENTITY },
            SceneUpdate::RemoveNode { id: NodeId(999) }, // unknown: everyone
            SceneUpdate::AddNode {
                id: NodeId(50),
                parent: leaf,
                name: "n".into(),
                kind: NodeKind::Group,
            },
        ];
        for u in &updates {
            assert_eq!(indexed(&mut ix, u, &tree), naive(&mut sets, u, &tree), "update {u:?}");
        }
    }

    #[test]
    fn index_presence_reaches_every_subscriber() {
        let (mut tree, left, ..) = build_tree();
        let info = crate::node::AvatarInfo {
            label: "u".into(),
            color: rave_math::Vec3::X,
            camera: Default::default(),
        };
        let av = tree.add_node(tree.root(), "av", NodeKind::Avatar(info)).unwrap();
        let sets = vec![InterestSet::subtrees([left]), InterestSet::subtrees([NodeId(999)])];
        let mut ix = InterestIndex::new();
        ix.rebuild(&tree, sets.iter());
        let u = SceneUpdate::CameraMoved { id: av, camera: Default::default() };
        assert_eq!(indexed(&mut ix, &u, &tree), vec![0, 1], "avatar updates reach everyone");
    }

    #[test]
    fn index_repair_follows_structural_edits() {
        let (mut tree, left, leaf, right) = build_tree();
        let mut sets = vec![
            InterestSet::subtrees([left]),
            InterestSet::subtrees([right]),
            InterestSet::everything(),
        ];
        let mut ix = InterestIndex::new();
        tree.drain_structure_dirt();
        ix.rebuild(&tree, sets.iter());
        // Grow the subscribed subtree, move `leaf` across to `right`,
        // remove `left` entirely — repairing from dirt after each edit.
        let grown = tree.add_node(left, "grown", NodeKind::Group).unwrap();
        let dirt = tree.drain_structure_dirt();
        ix.repair(&tree, &dirt);
        let u = SceneUpdate::SetName { id: grown, name: "g".into() };
        assert_eq!(indexed(&mut ix, &u, &tree), naive(&mut sets, &u, &tree));

        tree.reparent(leaf, right).unwrap();
        let dirt = tree.drain_structure_dirt();
        ix.repair(&tree, &dirt);
        let u = SceneUpdate::SetName { id: leaf, name: "f".into() };
        assert_eq!(indexed(&mut ix, &u, &tree), naive(&mut sets, &u, &tree));

        tree.remove(left).unwrap();
        let dirt = tree.drain_structure_dirt();
        ix.repair(&tree, &dirt);
        // The removed root matches nothing but unknown-target updates now
        // go to everyone — exactly like the refreshed naive scan.
        let u = SceneUpdate::SetName { id: grown, name: "x".into() };
        assert_eq!(indexed(&mut ix, &u, &tree), naive(&mut sets, &u, &tree));
        let u = SceneUpdate::SetName { id: leaf, name: "y".into() };
        assert_eq!(indexed(&mut ix, &u, &tree), naive(&mut sets, &u, &tree));
    }

    #[test]
    fn index_repair_recomputes_ancestor_chains() {
        // Reparenting a subscribed root under a new ancestor must reroute
        // that ancestor's orientation updates to the subscriber.
        let mut tree = SceneTree::new();
        let a = tree.add_node(tree.root(), "a", NodeKind::Group).unwrap();
        let b = tree.add_node(tree.root(), "b", NodeKind::Group).unwrap();
        let x = tree.add_node(a, "x", NodeKind::Group).unwrap();
        let mut sets = vec![InterestSet::subtrees([x])];
        let mut ix = InterestIndex::new();
        tree.drain_structure_dirt();
        ix.rebuild(&tree, sets.iter());
        let u_a = SceneUpdate::SetName { id: a, name: "a2".into() };
        let u_b = SceneUpdate::SetName { id: b, name: "b2".into() };
        assert_eq!(indexed(&mut ix, &u_a, &tree), vec![0], "old ancestor relevant");
        assert_eq!(indexed(&mut ix, &u_b, &tree), Vec::<u32>::new());

        tree.reparent(x, b).unwrap();
        let dirt = tree.drain_structure_dirt();
        ix.repair(&tree, &dirt);
        assert_eq!(indexed(&mut ix, &u_a, &tree), naive(&mut sets, &u_a, &tree));
        assert_eq!(indexed(&mut ix, &u_b, &tree), naive(&mut sets, &u_b, &tree));
        assert_eq!(indexed(&mut ix, &u_b, &tree), vec![0], "new ancestor now relevant");
    }
}
