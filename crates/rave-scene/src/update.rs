//! The scene-update protocol.
//!
//! "Changes made locally are transmitted back to the data service,
//! propagating to other members of this collaborative session" (§3.1.2).
//! A [`SceneUpdate`] is one such change; [`StampedUpdate`] adds the data
//! service's global sequence number and the originating client, which is
//! what actually travels on the wire and into the audit trail.

use crate::camera::CameraParams;
use crate::node::{AvatarInfo, NodeId, NodeKind, Transform};
use crate::tree::{SceneTree, TreeError};
use serde::{Deserialize, Serialize};

/// One atomic change to the scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SceneUpdate {
    /// Insert a node (id pre-allocated by the data service).
    AddNode { id: NodeId, parent: NodeId, name: String, kind: NodeKind },
    /// Remove a node and its subtree.
    RemoveNode { id: NodeId },
    /// Replace a node's local transform (object drags, avatar motion).
    SetTransform { id: NodeId, transform: Transform },
    /// Rename a node.
    SetName { id: NodeId, name: String },
    /// Replace a node's content payload.
    ReplaceKind { id: NodeId, kind: NodeKind },
    /// Fast-path: a client's camera moved (updates the avatar node's
    /// mirrored camera as well as the camera node itself).
    CameraMoved { id: NodeId, camera: CameraParams },
    /// Update an avatar's metadata (label/color/camera).
    AvatarUpdated { id: NodeId, avatar: AvatarInfo },
}

impl SceneUpdate {
    /// The node this update targets (`AddNode` targets the new id).
    pub fn target(&self) -> NodeId {
        match self {
            SceneUpdate::AddNode { id, .. }
            | SceneUpdate::RemoveNode { id }
            | SceneUpdate::SetTransform { id, .. }
            | SceneUpdate::SetName { id, .. }
            | SceneUpdate::ReplaceKind { id, .. }
            | SceneUpdate::CameraMoved { id, .. }
            | SceneUpdate::AvatarUpdated { id, .. } => *id,
        }
    }

    /// Approximate bytes on the wire when sent over the binary socket
    /// protocol: a fixed header plus any geometry payload. (SOAP encoding
    /// of the same update is produced — and priced — by `rave-grid`.)
    pub fn wire_size(&self) -> u64 {
        const HEADER: u64 = 32;
        match self {
            SceneUpdate::AddNode { kind, name, .. } => {
                HEADER + name.len() as u64 + kind_wire_size(kind)
            }
            SceneUpdate::ReplaceKind { kind, .. } => HEADER + kind_wire_size(kind),
            SceneUpdate::RemoveNode { .. } => HEADER,
            SceneUpdate::SetTransform { .. } => HEADER + 40,
            SceneUpdate::SetName { name, .. } => HEADER + name.len() as u64,
            SceneUpdate::CameraMoved { .. } => HEADER + 44,
            SceneUpdate::AvatarUpdated { avatar, .. } => HEADER + 60 + avatar.label.len() as u64,
        }
    }

    /// Apply this update to a local scene copy. Errors (missing targets,
    /// duplicate ids) are surfaced, not silently dropped: the caller
    /// decides whether a failed update is a protocol bug or a benign race
    /// with a removal.
    pub fn apply(&self, tree: &mut SceneTree) -> Result<(), UpdateError> {
        match self {
            SceneUpdate::AddNode { id, parent, name, kind } => {
                tree.insert_with_id(*id, *parent, name.clone(), kind.clone())?;
            }
            SceneUpdate::RemoveNode { id } => {
                tree.remove(*id)?;
            }
            SceneUpdate::SetTransform { id, transform } => {
                if !tree.set_transform(*id, *transform) {
                    return Err(UpdateError::Tree(TreeError::MissingNode(*id)));
                }
            }
            SceneUpdate::SetName { id, name } => {
                let mut node =
                    tree.node_mut(*id).ok_or(UpdateError::Tree(TreeError::MissingNode(*id)))?;
                node.set_name(name.clone());
                node.bump_version();
            }
            SceneUpdate::ReplaceKind { id, kind } => {
                let mut node =
                    tree.node_mut(*id).ok_or(UpdateError::Tree(TreeError::MissingNode(*id)))?;
                node.set_kind(kind.clone());
                node.bump_version();
            }
            SceneUpdate::CameraMoved { id, camera } => {
                let mut node =
                    tree.node_mut(*id).ok_or(UpdateError::Tree(TreeError::MissingNode(*id)))?;
                match node.kind_mut() {
                    NodeKind::Camera(c) => *c = *camera,
                    NodeKind::Avatar(a) => a.camera = *camera,
                    other => {
                        return Err(UpdateError::KindMismatch {
                            id: *id,
                            expected: "camera or avatar",
                            found: other.kind_name(),
                        })
                    }
                }
                // Mirror the pose into the node transform so observers see
                // the avatar move.
                let t = node.transform_mut();
                t.translation = camera.position;
                t.rotation = camera.orientation;
                node.bump_version();
            }
            SceneUpdate::AvatarUpdated { id, avatar } => {
                let mut node =
                    tree.node_mut(*id).ok_or(UpdateError::Tree(TreeError::MissingNode(*id)))?;
                match node.kind_mut() {
                    NodeKind::Avatar(a) => *a = avatar.clone(),
                    other => {
                        return Err(UpdateError::KindMismatch {
                            id: *id,
                            expected: "avatar",
                            found: other.kind_name(),
                        })
                    }
                }
                node.bump_version();
            }
        }
        Ok(())
    }
}

/// Bytes a node payload occupies inside an update.
fn kind_wire_size(kind: &NodeKind) -> u64 {
    match kind {
        NodeKind::Group => 4,
        NodeKind::Mesh(m) => m.wire_size(),
        NodeKind::PointCloud(p) => p.wire_size(),
        NodeKind::Volume(v) => v.wire_size(),
        NodeKind::Camera(_) => 44,
        NodeKind::Avatar(a) => 60 + a.label.len() as u64,
    }
}

/// An update plus its provenance, as distributed by the data service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampedUpdate {
    /// Global session sequence number, assigned by the data service;
    /// render services apply updates strictly in `seq` order.
    pub seq: u64,
    /// Name of the originating client/host ("Desktop" in Fig 3).
    pub origin: String,
    pub update: SceneUpdate,
}

impl StampedUpdate {
    pub fn wire_size(&self) -> u64 {
        8 + self.origin.len() as u64 + self.update.wire_size()
    }
}

/// Why an update could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    Tree(TreeError),
    KindMismatch {
        id: NodeId,
        expected: &'static str,
        found: &'static str,
    },
    /// An audit append whose sequence number does not advance the trail —
    /// the data service's stamping invariant is broken.
    NonMonotonicSeq {
        last: u64,
        got: u64,
    },
    /// The durable persistence sink failed to log the update. Carries the
    /// underlying I/O error rendered to text so `UpdateError` stays
    /// `Clone + PartialEq`.
    Persistence(String),
}

impl From<TreeError> for UpdateError {
    fn from(e: TreeError) -> Self {
        UpdateError::Tree(e)
    }
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Tree(e) => write!(f, "{e}"),
            UpdateError::KindMismatch { id, expected, found } => {
                write!(f, "update to {id} expected {expected}, found {found}")
            }
            UpdateError::NonMonotonicSeq { last, got } => {
                write!(f, "audit append out of order: seq {got} after {last}")
            }
            UpdateError::Persistence(msg) => {
                write!(f, "persistence sink failed: {msg}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::MeshData;
    use rave_math::Vec3;
    use std::sync::Arc;

    fn mesh_kind() -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]])))
    }

    #[test]
    fn add_then_remove_roundtrip() {
        let mut tree = SceneTree::new();
        let id = tree.allocate_id();
        let add =
            SceneUpdate::AddNode { id, parent: tree.root(), name: "m".into(), kind: mesh_kind() };
        add.apply(&mut tree).unwrap();
        assert!(tree.contains(id));
        SceneUpdate::RemoveNode { id }.apply(&mut tree).unwrap();
        assert!(!tree.contains(id));
    }

    #[test]
    fn replicas_converge_applying_same_updates() {
        // The multicast correctness property: two replicas that apply the
        // same update stream end up identical.
        let mut a = SceneTree::new();
        let mut b = SceneTree::new();
        let id1 = NodeId(1);
        let id2 = NodeId(2);
        let updates = vec![
            SceneUpdate::AddNode {
                id: id1,
                parent: NodeId(0),
                name: "g".into(),
                kind: NodeKind::Group,
            },
            SceneUpdate::AddNode { id: id2, parent: id1, name: "m".into(), kind: mesh_kind() },
            SceneUpdate::SetTransform {
                id: id1,
                transform: Transform::from_translation(Vec3::new(1.0, 2.0, 3.0)),
            },
            SceneUpdate::SetName { id: id2, name: "renamed".into() },
        ];
        for u in &updates {
            u.apply(&mut a).unwrap();
            u.apply(&mut b).unwrap();
        }
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        a.check_invariants().unwrap();
    }

    #[test]
    fn update_to_missing_node_errors() {
        let mut tree = SceneTree::new();
        let err =
            SceneUpdate::SetName { id: NodeId(42), name: "x".into() }.apply(&mut tree).unwrap_err();
        assert!(matches!(err, UpdateError::Tree(TreeError::MissingNode(_))));
    }

    #[test]
    fn camera_moved_updates_camera_node_and_pose() {
        let mut tree = SceneTree::new();
        let cam =
            tree.add_node(tree.root(), "cam", NodeKind::Camera(CameraParams::default())).unwrap();
        let new_cam = CameraParams::look_at(Vec3::new(9.0, 0.0, 0.0), Vec3::ZERO, Vec3::Y);
        SceneUpdate::CameraMoved { id: cam, camera: new_cam }.apply(&mut tree).unwrap();
        let node = tree.node(cam).unwrap();
        assert_eq!(node.transform().translation, Vec3::new(9.0, 0.0, 0.0));
        match node.kind() {
            NodeKind::Camera(c) => assert_eq!(c.position, new_cam.position),
            _ => unreachable!(),
        }
    }

    #[test]
    fn camera_moved_on_mesh_is_kind_mismatch() {
        let mut tree = SceneTree::new();
        let m = tree.add_node(tree.root(), "m", mesh_kind()).unwrap();
        let err = SceneUpdate::CameraMoved { id: m, camera: CameraParams::default() }
            .apply(&mut tree)
            .unwrap_err();
        assert!(matches!(err, UpdateError::KindMismatch { .. }));
    }

    #[test]
    fn avatar_update_moves_avatar() {
        let mut tree = SceneTree::new();
        let av = tree
            .add_node(
                tree.root(),
                "avatar-desktop",
                NodeKind::Avatar(AvatarInfo {
                    label: "Desktop".into(),
                    color: Vec3::X,
                    camera: CameraParams::default(),
                }),
            )
            .unwrap();
        let cam = CameraParams::look_at(Vec3::new(0.0, 3.0, 0.0), Vec3::ZERO, Vec3::Z);
        SceneUpdate::CameraMoved { id: av, camera: cam }.apply(&mut tree).unwrap();
        match tree.node(av).unwrap().kind() {
            NodeKind::Avatar(a) => assert_eq!(a.camera.position, cam.position),
            _ => unreachable!(),
        }
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = SceneUpdate::RemoveNode { id: NodeId(1) };
        let big = SceneUpdate::AddNode {
            id: NodeId(1),
            parent: NodeId(0),
            name: "m".into(),
            kind: mesh_kind(),
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn stamped_update_serde_roundtrip() {
        let s = StampedUpdate {
            seq: 7,
            origin: "tower".into(),
            update: SceneUpdate::SetName { id: NodeId(3), name: "x".into() },
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: StampedUpdate = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut tree = SceneTree::new();
        let id = tree.add_node(tree.root(), "n", NodeKind::Group).unwrap();
        let v0 = tree.node(id).unwrap().version();
        SceneUpdate::SetName { id, name: "renamed".into() }.apply(&mut tree).unwrap();
        SceneUpdate::SetTransform { id, transform: Transform::IDENTITY }.apply(&mut tree).unwrap();
        assert_eq!(tree.node(id).unwrap().version(), v0 + 2);
    }
}
