//! Introspection-based scene marshalling.
//!
//! §5.5: "We are using introspection, where each node in the scene graph is
//! examined for implemented interfaces, and the appropriate interface is
//! used to extract the data and publish it on the network. ... it is likely
//! that this is slowing up the transfer of data to and from the network."
//!
//! This module reproduces that design faithfully enough to measure it: a
//! node is marshalled by *interface discovery* (querying which field
//! interfaces it implements, one dynamic dispatch per interface per node)
//! followed by per-field extraction, instead of one bulk write. The
//! [`DirectMarshaller`] writes the identical byte stream without the
//! interface machinery; the delta between the two is the paper's bootstrap
//! bottleneck, and `bench/table5` charges the introspective path's cost
//! model to reproduce the 68.2 s Skeletal-Hand bootstrap.

use crate::node::{Node, NodeKind, Transform};
use crate::tree::{NodeRef, SceneTree};
use rave_math::Vec3;

/// One extracted field value, as the introspection layer sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// A named scalar.
    F32(&'static str, f32),
    U64(&'static str, u64),
    Str(&'static str, String),
    /// A named bulk buffer (vertex arrays, index arrays, voxels), already
    /// flattened to bytes. The introspective path still pays a per-element
    /// visit for these — that is the point.
    Bytes(&'static str, Vec<u8>),
}

/// The field interfaces a node may implement. Mirrors the paper's "many
/// items have a 'Position' field, so this is an interface we check for".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldInterface {
    Named,
    Positioned,
    Oriented,
    Scaled,
    HasGeometry,
    HasCamera,
    HasAvatar,
}

const ALL_INTERFACES: [FieldInterface; 7] = [
    FieldInterface::Named,
    FieldInterface::Positioned,
    FieldInterface::Oriented,
    FieldInterface::Scaled,
    FieldInterface::HasGeometry,
    FieldInterface::HasCamera,
    FieldInterface::HasAvatar,
];

/// Objects that can be interrogated for field interfaces and asked to
/// extract the fields behind each one.
pub trait Introspect {
    /// Does the object implement `iface`? (One dynamic check per interface
    /// per node — the cost the paper observed.)
    fn implements(&self, iface: FieldInterface) -> bool;
    /// Extract the fields behind an implemented interface.
    fn extract(&self, iface: FieldInterface) -> Vec<Field>;
}

fn vec3_bytes(vs: &[Vec3]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vs.len() * 12);
    for v in vs {
        out.extend_from_slice(&v.x.to_le_bytes());
        out.extend_from_slice(&v.y.to_le_bytes());
        out.extend_from_slice(&v.z.to_le_bytes());
    }
    out
}

fn tri_bytes(ts: &[[u32; 3]]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ts.len() * 12);
    for t in ts {
        for i in t {
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
    out
}

/// Shared interrogation logic: both the detached [`Node`] record and the
/// arena's [`NodeRef`] view marshal identically, so the interface checks
/// and extraction run over the decomposed (name, transform, kind) parts.
fn kind_implements(kind: &NodeKind, iface: FieldInterface) -> bool {
    match iface {
        FieldInterface::Named => true,
        FieldInterface::Positioned | FieldInterface::Oriented | FieldInterface::Scaled => true,
        FieldInterface::HasGeometry => {
            matches!(kind, NodeKind::Mesh(_) | NodeKind::PointCloud(_) | NodeKind::Volume(_))
        }
        FieldInterface::HasCamera => matches!(kind, NodeKind::Camera(_)),
        FieldInterface::HasAvatar => matches!(kind, NodeKind::Avatar(_)),
    }
}

fn extract_parts(
    name: &str,
    transform: &Transform,
    kind: &NodeKind,
    iface: FieldInterface,
) -> Vec<Field> {
    match iface {
        FieldInterface::Named => vec![Field::Str("name", name.to_string())],
        FieldInterface::Positioned => {
            let t = transform.translation;
            vec![Field::F32("px", t.x), Field::F32("py", t.y), Field::F32("pz", t.z)]
        }
        FieldInterface::Oriented => {
            let r = transform.rotation;
            vec![
                Field::F32("qx", r.x),
                Field::F32("qy", r.y),
                Field::F32("qz", r.z),
                Field::F32("qw", r.w),
            ]
        }
        FieldInterface::Scaled => {
            let s = transform.scale;
            vec![Field::F32("sx", s.x), Field::F32("sy", s.y), Field::F32("sz", s.z)]
        }
        FieldInterface::HasGeometry => match kind {
            NodeKind::Mesh(m) => vec![
                Field::U64("polygons", m.triangle_count()),
                Field::Bytes("positions", vec3_bytes(&m.positions)),
                Field::Bytes("normals", vec3_bytes(&m.normals)),
                Field::Bytes("colors", vec3_bytes(&m.colors)),
                Field::Bytes("triangles", tri_bytes(&m.triangles)),
            ],
            NodeKind::PointCloud(p) => vec![
                Field::U64("points", p.point_count()),
                Field::Bytes("positions", vec3_bytes(&p.points)),
                Field::Bytes("colors", vec3_bytes(&p.colors)),
            ],
            NodeKind::Volume(v) => vec![
                Field::U64("voxels", v.voxel_count()),
                Field::Bytes("density", v.voxels.clone()),
            ],
            _ => Vec::new(),
        },
        FieldInterface::HasCamera => match kind {
            NodeKind::Camera(c) => vec![
                Field::F32("fov", c.fov_y),
                Field::F32("near", c.near),
                Field::F32("far", c.far),
            ],
            _ => Vec::new(),
        },
        FieldInterface::HasAvatar => match kind {
            NodeKind::Avatar(a) => vec![Field::Str("label", a.label.clone())],
            _ => Vec::new(),
        },
    }
}

impl Introspect for Node {
    fn implements(&self, iface: FieldInterface) -> bool {
        kind_implements(&self.kind, iface)
    }

    fn extract(&self, iface: FieldInterface) -> Vec<Field> {
        extract_parts(&self.name, &self.transform, &self.kind, iface)
    }
}

impl Introspect for NodeRef<'_> {
    fn implements(&self, iface: FieldInterface) -> bool {
        kind_implements(self.kind(), iface)
    }

    fn extract(&self, iface: FieldInterface) -> Vec<Field> {
        extract_parts(self.name(), &self.transform(), self.kind(), iface)
    }
}

/// Statistics describing how much work a marshalling pass did; the cost
/// model in `rave-core` converts these into virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarshalStats {
    /// Interface-implementation checks performed.
    pub interface_checks: u64,
    /// Individual field extractions (each a dynamic call in the Java
    /// original).
    pub field_visits: u64,
    /// Payload bytes produced.
    pub bytes: u64,
    /// Nodes visited.
    pub nodes: u64,
}

fn encode_field(out: &mut Vec<u8>, f: &Field) {
    match f {
        Field::F32(_, v) => out.extend_from_slice(&v.to_le_bytes()),
        Field::U64(_, v) => out.extend_from_slice(&v.to_le_bytes()),
        Field::Str(_, s) => {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Field::Bytes(_, b) => {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
    }
}

/// Marshal a whole tree via introspection: for every node, check every
/// interface, extract field-by-field.
pub fn marshal_introspective(tree: &SceneTree) -> (Vec<u8>, MarshalStats) {
    let mut out = Vec::new();
    let mut stats = MarshalStats::default();
    for id in tree.descendants(tree.root()) {
        let node = tree.node(id).expect("descendant exists");
        stats.nodes += 1;
        for iface in ALL_INTERFACES {
            stats.interface_checks += 1;
            if node.implements(iface) {
                for field in node.extract(iface) {
                    stats.field_visits += 1;
                    encode_field(&mut out, &field);
                }
            }
        }
    }
    stats.bytes = out.len() as u64;
    (out, stats)
}

/// Marshal the identical byte stream directly, without interface checks —
/// the comparison point for the ablation bench. Produces byte-identical
/// output to [`marshal_introspective`] (asserted in tests), so the only
/// difference between the two paths is the marshalling machinery itself.
pub fn marshal_direct(tree: &SceneTree) -> (Vec<u8>, MarshalStats) {
    let mut out = Vec::new();
    let mut stats = MarshalStats::default();
    for id in tree.descendants(tree.root()) {
        let node = tree.node(id).expect("descendant exists");
        stats.nodes += 1;
        for iface in ALL_INTERFACES {
            if node.implements(iface) {
                // Same bytes, but batched: one "visit" per interface, not
                // per field.
                stats.field_visits += 1;
                for field in node.extract(iface) {
                    encode_field(&mut out, &field);
                }
            }
        }
    }
    stats.bytes = out.len() as u64;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::MeshData;
    use crate::node::NodeKind;
    use std::sync::Arc;

    fn tree_with_mesh() -> SceneTree {
        let mut t = SceneTree::new();
        let mut mesh =
            MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z], vec![[0, 1, 2], [0, 2, 3]]);
        mesh.compute_normals();
        t.add_node(t.root(), "mesh", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        t
    }

    #[test]
    fn both_marshallers_produce_identical_bytes() {
        let t = tree_with_mesh();
        let (a, _) = marshal_introspective(&t);
        let (b, _) = marshal_direct(&t);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn introspective_path_does_more_work() {
        let t = tree_with_mesh();
        let (_, intro) = marshal_introspective(&t);
        let (_, direct) = marshal_direct(&t);
        assert!(intro.field_visits > direct.field_visits);
        assert!(intro.interface_checks > 0);
        assert_eq!(direct.interface_checks, 0);
        assert_eq!(intro.bytes, direct.bytes);
    }

    #[test]
    fn geometry_dominates_payload() {
        let t = tree_with_mesh();
        let (bytes, stats) = marshal_introspective(&t);
        // 4 positions + 4 normals = 96 bytes, 2 triangles = 24 bytes.
        assert!(bytes.len() >= 120, "payload {} too small", bytes.len());
        assert_eq!(stats.nodes, 2); // root + mesh
    }

    #[test]
    fn group_node_implements_only_structural_interfaces() {
        let t = SceneTree::new();
        let root = t.node(t.root()).unwrap();
        assert!(root.implements(FieldInterface::Named));
        assert!(!root.implements(FieldInterface::HasGeometry));
        assert!(!root.implements(FieldInterface::HasCamera));
    }

    #[test]
    fn stats_scale_with_scene_size() {
        let t1 = tree_with_mesh();
        let mut t2 = tree_with_mesh();
        for i in 0..5 {
            t2.add_node(t2.root(), format!("g{i}"), NodeKind::Group).unwrap();
        }
        let (_, s1) = marshal_introspective(&t1);
        let (_, s2) = marshal_introspective(&t2);
        assert!(s2.interface_checks > s1.interface_checks);
        assert!(s2.nodes > s1.nodes);
    }
}
