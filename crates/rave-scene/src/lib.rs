//! The RAVE scene tree and its update protocol.
//!
//! The data service stores "data ... in the form of a scene tree; nodes of
//! the tree may contain various types of data, such as voxels, point clouds
//! or polygons" (§3.1.1). This crate provides:
//!
//! - the tree itself ([`tree::SceneTree`]) with typed content nodes,
//!   per-node transforms, world-space bounds and cost aggregation;
//! - the *update* protocol ([`update::SceneUpdate`]) that the data service
//!   multicasts to render services and records as an audit trail;
//! - the persistent **audit trail** ([`audit::AuditTrail`]) enabling
//!   asynchronous collaboration by session playback (§3.1.1);
//! - **interest sets** ([`interest::InterestSet`]) marking which scene
//!   subsets a render service must be kept up to date on (§3.2.5);
//! - an **introspection marshaller** ([`introspect`]) reproducing the
//!   paper's Java-introspection network bottleneck (§5.5) alongside the
//!   direct marshaller it is benchmarked against;
//! - a compact **binary wire codec** ([`wire`]) for updates, audit
//!   entries and whole-tree snapshots — the payload format of the
//!   `rave-store` write-ahead log and checkpoint files.

pub mod audit;
pub mod camera;
pub mod cost;
pub mod geometry;
pub mod interest;
pub mod introspect;
pub mod node;
pub mod tree;
pub mod update;
pub mod wire;

pub use audit::AuditEntry;
pub use audit::AuditTrail;
pub use camera::CameraParams;
pub use cost::NodeCost;
pub use geometry::{MeshData, PointCloudData, VolumeData};
pub use interest::{InterestIndex, InterestSet, SubSlot};
pub use node::{AvatarInfo, Interaction, KindTag, Node, NodeId, NodeKind, Transform};
pub use tree::{Children, CostDirt, Descendants, NodeMut, NodeRef, SceneTree, TreeError};
pub use update::{SceneUpdate, StampedUpdate, UpdateError};
pub use wire::WireError;
