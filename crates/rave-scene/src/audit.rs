//! The persistent audit trail.
//!
//! "The data are intermittently streamed to disk, recording any changes
//! that are made in the form of an audit trail. A recorded session may be
//! played back at a later date; this enables users to append to a recorded
//! session, collaborating asynchronously with previous users" (§3.1.1).
//!
//! Entries are persisted as line-delimited JSON so a recorded session is
//! human-inspectable and appendable with a text editor.

use crate::tree::SceneTree;
use crate::update::{StampedUpdate, UpdateError};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One recorded change: when (virtual seconds since session start) and
/// what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    pub at_secs: f64,
    pub stamped: StampedUpdate,
}

/// An append-only record of a session's updates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditTrail {
    entries: Vec<AuditEntry>,
}

impl AuditTrail {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an update. Sequence numbers must be strictly increasing —
    /// the trail is the session's ground truth, so an out-of-order append
    /// is rejected (and surfaced to the data service) rather than
    /// silently corrupting the recording.
    pub fn record(&mut self, at_secs: f64, stamped: StampedUpdate) -> Result<(), UpdateError> {
        if let Some(last) = self.entries.last() {
            if stamped.seq <= last.stamped.seq {
                return Err(UpdateError::NonMonotonicSeq {
                    last: last.stamped.seq,
                    got: stamped.seq,
                });
            }
        }
        self.entries.push(AuditEntry { at_secs, stamped });
        Ok(())
    }

    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest sequence number recorded, or 0.
    pub fn last_seq(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.stamped.seq)
    }

    /// Rebuild a scene by replaying every entry up to and including
    /// `up_to_secs` into a fresh tree. This is session playback: a new
    /// collaborator joins "a previously recorded session" at any point on
    /// its timeline.
    pub fn replay(&self, up_to_secs: f64) -> Result<SceneTree, UpdateError> {
        let mut tree = SceneTree::new();
        for e in &self.entries {
            if e.at_secs > up_to_secs {
                break;
            }
            e.stamped.update.apply(&mut tree)?;
        }
        Ok(tree)
    }

    /// Replay everything.
    pub fn replay_all(&self) -> Result<SceneTree, UpdateError> {
        self.replay(f64::INFINITY)
    }

    /// Serialize as JSON-lines.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for e in &self.entries {
            let line = serde_json::to_string(e).map_err(std::io::Error::other)?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Load from JSON-lines. Blank lines are skipped (hand-edited files).
    pub fn load<R: BufRead>(r: R) -> std::io::Result<Self> {
        let mut trail = Self::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let e: AuditEntry = serde_json::from_str(&line).map_err(std::io::Error::other)?;
            trail.entries.push(e);
        }
        Ok(trail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeId, NodeKind, Transform};
    use crate::update::SceneUpdate;
    use rave_math::Vec3;

    fn stamped(seq: u64, update: SceneUpdate) -> StampedUpdate {
        StampedUpdate { seq, origin: "test".into(), update }
    }

    fn sample_trail() -> AuditTrail {
        let mut t = AuditTrail::new();
        t.record(
            0.0,
            stamped(
                1,
                SceneUpdate::AddNode {
                    id: NodeId(1),
                    parent: NodeId(0),
                    name: "g".into(),
                    kind: NodeKind::Group,
                },
            ),
        )
        .unwrap();
        t.record(
            1.0,
            stamped(
                2,
                SceneUpdate::SetTransform {
                    id: NodeId(1),
                    transform: Transform::from_translation(Vec3::new(1.0, 0.0, 0.0)),
                },
            ),
        )
        .unwrap();
        t.record(2.0, stamped(3, SceneUpdate::RemoveNode { id: NodeId(1) })).unwrap();
        t
    }

    #[test]
    fn replay_reconstructs_intermediate_states() {
        let trail = sample_trail();
        // At t=0.5 the node exists at the origin.
        let t0 = trail.replay(0.5).unwrap();
        assert!(t0.contains(NodeId(1)));
        assert_eq!(t0.node(NodeId(1)).unwrap().transform().translation, Vec3::ZERO);
        // At t=1.5 it has moved.
        let t1 = trail.replay(1.5).unwrap();
        assert_eq!(t1.node(NodeId(1)).unwrap().transform().translation, Vec3::new(1.0, 0.0, 0.0));
        // After t=2 it is gone.
        let t2 = trail.replay_all().unwrap();
        assert!(!t2.contains(NodeId(1)));
    }

    #[test]
    fn save_load_roundtrip() {
        let trail = sample_trail();
        let mut buf = Vec::new();
        trail.save(&mut buf).unwrap();
        let loaded = AuditTrail::load(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(trail, loaded);
    }

    #[test]
    fn load_skips_blank_lines() {
        let trail = sample_trail();
        let mut buf = Vec::new();
        trail.save(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        let loaded = AuditTrail::load(std::io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(loaded.len(), 3);
    }

    #[test]
    fn asynchronous_collaboration_appends_to_recording() {
        // User A records a session, user B loads it later, replays, and
        // appends new work — §3.1.1's asynchronous collaboration flow.
        let mut buf = Vec::new();
        sample_trail().save(&mut buf).unwrap();

        let mut loaded = AuditTrail::load(std::io::Cursor::new(buf)).unwrap();
        let seq = loaded.last_seq();
        loaded
            .record(
                10.0,
                stamped(
                    seq + 1,
                    SceneUpdate::AddNode {
                        id: NodeId(2),
                        parent: NodeId(0),
                        name: "appended".into(),
                        kind: NodeKind::Group,
                    },
                ),
            )
            .unwrap();
        let replayed = loaded.replay_all().unwrap();
        assert!(replayed.contains(NodeId(2)));
        assert!(!replayed.contains(NodeId(1)), "earlier removal still honoured");
    }

    #[test]
    fn out_of_order_seq_rejected() {
        let mut t = AuditTrail::new();
        t.record(0.0, stamped(5, SceneUpdate::RemoveNode { id: NodeId(9) })).unwrap();
        let err = t.record(1.0, stamped(4, SceneUpdate::RemoveNode { id: NodeId(9) }));
        assert_eq!(err, Err(UpdateError::NonMonotonicSeq { last: 5, got: 4 }));
        // Equal sequence numbers are rejected too, and the trail is intact.
        let dup = t.record(2.0, stamped(5, SceneUpdate::RemoveNode { id: NodeId(9) }));
        assert!(matches!(dup, Err(UpdateError::NonMonotonicSeq { last: 5, got: 5 })));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn last_seq_of_empty_is_zero() {
        assert_eq!(AuditTrail::new().last_seq(), 0);
    }
}
