//! View-frustum extraction and culling.
//!
//! Render services cull scene subtrees against the shared camera before
//! charging render cost; the migration planner uses visibility to estimate
//! on-screen polygon counts ("views were arranged to have the maximum
//! possible number of visible polygons" — §5.1).

use crate::{Aabb, Mat4, Vec3};

/// A plane in Hessian normal form: `normal · p + d = 0`, with the normal
/// pointing towards the *inside* of the frustum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    pub normal: Vec3,
    pub d: f32,
}

impl Plane {
    pub fn new(normal: Vec3, d: f32) -> Self {
        Self { normal, d }
    }

    /// Signed distance: positive on the inside half-space.
    #[inline]
    pub fn distance(&self, p: Vec3) -> f32 {
        self.normal.dot(p) + self.d
    }

    fn normalized(self) -> Self {
        let len = self.normal.length();
        if len <= f32::EPSILON {
            self
        } else {
            Self { normal: self.normal / len, d: self.d / len }
        }
    }
}

/// Result of a bounds-vs-frustum test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    Outside,
    Intersecting,
    Inside,
}

/// The six planes of a view frustum, extracted from a combined
/// view-projection matrix (Gribb–Hartmann method).
#[derive(Debug, Clone, Copy)]
pub struct Frustum {
    /// left, right, bottom, top, near, far
    pub planes: [Plane; 6],
}

impl Frustum {
    pub fn from_view_proj(vp: &Mat4) -> Self {
        let row = |r: usize| Vec3::new(vp.at(r, 0), vp.at(r, 1), vp.at(r, 2));
        let roww = |r: usize| vp.at(r, 3);
        let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
        let (w0, w1, w2, w3) = (roww(0), roww(1), roww(2), roww(3));
        Self {
            planes: [
                Plane::new(r3 + r0, w3 + w0).normalized(), // left
                Plane::new(r3 - r0, w3 - w0).normalized(), // right
                Plane::new(r3 + r1, w3 + w1).normalized(), // bottom
                Plane::new(r3 - r1, w3 - w1).normalized(), // top
                Plane::new(r3 + r2, w3 + w2).normalized(), // near
                Plane::new(r3 - r2, w3 - w2).normalized(), // far
            ],
        }
    }

    /// Classify an AABB against the frustum. Conservative: may report
    /// `Intersecting` for a box that is actually outside (corner cases of
    /// the plane test), never `Inside`/`Intersecting` for a box that has no
    /// overlap with all six half-spaces.
    pub fn classify(&self, b: &Aabb) -> Containment {
        if b.is_empty() {
            return Containment::Outside;
        }
        let c = b.center();
        let e = b.extent() * 0.5;
        let mut inside_all = true;
        for plane in &self.planes {
            let n = plane.normal;
            // Projection radius of the box onto the plane normal.
            let r = e.x * n.x.abs() + e.y * n.y.abs() + e.z * n.z.abs();
            let dist = plane.distance(c);
            if dist < -r {
                return Containment::Outside;
            }
            if dist < r {
                inside_all = false;
            }
        }
        if inside_all {
            Containment::Inside
        } else {
            Containment::Intersecting
        }
    }

    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|pl| pl.distance(p) >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard_frustum() -> Frustum {
        let view = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        Frustum::from_view_proj(&(proj * view))
    }

    #[test]
    fn origin_is_inside() {
        assert!(standard_frustum().contains_point(Vec3::ZERO));
    }

    #[test]
    fn behind_camera_is_outside() {
        assert!(!standard_frustum().contains_point(Vec3::new(0.0, 0.0, 10.0)));
    }

    #[test]
    fn beyond_far_is_outside() {
        assert!(!standard_frustum().contains_point(Vec3::new(0.0, 0.0, -200.0)));
    }

    #[test]
    fn small_centered_box_fully_inside() {
        let f = standard_frustum();
        let b = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert_eq!(f.classify(&b), Containment::Inside);
    }

    #[test]
    fn distant_box_outside() {
        let f = standard_frustum();
        let b = Aabb::new(Vec3::new(500.0, 0.0, 0.0), Vec3::new(501.0, 1.0, 1.0));
        assert_eq!(f.classify(&b), Containment::Outside);
    }

    #[test]
    fn straddling_box_intersects() {
        let f = standard_frustum();
        // Box spanning the near plane and behind the camera.
        let b = Aabb::new(Vec3::new(-0.5, -0.5, 4.0), Vec3::new(0.5, 0.5, 20.0));
        assert_eq!(f.classify(&b), Containment::Intersecting);
    }

    #[test]
    fn empty_box_outside() {
        assert_eq!(standard_frustum().classify(&Aabb::EMPTY), Containment::Outside);
    }

    #[test]
    fn huge_box_intersects() {
        let f = standard_frustum();
        let b = Aabb::new(Vec3::splat(-1e4), Vec3::splat(1e4));
        assert_eq!(f.classify(&b), Containment::Intersecting);
    }
}
