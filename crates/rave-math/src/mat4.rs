//! 4×4 column-major matrices.
//!
//! The convention matches OpenGL / Java3D (the APIs the paper's
//! implementation used): column-major storage, right-handed world space,
//! camera looking down `-Z`, clip space `z ∈ [-1, 1]`.

use crate::{Quat, Vec3, Vec4};

/// Column-major 4×4 matrix. `cols[c]` is column `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mat4 {
    pub cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    #[inline]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self { cols: [c0, c1, c2, c3] }
    }

    /// Element at `row`, `col`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        let c = self.cols[col];
        match row {
            0 => c.x,
            1 => c.y,
            2 => c.z,
            3 => c.w,
            _ => panic!("row out of range"),
        }
    }

    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    pub fn scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    pub fn from_quat(q: Quat) -> Self {
        q.to_mat4()
    }

    /// Compose translation · rotation · scale (the scene-graph transform
    /// node order).
    pub fn trs(t: Vec3, r: Quat, s: Vec3) -> Self {
        Self::translation(t) * r.to_mat4() * Self::scale(s)
    }

    /// Right-handed look-at view matrix (camera at `eye`, looking at
    /// `target`, `up` approximately up).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized(); // forward
        let r = f.cross(up).normalized(); // right
        let u = r.cross(f); // true up
        Self::from_cols(
            Vec4::new(r.x, u.x, -f.x, 0.0),
            Vec4::new(r.y, u.y, -f.y, 0.0),
            Vec4::new(r.z, u.z, -f.z, 0.0),
            Vec4::new(-r.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Right-handed perspective projection, depth to `[-1, 1]` (GL-style).
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        let f = 1.0 / (fov_y * 0.5).tan();
        let nf = 1.0 / (near - far);
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (far + near) * nf, -1.0),
            Vec4::new(0.0, 0.0, 2.0 * far * near * nf, 0.0),
        )
    }

    /// Right-handed orthographic projection, depth to `[-1, 1]`.
    pub fn orthographic(l: f32, r: f32, b: f32, t: f32, near: f32, far: f32) -> Self {
        let rl = 1.0 / (r - l);
        let tb = 1.0 / (t - b);
        let fnr = 1.0 / (far - near);
        Self::from_cols(
            Vec4::new(2.0 * rl, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 2.0 * tb, 0.0, 0.0),
            Vec4::new(0.0, 0.0, -2.0 * fnr, 0.0),
            Vec4::new(-(r + l) * rl, -(t + b) * tb, -(far + near) * fnr, 1.0),
        )
    }

    #[inline]
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transform a point (w = 1), returning the Cartesian result. Only valid
    /// for affine matrices; projective transforms must go through
    /// [`Mat4::mul_vec4`] and a perspective divide.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(p.extend(1.0)).truncate()
    }

    /// Transform a direction (w = 0): rotation/scale only, no translation.
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec4(d.extend(0.0)).truncate()
    }

    pub fn transpose(&self) -> Self {
        Self::from_cols(
            Vec4::new(self.cols[0].x, self.cols[1].x, self.cols[2].x, self.cols[3].x),
            Vec4::new(self.cols[0].y, self.cols[1].y, self.cols[2].y, self.cols[3].y),
            Vec4::new(self.cols[0].z, self.cols[1].z, self.cols[2].z, self.cols[3].z),
            Vec4::new(self.cols[0].w, self.cols[1].w, self.cols[2].w, self.cols[3].w),
        )
    }

    pub fn determinant(&self) -> f32 {
        let m = |r: usize, c: usize| self.at(r, c);
        let s0 = m(0, 0) * m(1, 1) - m(1, 0) * m(0, 1);
        let s1 = m(0, 0) * m(1, 2) - m(1, 0) * m(0, 2);
        let s2 = m(0, 0) * m(1, 3) - m(1, 0) * m(0, 3);
        let s3 = m(0, 1) * m(1, 2) - m(1, 1) * m(0, 2);
        let s4 = m(0, 1) * m(1, 3) - m(1, 1) * m(0, 3);
        let s5 = m(0, 2) * m(1, 3) - m(1, 2) * m(0, 3);
        let c5 = m(2, 2) * m(3, 3) - m(3, 2) * m(2, 3);
        let c4 = m(2, 1) * m(3, 3) - m(3, 1) * m(2, 3);
        let c3 = m(2, 1) * m(3, 2) - m(3, 1) * m(2, 2);
        let c2 = m(2, 0) * m(3, 3) - m(3, 0) * m(2, 3);
        let c1 = m(2, 0) * m(3, 2) - m(3, 0) * m(2, 2);
        let c0 = m(2, 0) * m(3, 1) - m(3, 0) * m(2, 1);
        s0 * c5 - s1 * c4 + s2 * c3 + s3 * c2 - s4 * c1 + s5 * c0
    }

    /// General inverse via the adjugate. Returns `None` for singular
    /// matrices (collapsed scale in a malformed scene transform).
    pub fn inverse(&self) -> Option<Self> {
        let m = |r: usize, c: usize| self.at(r, c);
        let s0 = m(0, 0) * m(1, 1) - m(1, 0) * m(0, 1);
        let s1 = m(0, 0) * m(1, 2) - m(1, 0) * m(0, 2);
        let s2 = m(0, 0) * m(1, 3) - m(1, 0) * m(0, 3);
        let s3 = m(0, 1) * m(1, 2) - m(1, 1) * m(0, 2);
        let s4 = m(0, 1) * m(1, 3) - m(1, 1) * m(0, 3);
        let s5 = m(0, 2) * m(1, 3) - m(1, 2) * m(0, 3);
        let c5 = m(2, 2) * m(3, 3) - m(3, 2) * m(2, 3);
        let c4 = m(2, 1) * m(3, 3) - m(3, 1) * m(2, 3);
        let c3 = m(2, 1) * m(3, 2) - m(3, 1) * m(2, 2);
        let c2 = m(2, 0) * m(3, 3) - m(3, 0) * m(2, 3);
        let c1 = m(2, 0) * m(3, 2) - m(3, 0) * m(2, 2);
        let c0 = m(2, 0) * m(3, 1) - m(3, 0) * m(2, 1);
        let det = s0 * c5 - s1 * c4 + s2 * c3 + s3 * c2 - s4 * c1 + s5 * c0;
        if det.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / det;
        Some(Self::from_cols(
            Vec4::new(
                (m(1, 1) * c5 - m(1, 2) * c4 + m(1, 3) * c3) * inv,
                (-m(1, 0) * c5 + m(1, 2) * c2 - m(1, 3) * c1) * inv,
                (m(1, 0) * c4 - m(1, 1) * c2 + m(1, 3) * c0) * inv,
                (-m(1, 0) * c3 + m(1, 1) * c1 - m(1, 2) * c0) * inv,
            ),
            Vec4::new(
                (-m(0, 1) * c5 + m(0, 2) * c4 - m(0, 3) * c3) * inv,
                (m(0, 0) * c5 - m(0, 2) * c2 + m(0, 3) * c1) * inv,
                (-m(0, 0) * c4 + m(0, 1) * c2 - m(0, 3) * c0) * inv,
                (m(0, 0) * c3 - m(0, 1) * c1 + m(0, 2) * c0) * inv,
            ),
            Vec4::new(
                (m(3, 1) * s5 - m(3, 2) * s4 + m(3, 3) * s3) * inv,
                (-m(3, 0) * s5 + m(3, 2) * s2 - m(3, 3) * s1) * inv,
                (m(3, 0) * s4 - m(3, 1) * s2 + m(3, 3) * s0) * inv,
                (-m(3, 0) * s3 + m(3, 1) * s1 - m(3, 2) * s0) * inv,
            ),
            Vec4::new(
                (-m(2, 1) * s5 + m(2, 2) * s4 - m(2, 3) * s3) * inv,
                (m(2, 0) * s5 - m(2, 2) * s2 + m(2, 3) * s1) * inv,
                (-m(2, 0) * s4 + m(2, 1) * s2 - m(2, 3) * s0) * inv,
                (m(2, 0) * s3 - m(2, 1) * s1 + m(2, 2) * s0) * inv,
            ),
        ))
    }
}

impl std::ops::Mul for Mat4 {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        Self::from_cols(
            self.mul_vec4(o.cols[0]),
            self.mul_vec4(o.cols[1]),
            self.mul_vec4(o.cols[2]),
            self.mul_vec4(o.cols[3]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mat_approx_eq(a: &Mat4, b: &Mat4) -> bool {
        (0..4).all(|r| (0..4).all(|c| approx_eq(a.at(r, c), b.at(r, c), 1e-5)))
    }

    #[test]
    fn identity_is_neutral() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat4::IDENTITY.transform_point(p), p);
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let m = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        let p = m.transform_point(Vec3::X);
        assert!(approx_eq(p.x, 0.0, 1e-6));
        assert!(approx_eq(p.y, 1.0, 1e-6));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat4::trs(
            Vec3::new(3.0, -1.0, 2.0),
            Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0).normalized(), 0.7),
            Vec3::new(2.0, 0.5, 1.5),
        );
        let inv = m.inverse().expect("invertible");
        assert!(mat_approx_eq(&(m * inv), &Mat4::IDENTITY));
    }

    #[test]
    fn singular_has_no_inverse() {
        let m = Mat4::scale(Vec3::new(1.0, 0.0, 1.0));
        assert!(m.inverse().is_none());
    }

    #[test]
    fn look_at_centers_target_on_axis() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let v = Mat4::look_at(eye, Vec3::ZERO, Vec3::Y);
        let p = v.transform_point(Vec3::ZERO);
        // Target straight ahead: on -Z in view space, 5 units away.
        assert!(approx_eq(p.x, 0.0, 1e-6));
        assert!(approx_eq(p.y, 0.0, 1e-6));
        assert!(approx_eq(p.z, -5.0, 1e-6));
    }

    #[test]
    fn perspective_maps_near_far_to_ndc() {
        let p = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        let near = p.mul_vec4(Vec4::new(0.0, 0.0, -1.0, 1.0)).perspective_divide();
        let far = p.mul_vec4(Vec4::new(0.0, 0.0, -100.0, 1.0)).perspective_divide();
        assert!(approx_eq(near.z, -1.0, 1e-5));
        assert!(approx_eq(far.z, 1.0, 1e-4));
    }

    #[test]
    fn orthographic_maps_box_to_ndc() {
        let m = Mat4::orthographic(-2.0, 2.0, -1.0, 1.0, 0.0, 10.0);
        let p = m.transform_point(Vec3::new(2.0, 1.0, -10.0));
        assert!(approx_eq(p.x, 1.0, 1e-6));
        assert!(approx_eq(p.y, 1.0, 1e-6));
        assert!(approx_eq(p.z, 1.0, 1e-6));
    }

    #[test]
    fn matrix_multiply_composes() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let r = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        // t * r: rotate first, then translate.
        let p = (t * r).transform_point(Vec3::X);
        assert!(approx_eq(p.x, 1.0, 1e-6));
        assert!(approx_eq(p.y, 1.0, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::perspective(1.0, 1.5, 0.1, 50.0);
        assert!(mat_approx_eq(&m.transpose().transpose(), &m));
    }

    #[test]
    fn determinant_of_scale() {
        let m = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx_eq(m.determinant(), 24.0, 1e-5));
    }
}
