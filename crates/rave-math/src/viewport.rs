//! NDC ↔ pixel-space mapping.

use crate::{Vec2, Vec3};

/// A pixel-space viewport. Maps NDC `[-1, 1]²` to pixel coordinates with
/// `(0, 0)` at the *top-left* (framebuffer convention), Y down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Viewport {
    pub x: u32,
    pub y: u32,
    pub width: u32,
    pub height: u32,
}

impl Viewport {
    pub fn new(width: u32, height: u32) -> Self {
        Self { x: 0, y: 0, width, height }
    }

    pub fn with_origin(x: u32, y: u32, width: u32, height: u32) -> Self {
        Self { x, y, width, height }
    }

    pub fn aspect(&self) -> f32 {
        self.width as f32 / self.height.max(1) as f32
    }

    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Map an NDC point to continuous pixel coordinates (Z passes through
    /// unchanged as the depth value).
    #[inline]
    pub fn ndc_to_pixel(&self, ndc: Vec3) -> Vec3 {
        Vec3::new(
            self.x as f32 + (ndc.x + 1.0) * 0.5 * self.width as f32,
            self.y as f32 + (1.0 - ndc.y) * 0.5 * self.height as f32,
            ndc.z,
        )
    }

    /// Map continuous pixel coordinates back to NDC X/Y.
    #[inline]
    pub fn pixel_to_ndc(&self, px: Vec2) -> Vec2 {
        Vec2::new(
            (px.x - self.x as f32) / self.width as f32 * 2.0 - 1.0,
            1.0 - (px.y - self.y as f32) / self.height as f32 * 2.0,
        )
    }

    /// Split this viewport into one vertical strip per weight, strip
    /// widths proportional to the weights (largest-remainder rounding)
    /// with a 1-pixel floor per strip. Strips cover every pixel exactly
    /// once, in order. A zero total weight falls back to equal widths.
    ///
    /// Panics if `weights` is empty or has more entries than the viewport
    /// has pixel columns — callers must drop participants first (the tile
    /// planner does).
    pub fn split_columns_weighted(&self, weights: &[u64]) -> Vec<Viewport> {
        let n = weights.len();
        assert!(n > 0, "weighted split needs at least one strip");
        assert!(
            n as u64 <= self.width as u64,
            "more strips ({n}) than pixel columns ({})",
            self.width
        );
        let total: u64 = weights.iter().sum();
        let ones = vec![1u64; n];
        let weights = if total == 0 { &ones[..] } else { weights };
        let total: u64 = weights.iter().sum();

        // Reserve the 1px floor for every strip, then hand out the spare
        // columns by largest remainder (ties broken by index, so the
        // result is deterministic).
        let spare = self.width as u64 - n as u64;
        let mut widths: Vec<u64> = vec![1; n];
        let mut remainders: Vec<(usize, u64)> = Vec::with_capacity(n);
        let mut handed = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            let exact = spare * w;
            widths[i] += exact / total;
            handed += exact / total;
            remainders.push((i, exact % total));
        }
        remainders.sort_by_key(|&(i, rem)| (std::cmp::Reverse(rem), i));
        for &(i, _) in remainders.iter().take((spare - handed) as usize) {
            widths[i] += 1;
        }

        let mut strips = Vec::with_capacity(n);
        let mut x = self.x;
        for w in widths {
            strips.push(Viewport::with_origin(x, self.y, w as u32, self.height));
            x += w as u32;
        }
        strips
    }

    /// Split this viewport into a `cols × rows` grid of tiles, row-major.
    /// Tile edges cover every pixel exactly once even when the dimensions
    /// do not divide evenly (the last row/column absorbs the remainder) —
    /// the invariant the tile compositor depends on.
    pub fn split_tiles(&self, cols: u32, rows: u32) -> Vec<Viewport> {
        assert!(cols > 0 && rows > 0, "tile grid must be non-empty");
        let mut tiles = Vec::with_capacity((cols * rows) as usize);
        let tw = self.width / cols;
        let th = self.height / rows;
        for r in 0..rows {
            for c in 0..cols {
                let x = self.x + c * tw;
                let y = self.y + r * th;
                let w = if c == cols - 1 { self.width - c * tw } else { tw };
                let h = if r == rows - 1 { self.height - r * th } else { th };
                tiles.push(Viewport::with_origin(x, y, w, h));
            }
        }
        tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndc_corners_map_to_pixel_corners() {
        let vp = Viewport::new(200, 100);
        let tl = vp.ndc_to_pixel(Vec3::new(-1.0, 1.0, 0.0));
        let br = vp.ndc_to_pixel(Vec3::new(1.0, -1.0, 0.0));
        assert_eq!((tl.x, tl.y), (0.0, 0.0));
        assert_eq!((br.x, br.y), (200.0, 100.0));
    }

    #[test]
    fn pixel_ndc_roundtrip() {
        let vp = Viewport::new(640, 480);
        let p = Vec2::new(123.5, 456.5);
        let ndc = vp.pixel_to_ndc(p);
        let back = vp.ndc_to_pixel(Vec3::new(ndc.x, ndc.y, 0.0));
        assert!((back.x - p.x).abs() < 1e-3);
        assert!((back.y - p.y).abs() < 1e-3);
    }

    #[test]
    fn tiles_partition_exactly() {
        let vp = Viewport::new(201, 99); // deliberately not divisible
        let tiles = vp.split_tiles(4, 3);
        assert_eq!(tiles.len(), 12);
        let total: usize = tiles.iter().map(|t| t.pixel_count()).sum();
        assert_eq!(total, vp.pixel_count());
        // No overlap: each pixel in exactly one tile.
        let mut covered = vec![false; vp.pixel_count()];
        for t in &tiles {
            for yy in t.y..t.y + t.height {
                for xx in t.x..t.x + t.width {
                    let idx = (yy * vp.width + xx) as usize;
                    assert!(!covered[idx], "pixel covered twice");
                    covered[idx] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn single_tile_is_identity() {
        let vp = Viewport::new(64, 64);
        assert_eq!(vp.split_tiles(1, 1), vec![vp]);
    }

    #[test]
    #[should_panic]
    fn zero_tile_grid_panics() {
        Viewport::new(10, 10).split_tiles(0, 1);
    }

    #[test]
    fn aspect_ratio() {
        assert_eq!(Viewport::new(200, 100).aspect(), 2.0);
    }

    fn assert_partition(vp: &Viewport, strips: &[Viewport]) {
        let mut x = vp.x;
        for s in strips {
            assert_eq!(s.x, x, "contiguous strips");
            assert_eq!((s.y, s.height), (vp.y, vp.height));
            assert!(s.width >= 1, "no zero-width strips");
            x += s.width;
        }
        assert_eq!(x, vp.x + vp.width, "strips cover the full width");
    }

    #[test]
    fn weighted_split_tracks_weights() {
        let vp = Viewport::new(100, 40);
        let strips = vp.split_columns_weighted(&[3, 1]);
        assert_partition(&vp, &strips);
        assert_eq!(strips[0].width, 75);
        assert_eq!(strips[1].width, 25);
    }

    #[test]
    fn weighted_split_zero_total_is_equal() {
        let vp = Viewport::new(90, 10);
        let strips = vp.split_columns_weighted(&[0, 0, 0]);
        assert_partition(&vp, &strips);
        assert!(strips.iter().all(|s| s.width == 30));
    }

    #[test]
    fn weighted_split_extreme_skew_keeps_one_pixel_floor() {
        let vp = Viewport::new(10, 10);
        let strips = vp.split_columns_weighted(&[1_000_000, 0, 0]);
        assert_partition(&vp, &strips);
        assert_eq!(strips[0].width, 8);
        assert_eq!(strips[1].width, 1);
        assert_eq!(strips[2].width, 1);
    }

    #[test]
    fn weighted_split_one_column_per_strip() {
        let vp = Viewport::new(3, 5);
        let strips = vp.split_columns_weighted(&[7, 7, 7]);
        assert_partition(&vp, &strips);
        assert!(strips.iter().all(|s| s.width == 1));
    }

    #[test]
    #[should_panic]
    fn weighted_split_rejects_too_many_strips() {
        Viewport::new(2, 2).split_columns_weighted(&[1, 1, 1]);
    }
}
