//! NDC ↔ pixel-space mapping.

use crate::{Vec2, Vec3};

/// A pixel-space viewport. Maps NDC `[-1, 1]²` to pixel coordinates with
/// `(0, 0)` at the *top-left* (framebuffer convention), Y down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Viewport {
    pub x: u32,
    pub y: u32,
    pub width: u32,
    pub height: u32,
}

impl Viewport {
    pub fn new(width: u32, height: u32) -> Self {
        Self { x: 0, y: 0, width, height }
    }

    pub fn with_origin(x: u32, y: u32, width: u32, height: u32) -> Self {
        Self { x, y, width, height }
    }

    pub fn aspect(&self) -> f32 {
        self.width as f32 / self.height.max(1) as f32
    }

    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Map an NDC point to continuous pixel coordinates (Z passes through
    /// unchanged as the depth value).
    #[inline]
    pub fn ndc_to_pixel(&self, ndc: Vec3) -> Vec3 {
        Vec3::new(
            self.x as f32 + (ndc.x + 1.0) * 0.5 * self.width as f32,
            self.y as f32 + (1.0 - ndc.y) * 0.5 * self.height as f32,
            ndc.z,
        )
    }

    /// Map continuous pixel coordinates back to NDC X/Y.
    #[inline]
    pub fn pixel_to_ndc(&self, px: Vec2) -> Vec2 {
        Vec2::new(
            (px.x - self.x as f32) / self.width as f32 * 2.0 - 1.0,
            1.0 - (px.y - self.y as f32) / self.height as f32 * 2.0,
        )
    }

    /// Split this viewport into a `cols × rows` grid of tiles, row-major.
    /// Tile edges cover every pixel exactly once even when the dimensions
    /// do not divide evenly (the last row/column absorbs the remainder) —
    /// the invariant the tile compositor depends on.
    pub fn split_tiles(&self, cols: u32, rows: u32) -> Vec<Viewport> {
        assert!(cols > 0 && rows > 0, "tile grid must be non-empty");
        let mut tiles = Vec::with_capacity((cols * rows) as usize);
        let tw = self.width / cols;
        let th = self.height / rows;
        for r in 0..rows {
            for c in 0..cols {
                let x = self.x + c * tw;
                let y = self.y + r * th;
                let w = if c == cols - 1 { self.width - c * tw } else { tw };
                let h = if r == rows - 1 { self.height - r * th } else { th };
                tiles.push(Viewport::with_origin(x, y, w, h));
            }
        }
        tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndc_corners_map_to_pixel_corners() {
        let vp = Viewport::new(200, 100);
        let tl = vp.ndc_to_pixel(Vec3::new(-1.0, 1.0, 0.0));
        let br = vp.ndc_to_pixel(Vec3::new(1.0, -1.0, 0.0));
        assert_eq!((tl.x, tl.y), (0.0, 0.0));
        assert_eq!((br.x, br.y), (200.0, 100.0));
    }

    #[test]
    fn pixel_ndc_roundtrip() {
        let vp = Viewport::new(640, 480);
        let p = Vec2::new(123.5, 456.5);
        let ndc = vp.pixel_to_ndc(p);
        let back = vp.ndc_to_pixel(Vec3::new(ndc.x, ndc.y, 0.0));
        assert!((back.x - p.x).abs() < 1e-3);
        assert!((back.y - p.y).abs() < 1e-3);
    }

    #[test]
    fn tiles_partition_exactly() {
        let vp = Viewport::new(201, 99); // deliberately not divisible
        let tiles = vp.split_tiles(4, 3);
        assert_eq!(tiles.len(), 12);
        let total: usize = tiles.iter().map(|t| t.pixel_count()).sum();
        assert_eq!(total, vp.pixel_count());
        // No overlap: each pixel in exactly one tile.
        let mut covered = vec![false; vp.pixel_count()];
        for t in &tiles {
            for yy in t.y..t.y + t.height {
                for xx in t.x..t.x + t.width {
                    let idx = (yy * vp.width + xx) as usize;
                    assert!(!covered[idx], "pixel covered twice");
                    covered[idx] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn single_tile_is_identity() {
        let vp = Viewport::new(64, 64);
        assert_eq!(vp.split_tiles(1, 1), vec![vp]);
    }

    #[test]
    #[should_panic]
    fn zero_tile_grid_panics() {
        Viewport::new(10, 10).split_tiles(0, 1);
    }

    #[test]
    fn aspect_ratio() {
        assert_eq!(Viewport::new(200, 100).aspect(), 2.0);
    }
}
