//! Axis-aligned bounding boxes.
//!
//! Every scene node carries an AABB; the distribution planner uses them for
//! spatial partitioning and the renderer for frustum culling.

use crate::{Mat4, Vec3};

/// An axis-aligned box. An *empty* box has `min > max` on every axis and is
/// the identity for [`Aabb::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Default for Aabb {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl Aabb {
    pub const EMPTY: Self = Self {
        min: Vec3::new(f32::INFINITY, f32::INFINITY, f32::INFINITY),
        max: Vec3::new(f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY),
    };

    #[inline]
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Self { min, max }
    }

    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        let mut b = Self::EMPTY;
        for p in points {
            b.expand(p);
        }
        b
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    pub fn union(&self, o: &Self) -> Self {
        Self { min: self.min.min(o.min), max: self.max.max(o.max) }
    }

    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Radius of the bounding sphere centred at [`Aabb::center`].
    pub fn radius(&self) -> f32 {
        self.extent().length() * 0.5
    }

    pub fn contains(&self, p: Vec3) -> bool {
        !self.is_empty()
            && p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    pub fn intersects(&self, o: &Self) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// The eight corner points (undefined content for an empty box).
    pub fn corners(&self) -> [Vec3; 8] {
        let (mn, mx) = (self.min, self.max);
        [
            Vec3::new(mn.x, mn.y, mn.z),
            Vec3::new(mx.x, mn.y, mn.z),
            Vec3::new(mn.x, mx.y, mn.z),
            Vec3::new(mx.x, mx.y, mn.z),
            Vec3::new(mn.x, mn.y, mx.z),
            Vec3::new(mx.x, mn.y, mx.z),
            Vec3::new(mn.x, mx.y, mx.z),
            Vec3::new(mx.x, mx.y, mx.z),
        ]
    }

    /// AABB of this box under an affine transform (the world-space bound of
    /// a locally-bounded scene node).
    pub fn transformed(&self, m: &Mat4) -> Self {
        if self.is_empty() {
            return Self::EMPTY;
        }
        Self::from_points(self.corners().into_iter().map(|c| m.transform_point(c)))
    }

    /// Surface area (SAH metric for the distribution planner's spatial
    /// splits).
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_union_identity() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(Aabb::EMPTY.union(&b), b);
        assert_eq!(b.union(&Aabb::EMPTY), b);
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [Vec3::new(1.0, -2.0, 3.0), Vec3::new(-1.0, 4.0, 0.0), Vec3::ZERO];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 4.0, 3.0));
    }

    #[test]
    fn empty_contains_nothing() {
        assert!(!Aabb::EMPTY.contains(Vec3::ZERO));
        assert!(!Aabb::EMPTY.intersects(&Aabb::new(Vec3::ZERO, Vec3::ONE)));
    }

    #[test]
    fn intersection_symmetric() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(3.0));
        let c = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn transform_translates_bounds() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let t = Mat4::translation(Vec3::new(10.0, 0.0, 0.0));
        let tb = b.transformed(&t);
        assert_eq!(tb.min, Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(tb.max, Vec3::new(11.0, 1.0, 1.0));
    }

    #[test]
    fn transform_of_empty_stays_empty() {
        let t = Mat4::translation(Vec3::ONE);
        assert!(Aabb::EMPTY.transformed(&t).is_empty());
    }

    #[test]
    fn rotated_box_still_bounds_corners() {
        let b = Aabb::new(-Vec3::ONE, Vec3::ONE);
        let m = Mat4::rotation_y(0.7);
        let tb = b.transformed(&m);
        for c in b.corners() {
            assert!(tb.contains(m.transform_point(c)));
        }
    }

    #[test]
    fn surface_area_unit_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.surface_area(), 6.0);
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
    }

    #[test]
    fn center_and_radius() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert_eq!(b.center(), Vec3::splat(1.0));
        assert!((b.radius() - 3.0_f32.sqrt()).abs() < 1e-6);
    }
}
