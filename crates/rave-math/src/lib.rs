//! Minimal 3-D linear algebra for the RAVE reproduction.
//!
//! Everything in the renderer, scene graph and distribution planner is built
//! on these types. The crate is dependency-free and deterministic: all
//! operations are plain `f32` arithmetic with no platform intrinsics, so
//! rasterized images are bit-identical across runs (required for the
//! figure-regeneration harness).

pub mod aabb;
pub mod frustum;
pub mod mat4;
pub mod quat;
pub mod vec;
pub mod viewport;

pub use aabb::Aabb;
pub use frustum::{Frustum, Plane};
pub use mat4::Mat4;
pub use quat::Quat;
pub use vec::{Vec2, Vec3, Vec4};
pub use viewport::Viewport;

/// Clamp a float into `[lo, hi]`.
#[inline]
pub fn clampf(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Linear interpolation between `a` and `b` by `t` in `[0, 1]`.
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Approximate float equality used throughout the test-suite.
#[inline]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_behaves() {
        assert_eq!(clampf(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clampf(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clampf(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1_000_000.0, 1_000_000.05, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-6));
    }
}
