//! Unit quaternions for scene-node and camera orientations.

use crate::{Mat4, Vec3, Vec4};

/// A rotation quaternion `w + xi + yj + zk`. Constructors produce unit
/// quaternions; `normalized` is available to re-unitize after long
/// accumulation chains (interactive camera drags).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Quat {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Quat {
    pub const IDENTITY: Self = Self { x: 0.0, y: 0.0, z: 0.0, w: 1.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Rotation of `angle` radians about the (unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let (s, c) = (angle * 0.5).sin_cos();
        Self::new(axis.x * s, axis.y * s, axis.z * s, c)
    }

    /// Yaw (Y), pitch (X), roll (Z) — the camera-drag decomposition the
    /// interaction layer uses.
    pub fn from_yaw_pitch_roll(yaw: f32, pitch: f32, roll: f32) -> Self {
        Self::from_axis_angle(Vec3::Y, yaw)
            * Self::from_axis_angle(Vec3::X, pitch)
            * Self::from_axis_angle(Vec3::Z, roll)
    }

    #[inline]
    pub fn length(self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z + self.w * self.w).sqrt()
    }

    pub fn normalized(self) -> Self {
        let len = self.length();
        if len <= f32::EPSILON {
            Self::IDENTITY
        } else {
            let inv = 1.0 / len;
            Self::new(self.x * inv, self.y * inv, self.z * inv, self.w * inv)
        }
    }

    /// Inverse of a unit quaternion (the conjugate).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(-self.x, -self.y, -self.z, self.w)
    }

    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q * v * q^-1, expanded to avoid constructing temporaries.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Spherical linear interpolation (used by session playback to smooth
    /// recorded camera paths).
    pub fn slerp(self, mut other: Self, t: f32) -> Self {
        let mut cos = self.x * other.x + self.y * other.y + self.z * other.z + self.w * other.w;
        // Take the short way round.
        if cos < 0.0 {
            cos = -cos;
            other = Self::new(-other.x, -other.y, -other.z, -other.w);
        }
        if cos > 0.9995 {
            // Nearly parallel: fall back to nlerp.
            return Self::new(
                self.x + (other.x - self.x) * t,
                self.y + (other.y - self.y) * t,
                self.z + (other.z - self.z) * t,
                self.w + (other.w - self.w) * t,
            )
            .normalized();
        }
        let theta = cos.acos();
        let sin = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin;
        let b = (t * theta).sin() / sin;
        Self::new(
            self.x * a + other.x * b,
            self.y * a + other.y * b,
            self.z * a + other.z * b,
            self.w * a + other.w * b,
        )
    }

    pub fn to_mat4(self) -> Mat4 {
        let (x, y, z, w) = (self.x, self.y, self.z, self.w);
        let (x2, y2, z2) = (x + x, y + y, z + z);
        let (xx, xy, xz) = (x * x2, x * y2, x * z2);
        let (yy, yz, zz) = (y * y2, y * z2, z * z2);
        let (wx, wy, wz) = (w * x2, w * y2, w * z2);
        Mat4::from_cols(
            Vec4::new(1.0 - (yy + zz), xy + wz, xz - wy, 0.0),
            Vec4::new(xy - wz, 1.0 - (xx + zz), yz + wx, 0.0),
            Vec4::new(xz + wy, yz - wx, 1.0 - (xx + yy), 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }
}

impl std::ops::Mul for Quat {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn vec_approx(a: Vec3, b: Vec3) -> bool {
        approx_eq(a.x, b.x, 1e-5) && approx_eq(a.y, b.y, 1e-5) && approx_eq(a.z, b.z, 1e-5)
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(vec_approx(Quat::IDENTITY.rotate(v), v));
    }

    #[test]
    fn axis_angle_quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
        assert!(vec_approx(q.rotate(Vec3::X), Vec3::Y));
    }

    #[test]
    fn rotation_matches_matrix_form() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -1.0).normalized(), 1.1);
        let v = Vec3::new(0.3, -0.7, 2.0);
        assert!(vec_approx(q.rotate(v), q.to_mat4().transform_point(v)));
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::Y, 0.9);
        let v = Vec3::new(1.0, 0.5, -2.0);
        assert!(vec_approx(q.conjugate().rotate(q.rotate(v)), v));
    }

    #[test]
    fn composition_order() {
        // (a * b).rotate == a.rotate(b.rotate(.))
        let a = Quat::from_axis_angle(Vec3::X, 0.4);
        let b = Quat::from_axis_angle(Vec3::Y, -0.8);
        let v = Vec3::new(0.2, 1.0, -0.5);
        assert!(vec_approx((a * b).rotate(v), a.rotate(b.rotate(v))));
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
        assert!(vec_approx(a.slerp(b, 0.0).rotate(Vec3::X), Vec3::X));
        assert!(vec_approx(a.slerp(b, 1.0).rotate(Vec3::X), Vec3::Y));
        let mid = a.slerp(b, 0.5).rotate(Vec3::X);
        let expect = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_4).rotate(Vec3::X);
        assert!(vec_approx(mid, expect));
    }

    #[test]
    fn slerp_takes_short_path() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.1);
        let b = Quat::from_axis_angle(Vec3::Z, 0.2);
        let negated = Quat::new(-b.x, -b.y, -b.z, -b.w); // same rotation
        let v = a.slerp(negated, 0.5).rotate(Vec3::X);
        let expect = Quat::from_axis_angle(Vec3::Z, 0.15).rotate(Vec3::X);
        assert!(vec_approx(v, expect));
    }

    #[test]
    fn normalized_unit_length() {
        let q = Quat::new(1.0, 2.0, 3.0, 4.0).normalized();
        assert!(approx_eq(q.length(), 1.0, 1e-6));
    }
}
