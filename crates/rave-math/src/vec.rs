//! 2-, 3- and 4-component float vectors.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component vector (texture coordinates, screen positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

impl Vec2 {
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y
    }

    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// 2-D cross product (signed area of the parallelogram); the sign gives
    /// the winding of a screen-space triangle, which the rasterizer uses for
    /// back-face tests and edge functions.
    #[inline]
    pub fn cross(self, o: Self) -> f32 {
        self.x * o.y - self.y * o.x
    }
}

impl Add for Vec2 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self::new(self.x * s, self.y * s)
    }
}

/// A 3-component vector (positions, normals, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Self = Self { x: 1.0, y: 1.0, z: 1.0 };
    pub const X: Self = Self { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Self = Self { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Self = Self { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn length_sq(self) -> f32 {
        self.dot(self)
    }

    #[inline]
    pub fn length(self) -> f32 {
        self.length_sq().sqrt()
    }

    /// Unit vector in the same direction; returns `ZERO` for a zero vector
    /// instead of producing NaNs (degenerate normals appear in decimated
    /// meshes and must not poison the shading pipeline).
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        if len <= f32::EPSILON {
            Self::ZERO
        } else {
            self * (1.0 / len)
        }
    }

    #[inline]
    pub fn min(self, o: Self) -> Self {
        Self::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    #[inline]
    pub fn lerp(self, o: Self, t: f32) -> Self {
        self + (o - self) * t
    }

    /// Component-wise multiply (modulating a material color by a light).
    #[inline]
    pub fn mul_elem(self, o: Self) -> Self {
        Self::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    #[inline]
    pub fn distance(self, o: Self) -> f32 {
        (self - o).length()
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f32) {
        *self = *self * s;
    }
}

impl Div<f32> for Vec3 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        self * (1.0 / s)
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

/// A 4-component homogeneous vector (clip-space positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec4 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

impl Vec4 {
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: project a clip-space point to NDC. The caller
    /// must have clipped against `w > 0` first.
    #[inline]
    pub fn perspective_divide(self) -> Vec3 {
        let inv = 1.0 / self.w;
        Vec3::new(self.x * inv, self.y * inv, self.z * inv)
    }

    #[inline]
    pub fn lerp(self, o: Self, t: f32) -> Self {
        Self::new(
            self.x + (o.x - self.x) * t,
            self.y + (o.y - self.y) * t,
            self.z + (o.z - self.z) * t,
            self.w + (o.w - self.w) * t,
        )
    }
}

impl Add for Vec4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z, self.w + o.w)
    }
}

impl Sub for Vec4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z, self.w - o.w)
    }
}

impl Mul<f32> for Vec4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s, self.w * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-6));
        assert!(approx_eq(c.dot(b), 0.0, 1e-6));
    }

    #[test]
    fn cross_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn normalize_gives_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!(approx_eq(v.length(), 1.0, 1e-6));
    }

    #[test]
    fn perspective_divide_projects() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.perspective_divide(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec2_cross_sign_gives_winding() {
        // Counter-clockwise triangle in screen space => positive area.
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        let c = Vec2::new(0.0, 1.0);
        assert!((b - a).cross(c - a) > 0.0);
        assert!((c - a).cross(b - a) < 0.0);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, -6.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, -3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, -1.0));
    }
}
