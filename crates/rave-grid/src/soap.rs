//! SOAP 1.2-style envelope encoding/decoding.
//!
//! Calls really are marshalled to XML text and parsed back — the size
//! blow-up and per-element cost are measured, not assumed, which is what
//! drives the paper's decision to "back off from SOAP" for bulk data.

use rave_sim::SimTime;

/// A typed RPC argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Binary payload, base64-encoded on the wire (the 4/3 size blow-up is
    /// part of why SOAP loses for bulk data).
    Bytes(Vec<u8>),
}

impl SoapValue {
    fn type_name(&self) -> &'static str {
        match self {
            SoapValue::Str(_) => "xsd:string",
            SoapValue::Int(_) => "xsd:long",
            SoapValue::Float(_) => "xsd:double",
            SoapValue::Bool(_) => "xsd:boolean",
            SoapValue::Bytes(_) => "xsd:base64Binary",
        }
    }
}

/// One RPC envelope: operation + named arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SoapEnvelope {
    pub service: String,
    pub operation: String,
    pub args: Vec<(String, SoapValue)>,
}

impl SoapEnvelope {
    pub fn new(service: &str, operation: &str) -> Self {
        Self { service: service.into(), operation: operation.into(), args: Vec::new() }
    }

    pub fn arg(mut self, name: &str, value: SoapValue) -> Self {
        self.args.push((name.into(), value));
        self
    }
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[n as usize & 63] as char } else { '=' });
    }
    out
}

fn base64_decode(s: &str) -> Option<Vec<u8>> {
    let val = |c: u8| -> Option<u32> {
        Some(match c {
            b'A'..=b'Z' => (c - b'A') as u32,
            b'a'..=b'z' => (c - b'a' + 26) as u32,
            b'0'..=b'9' => (c - b'0' + 52) as u32,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        })
    };
    let bytes: Vec<u8> = s.bytes().filter(|&b| b != b'\n').collect();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        let mut n = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { val(c)? };
            n |= v << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

/// Encoder/decoder plus the marshalling cost model ("the time required to
/// marshall/demarshall the data", §4.3).
#[derive(Debug, Clone)]
pub struct SoapCodec {
    /// Seconds per XML element marshalled or parsed.
    pub per_element: f64,
    /// Seconds per payload byte converted to/from text.
    pub per_byte: f64,
}

impl Default for SoapCodec {
    fn default() -> Self {
        // 2004-era Java XML stacks: ~20 µs/element, ~80 ns/byte.
        Self { per_element: 20e-6, per_byte: 80e-9 }
    }
}

impl SoapCodec {
    /// Serialize an envelope to real XML text.
    pub fn encode(&self, env: &SoapEnvelope) -> String {
        use std::fmt::Write;
        let mut x = String::with_capacity(512);
        x.push_str("<?xml version=\"1.0\"?>\n");
        x.push_str("<soap:Envelope xmlns:soap=\"http://www.w3.org/2003/05/soap-envelope\">\n");
        x.push_str("<soap:Body>\n");
        let _ = writeln!(x, "<m:{} xmlns:m=\"urn:rave:{}\">", env.operation, env.service);
        for (name, value) in &env.args {
            let body = match value {
                SoapValue::Str(s) => xml_escape(s),
                SoapValue::Int(i) => i.to_string(),
                SoapValue::Float(f) => format!("{f:e}"),
                SoapValue::Bool(b) => b.to_string(),
                SoapValue::Bytes(b) => base64_encode(b),
            };
            let _ = writeln!(x, "<{name} xsi:type=\"{}\">{body}</{name}>", value.type_name());
        }
        let _ = writeln!(x, "</m:{}>", env.operation);
        x.push_str("</soap:Body>\n</soap:Envelope>\n");
        x
    }

    /// Parse an envelope produced by [`SoapCodec::encode`].
    pub fn decode(&self, xml: &str) -> Result<SoapEnvelope, String> {
        // Find the operation element: <m:OPNAME xmlns:m="urn:rave:SERVICE">
        let op_start = xml.find("<m:").ok_or("missing operation element")?;
        let rest = &xml[op_start + 3..];
        let op_end = rest.find(' ').ok_or("malformed operation tag")?;
        let operation = rest[..op_end].to_string();
        let svc_marker = "urn:rave:";
        let svc_at = rest.find(svc_marker).ok_or("missing service urn")?;
        let svc_rest = &rest[svc_at + svc_marker.len()..];
        let svc_end = svc_rest.find('"').ok_or("unterminated service urn")?;
        let service = svc_rest[..svc_end].to_string();

        let mut env = SoapEnvelope::new(&service, &operation);
        // Walk argument elements: <NAME xsi:type="TYPE">BODY</NAME>
        let body = &svc_rest[svc_end..];
        let mut cursor = 0usize;
        while let Some(open) = body[cursor..].find("xsi:type=\"") {
            // Backtrack to the element name.
            let abs = cursor + open;
            let tag_open = body[..abs].rfind('<').ok_or("orphan xsi:type")?;
            let name_end =
                body[tag_open + 1..].find(' ').ok_or("malformed argument tag")? + tag_open + 1;
            let name = body[tag_open + 1..name_end].to_string();
            let ty_start = abs + "xsi:type=\"".len();
            let ty_end = body[ty_start..].find('"').ok_or("unterminated type")? + ty_start;
            let ty = &body[ty_start..ty_end];
            let content_start = body[ty_end..].find('>').ok_or("unterminated tag")? + ty_end + 1;
            let close = format!("</{name}>");
            let content_end =
                body[content_start..].find(&close).ok_or("missing close tag")? + content_start;
            let content = &body[content_start..content_end];
            let value = match ty {
                "xsd:string" => SoapValue::Str(xml_unescape(content)),
                "xsd:long" => SoapValue::Int(content.parse().map_err(|e| format!("bad int: {e}"))?),
                "xsd:double" => {
                    SoapValue::Float(content.parse().map_err(|e| format!("bad float: {e}"))?)
                }
                "xsd:boolean" => {
                    SoapValue::Bool(content.parse().map_err(|e| format!("bad bool: {e}"))?)
                }
                "xsd:base64Binary" => SoapValue::Bytes(base64_decode(content).ok_or("bad base64")?),
                other => return Err(format!("unknown xsi:type {other}")),
            };
            env.args.push((name, value));
            cursor = content_end + close.len();
        }
        Ok(env)
    }

    /// Wire size of the encoded envelope.
    pub fn wire_size(&self, env: &SoapEnvelope) -> u64 {
        self.encode(env).len() as u64
    }

    /// CPU time to marshal (or demarshal — symmetric) an envelope.
    pub fn marshal_time(&self, env: &SoapEnvelope) -> SimTime {
        // Elements: envelope + body + operation + one per argument.
        let elements = 3 + env.args.len() as u64;
        let payload_bytes: u64 = env
            .args
            .iter()
            .map(|(_, v)| match v {
                SoapValue::Bytes(b) => b.len() as u64,
                SoapValue::Str(s) => s.len() as u64,
                _ => 8,
            })
            .sum();
        SimTime::from_secs(
            elements as f64 * self.per_element + payload_bytes as f64 * self.per_byte,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SoapEnvelope {
        SoapEnvelope::new("render-service", "createInstance")
            .arg("dataUrl", SoapValue::Str("rave://adrenochrome/Skull".into()))
            .arg("width", SoapValue::Int(200))
            .arg("quality", SoapValue::Float(0.75))
            .arg("stereo", SoapValue::Bool(false))
            .arg("token", SoapValue::Bytes(vec![1, 2, 3, 250, 251]))
    }

    #[test]
    fn roundtrip_all_types() {
        let codec = SoapCodec::default();
        let xml = codec.encode(&sample());
        let back = codec.decode(&xml).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn escaping_survives_roundtrip() {
        let codec = SoapCodec::default();
        let env = SoapEnvelope::new("s", "op").arg("tricky", SoapValue::Str("a<b & c>d".into()));
        let back = codec.decode(&codec.encode(&env)).unwrap();
        assert_eq!(back.args[0].1, SoapValue::Str("a<b & c>d".into()));
    }

    #[test]
    fn base64_roundtrip_various_lengths() {
        for len in 0..20 {
            let data: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("???!").is_none());
        assert!(base64_decode("abc").is_none(), "length not multiple of 4");
    }

    #[test]
    fn xml_overhead_dominates_small_payloads() {
        // "the size of the SOAP packets related to the size of the data":
        // a 4-byte int costs hundreds of XML bytes.
        let codec = SoapCodec::default();
        let env = SoapEnvelope::new("s", "ping").arg("x", SoapValue::Int(1));
        assert!(codec.wire_size(&env) > 50 * 4);
    }

    #[test]
    fn binary_payload_blows_up_by_4_over_3() {
        let codec = SoapCodec::default();
        let payload = vec![0u8; 9_000];
        let env = SoapEnvelope::new("s", "put").arg("data", SoapValue::Bytes(payload));
        let size = codec.wire_size(&env);
        assert!(size as f64 > 9_000.0 * 4.0 / 3.0, "base64 blow-up: {size}");
    }

    #[test]
    fn marshal_time_scales_with_payload() {
        let codec = SoapCodec::default();
        let small = SoapEnvelope::new("s", "op").arg("d", SoapValue::Bytes(vec![0; 100]));
        let big = SoapEnvelope::new("s", "op").arg("d", SoapValue::Bytes(vec![0; 1_000_000]));
        assert!(codec.marshal_time(&big).as_secs() > codec.marshal_time(&small).as_secs() * 100.0);
    }

    #[test]
    fn decode_rejects_malformed() {
        let codec = SoapCodec::default();
        assert!(codec.decode("<not-soap/>").is_err());
        assert!(codec.decode("").is_err());
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let codec = SoapCodec::default();
        let xml = codec
            .encode(&SoapEnvelope::new("s", "op").arg("x", SoapValue::Int(1)))
            .replace("xsd:long", "xsd:alien");
        assert!(codec.decode(&xml).is_err());
    }
}
