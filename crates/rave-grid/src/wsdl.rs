//! WSDL service descriptions and technical models.
//!
//! §3.2.2/§4.3: services advertise WSDL documents; a UDDI "technical
//! model" names an API contract, and "if any services are advertised as
//! adhering to this technical model, then we know they will have the same
//! API and underlying behaviour. Hence we have two technical models, one
//! for the data service and one for the render service."

use serde::{Deserialize, Serialize};

/// A named API contract registered as a UDDI tModel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechnicalModel {
    /// `rave:data-service:v1`
    DataService,
    /// `rave:render-service:v1`
    RenderService,
}

impl TechnicalModel {
    pub fn urn(self) -> &'static str {
        match self {
            TechnicalModel::DataService => "urn:rave:tmodel:data-service:v1",
            TechnicalModel::RenderService => "urn:rave:tmodel:render-service:v1",
        }
    }

    /// The operations the contract requires.
    pub fn operations(self) -> &'static [&'static str] {
        match self {
            TechnicalModel::DataService => &[
                "createSession",
                "listSessions",
                "subscribe",
                "publishUpdate",
                "requestDistribution",
                "interrogateCapacity",
            ],
            TechnicalModel::RenderService => &[
                "createRenderSession",
                "interrogateCapacity",
                "renderSubset",
                "renderTile",
                "subscribeFrames",
            ],
        }
    }
}

/// One operation signature in a WSDL document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WsdlOperation {
    pub name: String,
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
}

/// A service's WSDL document: which contract it implements and where it
/// listens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WsdlDocument {
    pub service_name: String,
    pub tmodel: TechnicalModel,
    pub operations: Vec<WsdlOperation>,
    /// Binary-socket access point, `host:port`.
    pub access_point: String,
}

impl WsdlDocument {
    /// Build a conforming document for a contract at an access point.
    pub fn conforming(service_name: &str, tmodel: TechnicalModel, access_point: &str) -> Self {
        let operations = tmodel
            .operations()
            .iter()
            .map(|op| WsdlOperation {
                name: (*op).to_string(),
                inputs: vec!["request".into()],
                outputs: vec!["response".into()],
            })
            .collect();
        Self {
            service_name: service_name.into(),
            tmodel,
            operations,
            access_point: access_point.into(),
        }
    }

    /// Does this document implement every operation its tModel requires?
    /// (The compatibility check a client runs before connecting — the
    /// guarantee that lets a C++ PDA client talk to the Java services.)
    pub fn conforms(&self) -> bool {
        self.tmodel.operations().iter().all(|req| self.operations.iter().any(|op| op.name == *req))
    }

    /// Render the document as WSDL-ish XML (registered as the technical
    /// model's exemplar in UDDI).
    pub fn to_xml(&self) -> String {
        use std::fmt::Write;
        let mut x = String::new();
        let _ = writeln!(
            x,
            "<definitions name=\"{}\" targetNamespace=\"{}\">",
            self.service_name,
            self.tmodel.urn()
        );
        for op in &self.operations {
            let _ = writeln!(x, "  <operation name=\"{}\">", op.name);
            for i in &op.inputs {
                let _ = writeln!(x, "    <input message=\"{i}\"/>");
            }
            for o in &op.outputs {
                let _ = writeln!(x, "    <output message=\"{o}\"/>");
            }
            x.push_str("  </operation>\n");
        }
        let _ = writeln!(x, "  <port><address location=\"tcp://{}\"/></port>", self.access_point);
        x.push_str("</definitions>\n");
        x
    }

    pub fn wire_size(&self) -> u64 {
        self.to_xml().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_documents_conform() {
        for tm in [TechnicalModel::DataService, TechnicalModel::RenderService] {
            let doc = WsdlDocument::conforming("svc", tm, "host:9000");
            assert!(doc.conforms());
        }
    }

    #[test]
    fn missing_operation_breaks_conformance() {
        let mut doc = WsdlDocument::conforming("svc", TechnicalModel::RenderService, "host:9000");
        doc.operations.retain(|op| op.name != "renderTile");
        assert!(!doc.conforms());
    }

    #[test]
    fn extra_operations_allowed() {
        let mut doc = WsdlDocument::conforming("svc", TechnicalModel::DataService, "h:1");
        doc.operations.push(WsdlOperation {
            name: "vendorExtension".into(),
            inputs: vec![],
            outputs: vec![],
        });
        assert!(doc.conforms(), "supersets still conform");
    }

    #[test]
    fn xml_mentions_all_operations_and_access_point() {
        let doc = WsdlDocument::conforming("render1", TechnicalModel::RenderService, "tower:4411");
        let xml = doc.to_xml();
        for op in TechnicalModel::RenderService.operations() {
            assert!(xml.contains(op), "{op} missing from WSDL");
        }
        assert!(xml.contains("tcp://tower:4411"));
        assert_eq!(doc.wire_size(), xml.len() as u64);
    }

    #[test]
    fn tmodels_have_distinct_urns() {
        assert_ne!(TechnicalModel::DataService.urn(), TechnicalModel::RenderService.urn());
    }
}
