//! An in-process UDDI registry.
//!
//! Mirrors the jUDDI/IBM-test-registry/WeSC setup of §4.3: businesses own
//! services; services bind a technical model to an access point. The
//! inquiry API supports the two access patterns §5.5 times in Table 5:
//! a *full bootstrap* (create proxy, find the RAVE business, find its
//! render services, fetch access points) and the cheaper *warm scan*
//! (re-fetch access points on a live proxy).

use crate::wsdl::{TechnicalModel, WsdlDocument};
use rave_sim::SimTime;
use std::collections::BTreeMap;

/// A registered service binding.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBinding {
    pub business: String,
    pub service_name: String,
    pub host: String,
    pub tmodel: TechnicalModel,
    pub access_point: String,
    pub wsdl: WsdlDocument,
}

/// Registry error space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UddiError {
    UnknownBusiness(String),
    DuplicateService(String),
    NonConformingWsdl(String),
}

impl std::fmt::Display for UddiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UddiError::UnknownBusiness(b) => write!(f, "business {b} not registered"),
            UddiError::DuplicateService(s) => write!(f, "service {s} already registered"),
            UddiError::NonConformingWsdl(s) => {
                write!(f, "service {s} does not conform to its technical model")
            }
        }
    }
}

impl std::error::Error for UddiError {}

/// The registry: businesses → services.
#[derive(Debug, Clone, Default)]
pub struct UddiRegistry {
    businesses: BTreeMap<String, Vec<ServiceBinding>>,
    inquiries_served: u64,
}

impl UddiRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register_business(&mut self, name: &str) {
        self.businesses.entry(name.to_string()).or_default();
    }

    pub fn businesses(&self) -> impl Iterator<Item = &str> {
        self.businesses.keys().map(|s| s.as_str())
    }

    /// Publish a service binding. Conformance to the technical model is
    /// checked at publish time — a registry full of unusable bindings
    /// would defeat automatic connection.
    pub fn publish(&mut self, binding: ServiceBinding) -> Result<(), UddiError> {
        if !binding.wsdl.conforms() {
            return Err(UddiError::NonConformingWsdl(binding.service_name));
        }
        let services = self
            .businesses
            .get_mut(&binding.business)
            .ok_or_else(|| UddiError::UnknownBusiness(binding.business.clone()))?;
        if services.iter().any(|s| s.service_name == binding.service_name && s.host == binding.host)
        {
            return Err(UddiError::DuplicateService(binding.service_name));
        }
        services.push(binding);
        Ok(())
    }

    /// Remove a binding (service shutdown). Returns whether it existed.
    pub fn unpublish(&mut self, business: &str, host: &str, service_name: &str) -> bool {
        let Some(services) = self.businesses.get_mut(business) else { return false };
        let before = services.len();
        services.retain(|s| !(s.host == host && s.service_name == service_name));
        services.len() != before
    }

    /// Inquiry: all services of a business matching a technical model.
    pub fn find_services(
        &mut self,
        business: &str,
        tmodel: TechnicalModel,
    ) -> Vec<&ServiceBinding> {
        self.inquiries_served += 1;
        self.businesses
            .get(business)
            .map(|services| services.iter().filter(|s| s.tmodel == tmodel).collect())
            .unwrap_or_default()
    }

    /// Inquiry: access points only (the warm-scan fast path: "the UDDI
    /// proxy can be kept live and ... the simpler check of scanning the
    /// access points").
    pub fn scan_access_points(&mut self, business: &str, tmodel: TechnicalModel) -> Vec<String> {
        self.inquiries_served += 1;
        self.businesses
            .get(business)
            .map(|services| {
                services
                    .iter()
                    .filter(|s| s.tmodel == tmodel)
                    .map(|s| s.access_point.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Registry tree (Fig 4's GUI view): business → host → service
    /// instances, with a trailing "Create new instance" entry per listing
    /// exactly as the screenshot shows.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (business, services) in &self.businesses {
            let _ = writeln!(out, "{business}");
            let mut by_host: BTreeMap<&str, Vec<&ServiceBinding>> = BTreeMap::new();
            for s in services {
                by_host.entry(s.host.as_str()).or_default().push(s);
            }
            for (host, list) in by_host {
                let _ = writeln!(out, "  {host}");
                let mut by_kind: BTreeMap<&str, Vec<&ServiceBinding>> = BTreeMap::new();
                for s in list {
                    let kind = match s.tmodel {
                        TechnicalModel::DataService => "Data service",
                        TechnicalModel::RenderService => "Render service",
                    };
                    by_kind.entry(kind).or_default().push(s);
                }
                for (kind, instances) in by_kind {
                    let _ = writeln!(out, "    {kind}");
                    for inst in instances {
                        let _ =
                            writeln!(out, "      {} @ {}", inst.service_name, inst.access_point);
                    }
                    let _ = writeln!(out, "      [Create new instance]");
                }
            }
        }
        out
    }

    pub fn inquiries_served(&self) -> u64 {
        self.inquiries_served
    }
}

/// The timing model behind Table 5's UDDI column, calibrated to the
/// paper: warm access-point scan ≈0.7 s, full bootstrap ≈4.2–4.8 s.
/// Dominated by registry-server processing, not wire time (the paper ran
/// on a "clear" 100 Mbit network).
#[derive(Debug, Clone)]
pub struct UddiCostModel {
    /// Creating and initializing a UDDI proxy (connection setup, schema
    /// download).
    pub proxy_creation: SimTime,
    /// Server-side processing per inquiry.
    pub per_inquiry: SimTime,
    /// Additional marshalling time per result row.
    pub per_result: SimTime,
}

impl Default for UddiCostModel {
    fn default() -> Self {
        Self {
            proxy_creation: SimTime::from_secs(2.65),
            per_inquiry: SimTime::from_secs(0.66),
            per_result: SimTime::from_millis(12.0),
        }
    }
}

impl UddiCostModel {
    /// Warm scan: one access-point inquiry on a live proxy.
    pub fn scan_cost(&self, results: usize) -> SimTime {
        self.per_inquiry + self.per_result * results as f64
    }

    /// Full bootstrap: proxy creation + scan business + scan services +
    /// scan access points (§5.5's enumeration).
    pub fn full_bootstrap_cost(&self, results: usize) -> SimTime {
        self.proxy_creation + self.per_inquiry * 3.0 + self.per_result * results as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render_binding(host: &str, name: &str) -> ServiceBinding {
        ServiceBinding {
            business: "RAVE".into(),
            service_name: name.into(),
            host: host.into(),
            tmodel: TechnicalModel::RenderService,
            access_point: format!("{host}:4411"),
            wsdl: WsdlDocument::conforming(name, TechnicalModel::RenderService, "x:1"),
        }
    }

    fn registry_with_two_hosts() -> UddiRegistry {
        let mut r = UddiRegistry::new();
        r.register_business("RAVE");
        r.publish(render_binding("tower", "Skull-internal")).unwrap();
        r.publish(render_binding("adrenochrome", "render-1")).unwrap();
        let mut data = render_binding("adrenochrome", "Skull");
        data.tmodel = TechnicalModel::DataService;
        data.wsdl = WsdlDocument::conforming("Skull", TechnicalModel::DataService, "x:2");
        r.publish(data).unwrap();
        r
    }

    #[test]
    fn publish_and_find_by_tmodel() {
        let mut r = registry_with_two_hosts();
        let renders = r.find_services("RAVE", TechnicalModel::RenderService);
        assert_eq!(renders.len(), 2);
        let data = r.find_services("RAVE", TechnicalModel::DataService);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].service_name, "Skull");
    }

    #[test]
    fn publish_requires_business() {
        let mut r = UddiRegistry::new();
        assert!(matches!(r.publish(render_binding("h", "s")), Err(UddiError::UnknownBusiness(_))));
    }

    #[test]
    fn duplicate_rejected_but_same_name_other_host_ok() {
        let mut r = UddiRegistry::new();
        r.register_business("RAVE");
        r.publish(render_binding("h1", "render")).unwrap();
        assert!(matches!(
            r.publish(render_binding("h1", "render")),
            Err(UddiError::DuplicateService(_))
        ));
        assert!(r.publish(render_binding("h2", "render")).is_ok());
    }

    #[test]
    fn nonconforming_wsdl_rejected() {
        let mut r = UddiRegistry::new();
        r.register_business("RAVE");
        let mut b = render_binding("h", "bad");
        b.wsdl.operations.clear();
        assert!(matches!(r.publish(b), Err(UddiError::NonConformingWsdl(_))));
    }

    #[test]
    fn unpublish_removes_binding() {
        let mut r = registry_with_two_hosts();
        assert!(r.unpublish("RAVE", "tower", "Skull-internal"));
        assert!(!r.unpublish("RAVE", "tower", "Skull-internal"), "second time false");
        assert_eq!(r.find_services("RAVE", TechnicalModel::RenderService).len(), 1);
    }

    #[test]
    fn scan_returns_access_points_only() {
        let mut r = registry_with_two_hosts();
        let aps = r.scan_access_points("RAVE", TechnicalModel::RenderService);
        assert_eq!(aps.len(), 2);
        assert!(aps.contains(&"tower:4411".to_string()));
        assert_eq!(r.inquiries_served(), 1);
    }

    #[test]
    fn tree_matches_fig4_structure() {
        let r = registry_with_two_hosts();
        let tree = r.render_tree();
        assert!(tree.contains("RAVE"));
        assert!(tree.contains("tower"));
        assert!(tree.contains("adrenochrome"));
        assert!(tree.contains("Skull-internal"));
        assert!(tree.contains("[Create new instance]"));
        // Data service on adrenochrome, render service on tower: the Fig 4
        // cross-machine case.
        assert!(tree.contains("Data service"));
    }

    #[test]
    fn cost_model_matches_table5() {
        let m = UddiCostModel::default();
        let scan = m.scan_cost(3).as_secs();
        let full = m.full_bootstrap_cost(3).as_secs();
        assert!((0.6..0.8).contains(&scan), "warm scan {scan}s (paper 0.70-0.73)");
        assert!((4.0..5.0).contains(&full), "full bootstrap {full}s (paper 4.2-4.8)");
    }
}
