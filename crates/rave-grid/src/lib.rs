//! Grid/Web services substrate: the discovery and control plane.
//!
//! §4.3 of the paper wraps the serving engine in OGSA/Web-services so only
//! the wrapper changes as grid standards churn; SOAP is used **only** for
//! discovery, status interrogation and subscription, with bulk data on
//! raw sockets (`rave-net`). This crate rebuilds that stack:
//!
//! - [`soap`] — a real XML envelope codec for RPC calls, with the
//!   marshalling cost model that makes SOAP "not suited to large data
//!   transmission";
//! - [`wsdl`] — service descriptions; two *technical models* exist, one
//!   for the data service and one for the render service (§4.3);
//! - [`uddi`] — an in-process UDDI registry (businesses, tModels, service
//!   bindings, access points) with publish and inquiry APIs and the cost
//!   model behind Table 5's scan/bootstrap timings;
//! - [`container`] — the Axis/Tomcat stand-in hosting service factories
//!   that create per-session service instances.

pub mod container;
pub mod soap;
pub mod uddi;
pub mod wsdl;

pub use container::{ServiceContainer, ServiceInstance};
pub use soap::{SoapCodec, SoapEnvelope, SoapValue};
pub use uddi::{UddiCostModel, UddiRegistry};
pub use wsdl::{TechnicalModel, WsdlDocument};
