//! The service container (Apache Axis + Tomcat stand-in).
//!
//! §4.3: Grid services are factories that create instances; the container
//! hosts the factories, creates instances on request, and hands back
//! socket access points. The Web-service front door costs real time
//! (Table 5's "service bootstrap" includes "the time spent to contact the
//! Axis Web Service [and] request the creation of a new render service
//! instance").

use crate::soap::{SoapCodec, SoapEnvelope};
use crate::wsdl::{TechnicalModel, WsdlDocument};
use rave_sim::SimTime;
use std::collections::BTreeMap;

/// A created service instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceInstance {
    pub id: u64,
    pub factory: String,
    pub tmodel: TechnicalModel,
    /// Instance name (shown in the Fig 4 registry GUI, e.g.
    /// "Skull-internal").
    pub name: String,
    pub access_point: String,
    /// The argument the factory was invoked with (a data URL for data
    /// services, a data-service access point for render services —
    /// "a render service needs a data service to bootstrap from", §5.3).
    pub bootstrap_arg: String,
}

/// Container error space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    UnknownFactory(String),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::UnknownFactory(n) => write!(f, "no factory deployed as {n}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// A container on one host, with deployed factories and live instances.
#[derive(Debug, Clone)]
pub struct ServiceContainer {
    pub host: String,
    factories: BTreeMap<String, TechnicalModel>,
    instances: Vec<ServiceInstance>,
    next_id: u64,
    next_port: u16,
    codec: SoapCodec,
    /// Fixed cost of servicing a factory call (servlet dispatch, JVM
    /// class loading, instance wiring). Dominates small-model bootstraps.
    pub instance_creation_time: SimTime,
}

impl ServiceContainer {
    pub fn new(host: &str) -> Self {
        Self {
            host: host.into(),
            factories: BTreeMap::new(),
            instances: Vec::new(),
            next_id: 1,
            next_port: 4411,
            codec: SoapCodec::default(),
            // Calibrated with the data-transfer model so Table 5's galleon
            // bootstrap lands near 10.5 s.
            instance_creation_time: SimTime::from_secs(9.9),
        }
    }

    /// Deploy a factory under a name.
    pub fn deploy_factory(&mut self, name: &str, tmodel: TechnicalModel) {
        self.factories.insert(name.to_string(), tmodel);
    }

    pub fn factories(&self) -> impl Iterator<Item = (&str, TechnicalModel)> {
        self.factories.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Handle a `createInstance` call: returns the new instance and the
    /// CPU time the call cost (SOAP demarshal + instance creation +
    /// response marshal).
    pub fn create_instance(
        &mut self,
        factory: &str,
        instance_name: &str,
        bootstrap_arg: &str,
    ) -> Result<(ServiceInstance, SimTime), ContainerError> {
        let tmodel = *self
            .factories
            .get(factory)
            .ok_or_else(|| ContainerError::UnknownFactory(factory.to_string()))?;
        let id = self.next_id;
        self.next_id += 1;
        let port = self.next_port;
        self.next_port += 1;
        let instance = ServiceInstance {
            id,
            factory: factory.to_string(),
            tmodel,
            name: instance_name.to_string(),
            access_point: format!("{}:{}", self.host, port),
            bootstrap_arg: bootstrap_arg.to_string(),
        };
        self.instances.push(instance.clone());

        // Charge the real SOAP round trip for the factory call.
        let request = SoapEnvelope::new(factory, "createInstance")
            .arg("name", crate::soap::SoapValue::Str(instance_name.into()))
            .arg("arg", crate::soap::SoapValue::Str(bootstrap_arg.into()));
        let response = SoapEnvelope::new(factory, "createInstanceResponse")
            .arg("accessPoint", crate::soap::SoapValue::Str(instance.access_point.clone()));
        let cost = self.codec.marshal_time(&request)
            + self.codec.marshal_time(&response)
            + self.instance_creation_time;
        Ok((instance, cost))
    }

    /// Tear an instance down. Returns whether it existed.
    pub fn destroy_instance(&mut self, id: u64) -> bool {
        let before = self.instances.len();
        self.instances.retain(|i| i.id != id);
        self.instances.len() != before
    }

    pub fn instances(&self) -> &[ServiceInstance] {
        &self.instances
    }

    pub fn instance(&self, id: u64) -> Option<&ServiceInstance> {
        self.instances.iter().find(|i| i.id == id)
    }

    /// The WSDL document a live instance advertises.
    pub fn wsdl_for(&self, id: u64) -> Option<WsdlDocument> {
        self.instance(id).map(|i| WsdlDocument::conforming(&i.name, i.tmodel, &i.access_point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container() -> ServiceContainer {
        let mut c = ServiceContainer::new("tower");
        c.deploy_factory("render-factory", TechnicalModel::RenderService);
        c.deploy_factory("data-factory", TechnicalModel::DataService);
        c
    }

    #[test]
    fn create_instance_allocates_distinct_access_points() {
        let mut c = container();
        let (i1, _) = c.create_instance("render-factory", "r1", "adrenochrome:4411").unwrap();
        let (i2, _) = c.create_instance("render-factory", "r2", "adrenochrome:4411").unwrap();
        assert_ne!(i1.id, i2.id);
        assert_ne!(i1.access_point, i2.access_point);
        assert!(i1.access_point.starts_with("tower:"));
        assert_eq!(c.instances().len(), 2);
    }

    #[test]
    fn unknown_factory_rejected() {
        let mut c = container();
        assert!(matches!(
            c.create_instance("nope", "x", ""),
            Err(ContainerError::UnknownFactory(_))
        ));
    }

    #[test]
    fn creation_cost_is_seconds_scale() {
        // Instance creation dominates Table 5's fixed bootstrap component.
        let mut c = container();
        let (_, cost) = c.create_instance("render-factory", "r", "d").unwrap();
        assert!((8.0..12.0).contains(&cost.as_secs()), "cost {cost}");
    }

    #[test]
    fn destroy_removes_instance() {
        let mut c = container();
        let (i, _) = c.create_instance("data-factory", "Skull", "file:skull.obj").unwrap();
        assert!(c.destroy_instance(i.id));
        assert!(!c.destroy_instance(i.id));
        assert!(c.instance(i.id).is_none());
    }

    #[test]
    fn wsdl_advertises_instance_endpoint() {
        let mut c = container();
        let (i, _) = c.create_instance("render-factory", "r1", "d").unwrap();
        let wsdl = c.wsdl_for(i.id).unwrap();
        assert!(wsdl.conforms());
        assert_eq!(wsdl.access_point, i.access_point);
        assert_eq!(wsdl.tmodel, TechnicalModel::RenderService);
    }

    #[test]
    fn render_service_bootstraps_from_data_service() {
        // §5.3: "a render service needs a data service to bootstrap from".
        let mut c = container();
        let (data, _) = c.create_instance("data-factory", "Skull", "file:skull.obj").unwrap();
        let (render, _) =
            c.create_instance("render-factory", "Skull-internal", &data.access_point).unwrap();
        assert_eq!(render.bootstrap_arg, data.access_point);
    }
}
