//! Procedural stand-ins for the paper's evaluation datasets, plus the
//! geometry-processing pipeline the originals went through.
//!
//! The paper's models (Table 1) came from archives we cannot ship:
//!
//! | Paper model  | Source                                   | Polygons | File  |
//! |--------------|------------------------------------------|----------|-------|
//! | Skeletal Hand| Clemson Stereolithography Archive (PLY)  | 0.83 M   | 20 MB |
//! | Skeleton     | Visible Man, marching cubes + decimation | 2.8 M    | 75 MB |
//! | Elle         | Blaxxun VRML benchmark                   | 50 k     | —     |
//! | Galleon      | Java3D example file                      | 5.5 k    | —     |
//!
//! [`catalog`] rebuilds each as a procedural mesh with the *same polygon
//! count* (exactly), so every timing model downstream sees the workload the
//! paper used. The skeleton follows the original provenance for real:
//! an implicit body ([`implicit`]) is isosurfaced ([`marching`]) and then
//! polygon-decimated ([`decimate`]) to the target count — the same
//! pipeline the Visible Man dataset went through. The PLY → OBJ conversion
//! step ("models were in PLY format, converted to Wavefront OBJ and then
//! imported", §5) runs for real through [`ply`] and [`obj`].
//!
//! Substitution note (DESIGN.md §2): isosurfacing uses marching
//! *tetrahedra* (6 tets/cell) rather than the classic 256-case marching
//! cubes tables — topologically equivalent output, far less table code to
//! audit, and the paper only depends on the provenance ("processed by
//! marching cubes"), not the exact triangulation.

pub mod catalog;
pub mod decimate;
pub mod generators;
pub mod implicit;
pub mod marching;
pub mod obj;
pub mod ply;

pub use catalog::{build_model, build_with_budget, PaperModel};
