//! Signed-distance-style implicit bodies.
//!
//! The Visible-Man skeleton entered the paper's pipeline as volume data
//! that was isosurfaced; we rebuild equivalent input as smooth implicit
//! bodies (unions of capsules and ellipsoids) that [`crate::marching`]
//! polygonizes.

use rave_math::Vec3;

/// A scalar field sampled over space; the isosurface sits at `value = 0`
/// (negative inside).
pub trait ScalarField: Sync {
    fn sample(&self, p: Vec3) -> f32;

    /// Gradient by central differences (isosurface normals).
    fn gradient(&self, p: Vec3) -> Vec3 {
        const H: f32 = 1e-3;
        Vec3::new(
            self.sample(p + Vec3::new(H, 0.0, 0.0)) - self.sample(p - Vec3::new(H, 0.0, 0.0)),
            self.sample(p + Vec3::new(0.0, H, 0.0)) - self.sample(p - Vec3::new(0.0, H, 0.0)),
            self.sample(p + Vec3::new(0.0, 0.0, H)) - self.sample(p - Vec3::new(0.0, 0.0, H)),
        )
        .normalized()
    }
}

/// Distance to a sphere surface.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    pub center: Vec3,
    pub radius: f32,
}

impl ScalarField for Sphere {
    fn sample(&self, p: Vec3) -> f32 {
        (p - self.center).length() - self.radius
    }
}

/// Distance to a capsule (line segment with radius) — bones and fingers.
#[derive(Debug, Clone, Copy)]
pub struct Capsule {
    pub a: Vec3,
    pub b: Vec3,
    pub radius: f32,
}

impl ScalarField for Capsule {
    fn sample(&self, p: Vec3) -> f32 {
        let ab = self.b - self.a;
        let t = ((p - self.a).dot(ab) / ab.length_sq()).clamp(0.0, 1.0);
        (p - (self.a + ab * t)).length() - self.radius
    }
}

/// An axis-aligned ellipsoid (approximate distance) — skulls and torsos.
#[derive(Debug, Clone, Copy)]
pub struct Ellipsoid {
    pub center: Vec3,
    pub radii: Vec3,
}

impl ScalarField for Ellipsoid {
    fn sample(&self, p: Vec3) -> f32 {
        let q = p - self.center;
        let k = Vec3::new(q.x / self.radii.x, q.y / self.radii.y, q.z / self.radii.z).length();
        // First-order distance approximation; adequate for polygonization.
        let min_r = self.radii.x.min(self.radii.y).min(self.radii.z);
        (k - 1.0) * min_r
    }
}

/// Smooth union of many parts (the "blobby" body).
pub struct Blobby {
    parts: Vec<Box<dyn ScalarField + Send>>,
    /// Smoothing radius; 0 = hard min.
    pub smoothing: f32,
}

impl Blobby {
    pub fn new(smoothing: f32) -> Self {
        Self { parts: Vec::new(), smoothing }
    }

    pub fn push(&mut self, part: impl ScalarField + Send + 'static) -> &mut Self {
        self.parts.push(Box::new(part));
        self
    }

    pub fn len(&self) -> usize {
        self.parts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl ScalarField for Blobby {
    fn sample(&self, p: Vec3) -> f32 {
        let mut d = f32::INFINITY;
        for part in &self.parts {
            let pd = part.sample(p);
            if d.is_infinite() {
                // First part: the smooth-min formula would produce INF*0
                // = NaN against the empty-union identity.
                d = pd;
            } else if self.smoothing > 0.0 {
                // Polynomial smooth-min keeps the union round at joints.
                let h = ((self.smoothing + d - pd) / (2.0 * self.smoothing)).clamp(0.0, 1.0);
                d = d * (1.0 - h) + pd * h - self.smoothing * h * (1.0 - h);
            } else {
                d = d.min(pd);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_signs() {
        let s = Sphere { center: Vec3::ZERO, radius: 1.0 };
        assert!(s.sample(Vec3::ZERO) < 0.0);
        assert!(s.sample(Vec3::new(2.0, 0.0, 0.0)) > 0.0);
        assert!(s.sample(Vec3::X).abs() < 1e-6);
    }

    #[test]
    fn capsule_distance_from_segment() {
        let c = Capsule { a: Vec3::ZERO, b: Vec3::new(2.0, 0.0, 0.0), radius: 0.5 };
        // Point beside the middle of the segment.
        assert!((c.sample(Vec3::new(1.0, 1.0, 0.0)) - 0.5).abs() < 1e-6);
        // Beyond the end cap.
        assert!((c.sample(Vec3::new(3.0, 0.0, 0.0)) - 0.5).abs() < 1e-6);
        // Inside.
        assert!(c.sample(Vec3::new(1.0, 0.0, 0.0)) < 0.0);
    }

    #[test]
    fn ellipsoid_axes() {
        let e = Ellipsoid { center: Vec3::ZERO, radii: Vec3::new(2.0, 1.0, 1.0) };
        assert!(e.sample(Vec3::new(2.0, 0.0, 0.0)).abs() < 1e-5);
        assert!(e.sample(Vec3::new(0.0, 1.0, 0.0)).abs() < 1e-5);
        assert!(e.sample(Vec3::ZERO) < 0.0);
    }

    #[test]
    fn blobby_union_includes_all_parts() {
        let mut b = Blobby::new(0.0);
        b.push(Sphere { center: Vec3::ZERO, radius: 1.0 });
        b.push(Sphere { center: Vec3::new(5.0, 0.0, 0.0), radius: 1.0 });
        assert!(b.sample(Vec3::ZERO) < 0.0);
        assert!(b.sample(Vec3::new(5.0, 0.0, 0.0)) < 0.0);
        assert!(b.sample(Vec3::new(2.5, 0.0, 0.0)) > 0.0);
    }

    #[test]
    fn smooth_union_bulges_at_joint() {
        let make = |s: f32| {
            let mut b = Blobby::new(s);
            b.push(Sphere { center: Vec3::new(-0.9, 0.0, 0.0), radius: 1.0 });
            b.push(Sphere { center: Vec3::new(0.9, 0.0, 0.0), radius: 1.0 });
            b
        };
        let joint = Vec3::new(0.0, 1.1, 0.0);
        let hard = make(0.0).sample(joint);
        let smooth = make(0.5).sample(joint);
        assert!(smooth < hard, "smoothing pulls the surface outward at joints");
    }

    #[test]
    fn gradient_points_outward() {
        let s = Sphere { center: Vec3::ZERO, radius: 1.0 };
        let g = s.gradient(Vec3::new(2.0, 0.0, 0.0));
        assert!((g.x - 1.0).abs() < 1e-2);
    }
}
