//! Parametric surface generators with exact triangle budgets.

use rave_math::{Quat, Vec3};
use rave_scene::MeshData;

/// Generate a grid-parameterized surface: `f(u, v) -> position` evaluated
/// on a `(rows+1) × (cols+1)` lattice with `u, v ∈ [0, 1]`, triangulated
/// into exactly `2 * rows * cols` triangles.
pub fn parametric_grid(rows: u32, cols: u32, f: impl Fn(f32, f32) -> Vec3) -> MeshData {
    assert!(rows > 0 && cols > 0);
    let mut positions = Vec::with_capacity(((rows + 1) * (cols + 1)) as usize);
    for r in 0..=rows {
        for c in 0..=cols {
            positions.push(f(r as f32 / rows as f32, c as f32 / cols as f32));
        }
    }
    let stride = cols + 1;
    let mut triangles = Vec::with_capacity((2 * rows * cols) as usize);
    for r in 0..rows {
        for c in 0..cols {
            let a = r * stride + c;
            let b = a + 1;
            let d = a + stride;
            let e = d + 1;
            triangles.push([a, d, b]);
            triangles.push([b, d, e]);
        }
    }
    let mut mesh = MeshData::new(positions, triangles);
    mesh.compute_normals();
    mesh
}

/// Pick `(rows, cols)` so a grid yields *exactly* `target` triangles when
/// `target` is even, or `target - 1` (the caller pads the last one). Grids
/// give `2*r*c`; we choose a near-square factorization.
fn grid_dims_for(target: u64) -> (u32, u32) {
    let quads = (target / 2).max(1);
    let mut best = (1u64, quads);
    let mut r = (quads as f64).sqrt() as u64;
    while r >= 1 {
        if quads.is_multiple_of(r) {
            best = (r, quads / r);
            break;
        }
        r -= 1;
    }
    (best.0 as u32, best.1.min(u32::MAX as u64) as u32)
}

/// Force a mesh to an exact triangle count by T-junction edge splits
/// (+1 triangle each). Splits render identically to the unsplit surface,
/// so budgets can be hit without altering the image.
pub fn pad_to_exact(mesh: &mut MeshData, target: u64) {
    assert!(
        mesh.triangle_count() <= target,
        "cannot pad downward: have {} want {target}",
        mesh.triangle_count()
    );
    let mut i = 0usize;
    while mesh.triangle_count() < target {
        let slot = i % mesh.triangles.len();
        let t = mesh.triangles[slot];
        let a = mesh.positions[t[0] as usize];
        let b = mesh.positions[t[1] as usize];
        let mid = (a + b) * 0.5;
        let mid_idx = mesh.positions.len() as u32;
        mesh.positions.push(mid);
        if !mesh.normals.is_empty() {
            let na = mesh.normals[t[0] as usize];
            let nb = mesh.normals[t[1] as usize];
            mesh.normals.push((na + nb).normalized());
        }
        if !mesh.colors.is_empty() {
            let ca = mesh.colors[t[0] as usize];
            let cb = mesh.colors[t[1] as usize];
            mesh.colors.push((ca + cb) * 0.5);
        }
        // Replace tri (a,b,c) with (a,mid,c) + (mid,b,c).
        let c = t[2];
        mesh.triangles[slot] = [t[0], mid_idx, c];
        mesh.triangles.push([mid_idx, t[1], c]);
        i += 1;
    }
}

/// A UV sphere with exactly `target` triangles (padding as needed).
pub fn sphere(center: Vec3, radius: f32, target: u64) -> MeshData {
    let (r, c) = grid_dims_for(target);
    let mut mesh = parametric_grid(r.max(2), c.max(3), |u, v| {
        let theta = u * std::f32::consts::PI;
        let phi = v * std::f32::consts::TAU;
        center
            + Vec3::new(
                radius * theta.sin() * phi.cos(),
                radius * theta.cos(),
                radius * theta.sin() * phi.sin(),
            )
    });
    clamp_or_pad(&mut mesh, target);
    mesh
}

/// A capped tube (cylinder bent along `axis`) — limbs, masts, fingers.
pub fn tube(base: Vec3, axis: Vec3, radius: f32, target: u64) -> MeshData {
    let (r, c) = grid_dims_for(target);
    let len = axis.length();
    let dir = axis.normalized();
    // Build an orthonormal frame around `dir`.
    let ref_up = if dir.y.abs() < 0.9 { Vec3::Y } else { Vec3::X };
    let side = dir.cross(ref_up).normalized();
    let out = side.cross(dir);
    let mut mesh = parametric_grid(r.max(1), c.max(3), |u, v| {
        let ang = v * std::f32::consts::TAU;
        // Taper the ends so the tube reads as capped.
        let taper = 1.0 - (2.0 * u - 1.0).powi(8);
        let rr = radius * taper.max(0.05);
        base + dir * (u * len) + side * (rr * ang.cos()) + out * (rr * ang.sin())
    });
    clamp_or_pad(&mut mesh, target);
    mesh
}

/// A swept "hull" profile (the galleon's body): elliptical cross-sections
/// lofted along X with a keel curve.
pub fn hull(length: f32, beam: f32, depth: f32, target: u64) -> MeshData {
    let (r, c) = grid_dims_for(target);
    let mut mesh = parametric_grid(r.max(2), c.max(3), |u, v| {
        let x = (u - 0.5) * length;
        // Narrow the hull toward bow and stern.
        let w = (1.0 - (2.0 * u - 1.0).powi(2)).max(0.05);
        let ang = v * std::f32::consts::PI; // half-shell, open deck
        Vec3::new(x, -depth * w * ang.sin(), beam * 0.5 * w * ang.cos())
    });
    clamp_or_pad(&mut mesh, target);
    mesh
}

/// A rectangular "sail" billowing in +Z.
pub fn sail(center: Vec3, width: f32, height: f32, target: u64) -> MeshData {
    let (r, c) = grid_dims_for(target);
    let mut mesh = parametric_grid(r.max(1), c.max(1), |u, v| {
        let billow = (u * std::f32::consts::PI).sin() * (v * std::f32::consts::PI).sin();
        center + Vec3::new((v - 0.5) * width, (u - 0.5) * height, 0.25 * width * billow)
    });
    clamp_or_pad(&mut mesh, target);
    mesh
}

fn clamp_or_pad(mesh: &mut MeshData, target: u64) {
    // Grid dims may undershoot for tiny/odd targets; pad up. Overshoot can
    // only happen from the `.max()` floors on dims; trim excess triangles.
    while mesh.triangle_count() > target {
        mesh.triangles.pop();
    }
    pad_to_exact(mesh, target);
}

/// Merge several meshes into one (concatenating vertex arrays with index
/// fix-up). Normals/colors are preserved when *all* parts carry them and
/// dropped otherwise, keeping the parallel-array invariant.
pub fn merge(parts: &[MeshData]) -> MeshData {
    let all_normals = parts.iter().all(|p| !p.normals.is_empty());
    let all_colors = parts.iter().all(|p| !p.colors.is_empty());
    let mut out = MeshData::new(Vec::new(), Vec::new());
    for p in parts {
        let base = out.positions.len() as u32;
        out.positions.extend_from_slice(&p.positions);
        if all_normals {
            out.normals.extend_from_slice(&p.normals);
        }
        if all_colors {
            out.colors.extend_from_slice(&p.colors);
        }
        out.triangles.extend(p.triangles.iter().map(|t| [t[0] + base, t[1] + base, t[2] + base]));
        out.texture_bytes += p.texture_bytes;
    }
    out
}

/// Rigid-transform a mesh in place.
pub fn transform(mesh: &mut MeshData, rotation: Quat, translation: Vec3) {
    for p in &mut mesh.positions {
        *p = rotation.rotate(*p) + translation;
    }
    for n in &mut mesh.normals {
        *n = rotation.rotate(*n);
    }
}

/// Paint the whole mesh one color.
pub fn paint(mesh: &mut MeshData, color: Vec3) {
    mesh.colors = vec![color; mesh.positions.len()];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_triangle_count_exact() {
        let m = parametric_grid(4, 6, |u, v| Vec3::new(u, v, 0.0));
        assert_eq!(m.triangle_count(), 2 * 4 * 6);
        assert_eq!(m.vertex_count(), 5 * 7);
        m.validate().unwrap();
    }

    #[test]
    fn sphere_hits_exact_budget() {
        for target in [100u64, 101, 5_500, 7_777] {
            let m = sphere(Vec3::ZERO, 1.0, target);
            assert_eq!(m.triangle_count(), target, "target {target}");
            m.validate().unwrap();
        }
    }

    #[test]
    fn sphere_vertices_on_surface() {
        let m = sphere(Vec3::new(1.0, 2.0, 3.0), 2.0, 500);
        for p in &m.positions {
            let d = (*p - Vec3::new(1.0, 2.0, 3.0)).length();
            assert!((d - 2.0).abs() < 1e-3, "vertex off sphere: {d}");
        }
    }

    #[test]
    fn tube_spans_axis() {
        let m = tube(Vec3::ZERO, Vec3::new(0.0, 4.0, 0.0), 0.5, 600);
        let b = m.bounds();
        assert!(b.max.y > 3.9 && b.min.y < 0.1);
        assert_eq!(m.triangle_count(), 600);
    }

    #[test]
    fn pad_to_exact_adds_correct_count() {
        let mut m = parametric_grid(2, 2, |u, v| Vec3::new(u, v, 0.0)); // 8 tris
        pad_to_exact(&mut m, 13);
        assert_eq!(m.triangle_count(), 13);
        m.validate().unwrap();
        // Normals stay parallel.
        assert_eq!(m.normals.len(), m.positions.len());
    }

    #[test]
    #[should_panic]
    fn pad_cannot_shrink() {
        let mut m = parametric_grid(2, 2, |u, v| Vec3::new(u, v, 0.0));
        pad_to_exact(&mut m, 1);
    }

    #[test]
    fn merge_concatenates_and_fixes_indices() {
        let a = sphere(Vec3::ZERO, 1.0, 100);
        let b = sphere(Vec3::new(5.0, 0.0, 0.0), 1.0, 60);
        let m = merge(&[a.clone(), b]);
        assert_eq!(m.triangle_count(), 160);
        m.validate().unwrap();
        assert!(m.bounds().contains(Vec3::new(5.0, 0.0, 0.0)));
    }

    #[test]
    fn merge_drops_colors_unless_universal() {
        let mut a = sphere(Vec3::ZERO, 1.0, 10);
        paint(&mut a, Vec3::X);
        let b = sphere(Vec3::ZERO, 1.0, 10); // uncolored
        let m = merge(&[a.clone(), b.clone()]);
        assert!(m.colors.is_empty());
        let mut b2 = b;
        paint(&mut b2, Vec3::Y);
        let m2 = merge(&[a, b2]);
        assert_eq!(m2.colors.len(), m2.positions.len());
        m2.validate().unwrap();
    }

    #[test]
    fn transform_moves_bounds() {
        let mut m = sphere(Vec3::ZERO, 1.0, 50);
        transform(&mut m, Quat::IDENTITY, Vec3::new(10.0, 0.0, 0.0));
        assert!(m.bounds().center().distance(Vec3::new(10.0, 0.0, 0.0)) < 0.2);
    }

    #[test]
    fn grid_dims_factorization() {
        let (r, c) = grid_dims_for(5500);
        assert_eq!(2 * r as u64 * c as u64, 5500 / 2 * 2);
    }
}
