//! PLY (Polygon File Format) writer/parser: ASCII and binary little-endian.
//!
//! The paper's models came from archives as PLY; Table 1's "Size of Data
//! File" column corresponds to binary PLY with per-vertex normals, which
//! is what [`binary_file_size`] measures.

use rave_math::Vec3;
use rave_scene::MeshData;
#[allow(unused_imports)]
use std::io::Read;
use std::io::{BufRead, Write};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlyFormat {
    Ascii,
    BinaryLittleEndian,
}

fn write_header<W: Write>(mesh: &MeshData, format: PlyFormat, w: &mut W) -> std::io::Result<()> {
    let fmt = match format {
        PlyFormat::Ascii => "ascii",
        PlyFormat::BinaryLittleEndian => "binary_little_endian",
    };
    writeln!(w, "ply")?;
    writeln!(w, "format {fmt} 1.0")?;
    writeln!(w, "comment produced by rave-models")?;
    writeln!(w, "element vertex {}", mesh.positions.len())?;
    writeln!(w, "property float x")?;
    writeln!(w, "property float y")?;
    writeln!(w, "property float z")?;
    if !mesh.normals.is_empty() {
        writeln!(w, "property float nx")?;
        writeln!(w, "property float ny")?;
        writeln!(w, "property float nz")?;
    }
    writeln!(w, "element face {}", mesh.triangles.len())?;
    writeln!(w, "property list uchar int vertex_indices")?;
    writeln!(w, "end_header")?;
    Ok(())
}

/// Write a mesh as PLY in the requested format.
pub fn write<W: Write>(mesh: &MeshData, format: PlyFormat, mut w: W) -> std::io::Result<()> {
    write_header(mesh, format, &mut w)?;
    let has_n = !mesh.normals.is_empty();
    match format {
        PlyFormat::Ascii => {
            use std::fmt::Write as _;
            let mut buf = String::new();
            for (i, p) in mesh.positions.iter().enumerate() {
                buf.clear();
                let _ = write!(buf, "{} {} {}", p.x, p.y, p.z);
                if has_n {
                    let n = mesh.normals[i];
                    let _ = write!(buf, " {} {} {}", n.x, n.y, n.z);
                }
                buf.push('\n');
                w.write_all(buf.as_bytes())?;
            }
            for t in &mesh.triangles {
                buf.clear();
                let _ = writeln!(buf, "3 {} {} {}", t[0], t[1], t[2]);
                w.write_all(buf.as_bytes())?;
            }
        }
        PlyFormat::BinaryLittleEndian => {
            let mut buf = Vec::with_capacity(24);
            for (i, p) in mesh.positions.iter().enumerate() {
                buf.clear();
                for v in [p.x, p.y, p.z] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                if has_n {
                    let n = mesh.normals[i];
                    for v in [n.x, n.y, n.z] {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
                w.write_all(&buf)?;
            }
            for t in &mesh.triangles {
                buf.clear();
                buf.push(3u8);
                for &i in t {
                    buf.extend_from_slice(&(i as i32).to_le_bytes());
                }
                w.write_all(&buf)?;
            }
        }
    }
    Ok(())
}

/// Parse a PLY stream (either format produced by [`write`]; tolerates
/// extra float vertex properties by skipping them).
pub fn read<R: BufRead>(mut r: R) -> std::io::Result<MeshData> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());

    // --- header ---
    let mut line = String::new();
    r.read_line(&mut line)?;
    if line.trim() != "ply" {
        return Err(bad("missing ply magic"));
    }
    let mut format = None;
    let mut vertex_count = 0usize;
    let mut face_count = 0usize;
    let mut vertex_props: Vec<String> = Vec::new();
    let mut in_vertex_element = false;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("unterminated header"));
        }
        let l = line.trim();
        if l == "end_header" {
            break;
        }
        let mut parts = l.split_whitespace();
        match parts.next() {
            Some("format") => {
                format = match parts.next() {
                    Some("ascii") => Some(PlyFormat::Ascii),
                    Some("binary_little_endian") => Some(PlyFormat::BinaryLittleEndian),
                    other => {
                        return Err(bad(&format!("unsupported format {other:?}")));
                    }
                };
            }
            Some("element") => match (parts.next(), parts.next()) {
                (Some("vertex"), Some(n)) => {
                    vertex_count = n.parse().map_err(|_| bad("bad vertex count"))?;
                    in_vertex_element = true;
                }
                (Some("face"), Some(n)) => {
                    face_count = n.parse().map_err(|_| bad("bad face count"))?;
                    in_vertex_element = false;
                }
                _ => return Err(bad("bad element line")),
            },
            Some("property") => {
                if in_vertex_element {
                    let ty = parts.next().unwrap_or("");
                    if ty != "float" {
                        return Err(bad("only float vertex properties supported"));
                    }
                    vertex_props.push(parts.next().unwrap_or("").to_string());
                }
            }
            Some("comment") | Some("obj_info") => {}
            _ => return Err(bad("unrecognized header line")),
        }
    }
    let format = format.ok_or_else(|| bad("no format line"))?;
    let idx_of = |name: &str| vertex_props.iter().position(|p| p == name);
    let (ix, iy, iz) = match (idx_of("x"), idx_of("y"), idx_of("z")) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => return Err(bad("vertex element missing x/y/z")),
    };
    let normal_idx = match (idx_of("nx"), idx_of("ny"), idx_of("nz")) {
        (Some(a), Some(b), Some(c)) => Some((a, b, c)),
        _ => None,
    };

    // --- body ---
    let mut positions = Vec::with_capacity(vertex_count);
    let mut normals = Vec::with_capacity(if normal_idx.is_some() { vertex_count } else { 0 });
    let mut triangles = Vec::with_capacity(face_count);
    match format {
        PlyFormat::Ascii => {
            for _ in 0..vertex_count {
                line.clear();
                r.read_line(&mut line)?;
                let vals: Vec<f32> = line
                    .split_whitespace()
                    .map(|s| s.parse().map_err(|_| bad("bad vertex value")))
                    .collect::<Result<_, _>>()?;
                if vals.len() < vertex_props.len() {
                    return Err(bad("short vertex line"));
                }
                positions.push(Vec3::new(vals[ix], vals[iy], vals[iz]));
                if let Some((a, b, c)) = normal_idx {
                    normals.push(Vec3::new(vals[a], vals[b], vals[c]));
                }
            }
            for _ in 0..face_count {
                line.clear();
                r.read_line(&mut line)?;
                let vals: Vec<i64> = line
                    .split_whitespace()
                    .map(|s| s.parse().map_err(|_| bad("bad face value")))
                    .collect::<Result<_, _>>()?;
                let Some((&n, rest)) = vals.split_first() else {
                    return Err(bad("empty face line"));
                };
                if n < 3 || rest.len() != n as usize {
                    return Err(bad("face arity mismatch"));
                }
                for k in 1..rest.len() - 1 {
                    triangles.push([rest[0] as u32, rest[k] as u32, rest[k + 1] as u32]);
                }
            }
        }
        PlyFormat::BinaryLittleEndian => {
            let stride = vertex_props.len();
            let mut vbuf = vec![0u8; 4 * stride];
            for _ in 0..vertex_count {
                r.read_exact(&mut vbuf)?;
                let at = |i: usize| {
                    f32::from_le_bytes([
                        vbuf[4 * i],
                        vbuf[4 * i + 1],
                        vbuf[4 * i + 2],
                        vbuf[4 * i + 3],
                    ])
                };
                positions.push(Vec3::new(at(ix), at(iy), at(iz)));
                if let Some((a, b, c)) = normal_idx {
                    normals.push(Vec3::new(at(a), at(b), at(c)));
                }
            }
            for _ in 0..face_count {
                let mut nb = [0u8; 1];
                r.read_exact(&mut nb)?;
                let n = nb[0] as usize;
                if n < 3 {
                    return Err(bad("face with <3 vertices"));
                }
                let mut ibuf = vec![0u8; 4 * n];
                r.read_exact(&mut ibuf)?;
                let idx = |k: usize| {
                    i32::from_le_bytes([
                        ibuf[4 * k],
                        ibuf[4 * k + 1],
                        ibuf[4 * k + 2],
                        ibuf[4 * k + 3],
                    ]) as u32
                };
                for k in 1..n - 1 {
                    triangles.push([idx(0), idx(k), idx(k + 1)]);
                }
            }
        }
    }
    let mut mesh = MeshData::new(positions, triangles);
    mesh.normals = normals;
    mesh.validate().map_err(|e| bad(&format!("invalid mesh: {e}")))?;
    Ok(mesh)
}

/// Byte size of the binary-little-endian encoding (Table 1's file-size
/// column) without materializing it: header + vertices + faces.
pub fn binary_file_size(mesh: &MeshData) -> u64 {
    let mut header = Vec::new();
    write_header(mesh, PlyFormat::BinaryLittleEndian, &mut header).expect("vec write cannot fail");
    let vstride = if mesh.normals.is_empty() { 12 } else { 24 };
    header.len() as u64 + mesh.positions.len() as u64 * vstride + mesh.triangles.len() as u64 * 13
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sphere;

    #[test]
    fn ascii_roundtrip() {
        let m = sphere(Vec3::ZERO, 1.0, 100);
        let mut buf = Vec::new();
        write(&m, PlyFormat::Ascii, &mut buf).unwrap();
        let back = read(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.triangle_count(), m.triangle_count());
        assert_eq!(back.vertex_count(), m.vertex_count());
        assert_eq!(back.normals.len(), m.normals.len());
    }

    #[test]
    fn binary_roundtrip_bit_exact() {
        let m = sphere(Vec3::new(0.5, -1.0, 2.0), 1.5, 128);
        let mut buf = Vec::new();
        write(&m, PlyFormat::BinaryLittleEndian, &mut buf).unwrap();
        let back = read(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.positions, m.positions);
        assert_eq!(back.triangles, m.triangles);
        assert_eq!(back.normals, m.normals);
    }

    #[test]
    fn binary_file_size_matches_actual() {
        let m = sphere(Vec3::ZERO, 1.0, 64);
        let mut buf = Vec::new();
        write(&m, PlyFormat::BinaryLittleEndian, &mut buf).unwrap();
        assert_eq!(binary_file_size(&m), buf.len() as u64);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read(std::io::Cursor::new(b"not a ply".to_vec())).is_err());
    }

    #[test]
    fn rejects_big_endian() {
        let text = "ply\nformat binary_big_endian 1.0\nend_header\n";
        assert!(read(std::io::Cursor::new(text.as_bytes().to_vec())).is_err());
    }

    #[test]
    fn ply_to_obj_conversion_pipeline() {
        // The paper's real ingest path: PLY -> OBJ -> import.
        let m = sphere(Vec3::ZERO, 1.0, 200);
        let mut ply_bytes = Vec::new();
        write(&m, PlyFormat::BinaryLittleEndian, &mut ply_bytes).unwrap();
        let from_ply = read(std::io::Cursor::new(ply_bytes)).unwrap();
        let mut obj_bytes = Vec::new();
        crate::obj::write(&from_ply, &mut obj_bytes).unwrap();
        let imported = crate::obj::read(std::io::Cursor::new(obj_bytes)).unwrap();
        assert_eq!(imported.triangle_count(), m.triangle_count());
    }

    #[test]
    fn quad_faces_fan_triangulated() {
        let text = "ply\nformat ascii 1.0\nelement vertex 4\nproperty float x\nproperty float y\nproperty float z\nelement face 1\nproperty list uchar int vertex_indices\nend_header\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n";
        let m = read(std::io::Cursor::new(text.as_bytes().to_vec())).unwrap();
        assert_eq!(m.triangle_count(), 2);
    }
}
