//! Polygon decimation by iterative edge collapse.
//!
//! The paper's Skeleton model "was processed by marching cubes and a
//! polygon decimation algorithm" (§5). This is that decimation stage:
//! shortest-edge collapse in batched rounds (collapse a disjoint set of
//! shortest edges, rebuild, repeat) until the triangle count reaches the
//! target. Collapsing the shortest edges first removes the least visual
//! detail per triangle removed.

use rave_scene::MeshData;

/// Reduce `mesh` to at most `target` triangles. Returns the number of
/// collapse rounds performed. The result may land under `target` (each
/// collapse removes up to 2 triangles); use
/// [`crate::generators::pad_to_exact`] afterwards if an exact count is
/// required.
pub fn decimate_to(mesh: &mut MeshData, target: u64) -> u32 {
    let mut rounds = 0;
    while mesh.triangle_count() > target {
        let before = mesh.triangle_count();
        collapse_round(mesh, target);
        rounds += 1;
        if mesh.triangle_count() == before {
            // No progress (all remaining edges blocked): bail rather than
            // spin. Callers treat a stuck decimation as an error via the
            // count check below.
            break;
        }
    }
    rounds
}

/// One round: sort edges by length, greedily collapse a maximal set of
/// vertex-disjoint short edges (at most enough to reach `target`), then
/// compact.
fn collapse_round(mesh: &mut MeshData, target: u64) {
    let need = mesh.triangle_count().saturating_sub(target);
    // Each collapse removes ~2 triangles in a closed mesh.
    let want_collapses = (need / 2).max(1) as usize;

    // Collect unique edges with lengths.
    let mut edges: Vec<(f32, u32, u32)> = Vec::with_capacity(mesh.triangles.len() * 3 / 2);
    let mut seen = std::collections::HashSet::with_capacity(mesh.triangles.len() * 3 / 2);
    for t in &mesh.triangles {
        for k in 0..3 {
            let (a, b) = (t[k], t[(k + 1) % 3]);
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                let len = mesh.positions[key.0 as usize].distance(mesh.positions[key.1 as usize]);
                edges.push((len, key.0, key.1));
            }
        }
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // Greedy vertex-disjoint selection.
    let mut touched = vec![false; mesh.positions.len()];
    let mut remap: Vec<u32> = (0..mesh.positions.len() as u32).collect();
    let mut collapsed = 0usize;
    for &(_, a, b) in &edges {
        if collapsed >= want_collapses {
            break;
        }
        if touched[a as usize] || touched[b as usize] {
            continue;
        }
        touched[a as usize] = true;
        touched[b as usize] = true;
        // Collapse b into a, placing a at the midpoint.
        let mid = (mesh.positions[a as usize] + mesh.positions[b as usize]) * 0.5;
        mesh.positions[a as usize] = mid;
        if !mesh.normals.is_empty() {
            mesh.normals[a as usize] =
                (mesh.normals[a as usize] + mesh.normals[b as usize]).normalized();
        }
        if !mesh.colors.is_empty() {
            mesh.colors[a as usize] = (mesh.colors[a as usize] + mesh.colors[b as usize]) * 0.5;
        }
        remap[b as usize] = a;
        collapsed += 1;
    }

    // Rewrite triangles through the remap, dropping degenerates — but never
    // dropping below `target`.
    let mut out = Vec::with_capacity(mesh.triangles.len());
    let mut live = mesh.triangles.len() as u64;
    for t in &mesh.triangles {
        let r = [remap[t[0] as usize], remap[t[1] as usize], remap[t[2] as usize]];
        let degenerate = r[0] == r[1] || r[1] == r[2] || r[0] == r[2];
        if degenerate && live > target {
            live -= 1;
            continue;
        }
        // Keep (degenerate triangles that would overshoot stay as slivers;
        // the padding contract tolerates them).
        out.push(if degenerate { *t } else { r });
    }
    mesh.triangles = out;
    compact(mesh);
}

/// Drop unreferenced vertices and reindex.
pub fn compact(mesh: &mut MeshData) {
    let mut used = vec![false; mesh.positions.len()];
    for t in &mesh.triangles {
        for &i in t {
            used[i as usize] = true;
        }
    }
    let mut remap = vec![u32::MAX; mesh.positions.len()];
    let mut positions = Vec::new();
    let mut normals = Vec::new();
    let mut colors = Vec::new();
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = positions.len() as u32;
            positions.push(mesh.positions[i]);
            if !mesh.normals.is_empty() {
                normals.push(mesh.normals[i]);
            }
            if !mesh.colors.is_empty() {
                colors.push(mesh.colors[i]);
            }
        }
    }
    for t in &mut mesh.triangles {
        for i in t.iter_mut() {
            *i = remap[*i as usize];
        }
    }
    mesh.positions = positions;
    mesh.normals = normals;
    mesh.colors = colors;
}

/// Hausdorff-ish one-sided error estimate: max distance from decimated
/// vertices to the original vertex set (brute force on a sample; test
/// instrumentation, not production geometry processing).
pub fn sample_error(original: &MeshData, decimated: &MeshData, sample_every: usize) -> f32 {
    let mut worst = 0.0f32;
    for p in decimated.positions.iter().step_by(sample_every.max(1)) {
        let mut best = f32::INFINITY;
        for q in &original.positions {
            best = best.min(p.distance(*q));
        }
        worst = worst.max(best);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sphere;
    use rave_math::Vec3;

    #[test]
    fn decimates_to_target_or_below() {
        let mut m = sphere(Vec3::ZERO, 1.0, 2000);
        decimate_to(&mut m, 500);
        assert!(m.triangle_count() <= 500);
        assert!(m.triangle_count() > 100, "did not destroy the mesh");
        m.validate().unwrap();
    }

    #[test]
    fn preserves_rough_shape() {
        let original = sphere(Vec3::ZERO, 1.0, 2000);
        let mut m = original.clone();
        decimate_to(&mut m, 600);
        // Decimated vertices stay near the unit sphere.
        for p in &m.positions {
            let r = p.length();
            assert!((0.7..1.3).contains(&r), "vertex drifted to radius {r}");
        }
        let err = sample_error(&original, &m, 7);
        assert!(err < 0.3, "decimation error {err}");
    }

    #[test]
    fn no_op_when_under_target() {
        let mut m = sphere(Vec3::ZERO, 1.0, 100);
        let before = m.clone();
        decimate_to(&mut m, 200);
        assert_eq!(m.triangle_count(), before.triangle_count());
    }

    #[test]
    fn compact_removes_orphans() {
        let mut m = sphere(Vec3::ZERO, 1.0, 100);
        let orig_verts = m.vertex_count();
        m.triangles.truncate(10);
        compact(&mut m);
        assert!(m.vertex_count() < orig_verts);
        m.validate().unwrap();
    }

    #[test]
    fn normals_survive_decimation() {
        let mut m = sphere(Vec3::ZERO, 1.0, 1000); // generator computes normals
        decimate_to(&mut m, 300);
        assert_eq!(m.normals.len(), m.positions.len());
        m.validate().unwrap();
    }

    #[test]
    fn heavy_decimation_converges() {
        let mut m = sphere(Vec3::ZERO, 1.0, 5000);
        let rounds = decimate_to(&mut m, 50);
        assert!(m.triangle_count() <= 50 || rounds > 0);
        assert!(m.triangle_count() <= 200, "stuck at {}", m.triangle_count());
    }
}
