//! Wavefront OBJ writer/parser.
//!
//! "The models were in PLY format, converted to Wavefront OBJ and then
//! imported into our data service" (§5) — this module is the OBJ side of
//! that real conversion pipeline.

use rave_math::Vec3;
use rave_scene::MeshData;
use std::io::{BufRead, Write};

/// Write a mesh as OBJ (`v`, optional `vn`, `f` records; faces reference
/// normals when present).
pub fn write<W: Write>(mesh: &MeshData, mut w: W) -> std::io::Result<()> {
    let mut buf = String::with_capacity(64);
    use std::fmt::Write as _;
    for p in &mesh.positions {
        buf.clear();
        let _ = writeln!(buf, "v {:.4} {:.4} {:.4}", p.x, p.y, p.z);
        w.write_all(buf.as_bytes())?;
    }
    let has_normals = !mesh.normals.is_empty();
    if has_normals {
        for n in &mesh.normals {
            buf.clear();
            let _ = writeln!(buf, "vn {:.3} {:.3} {:.3}", n.x, n.y, n.z);
            w.write_all(buf.as_bytes())?;
        }
    }
    for t in &mesh.triangles {
        buf.clear();
        if has_normals {
            let _ = writeln!(
                buf,
                "f {}//{} {}//{} {}//{}",
                t[0] + 1,
                t[0] + 1,
                t[1] + 1,
                t[1] + 1,
                t[2] + 1,
                t[2] + 1
            );
        } else {
            let _ = writeln!(buf, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1);
        }
        w.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Parse OBJ text. Supports `v`, `vn`, `f` (triangles and larger polygons,
/// fan-triangulated), comments, and unknown records (skipped). Vertex
/// indices may be `i`, `i/t`, `i//n` or `i/t/n`, and may be negative
/// (relative).
pub fn read<R: BufRead>(r: R) -> std::io::Result<MeshData> {
    let mut positions: Vec<Vec3> = Vec::new();
    let mut normals_pool: Vec<Vec3> = Vec::new();
    let mut normals: Vec<Vec3> = Vec::new();
    let mut triangles: Vec<[u32; 3]> = Vec::new();

    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);

    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let mut xyz = [0.0f32; 3];
                for x in &mut xyz {
                    *x = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(format!("line {}: bad vertex", lineno + 1)))?;
                }
                positions.push(Vec3::new(xyz[0], xyz[1], xyz[2]));
            }
            Some("vn") => {
                let mut xyz = [0.0f32; 3];
                for x in &mut xyz {
                    *x = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(format!("line {}: bad normal", lineno + 1)))?;
                }
                normals_pool.push(Vec3::new(xyz[0], xyz[1], xyz[2]));
            }
            Some("f") => {
                let mut verts: Vec<(u32, Option<u32>)> = Vec::new();
                for token in parts {
                    let mut fields = token.split('/');
                    let vi_raw: i64 = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(format!("line {}: bad face index", lineno + 1)))?;
                    let vi = resolve_index(vi_raw, positions.len())
                        .ok_or_else(|| bad(format!("line {}: index out of range", lineno + 1)))?;
                    let _vt = fields.next(); // texture coord index, unused
                    let ni = fields
                        .next()
                        .filter(|s| !s.is_empty())
                        .and_then(|s| s.parse::<i64>().ok())
                        .and_then(|n| resolve_index(n, normals_pool.len()));
                    verts.push((vi, ni));
                }
                if verts.len() < 3 {
                    return Err(bad(format!("line {}: face with <3 vertices", lineno + 1)));
                }
                for k in 1..verts.len() - 1 {
                    triangles.push([verts[0].0, verts[k].0, verts[k + 1].0]);
                }
                // Record per-vertex normals if the face names them; filled
                // into position order below.
                for &(vi, ni) in &verts {
                    if let Some(n) = ni {
                        if normals.len() < positions.len() {
                            normals.resize(positions.len(), Vec3::ZERO);
                        }
                        normals[vi as usize] = normals_pool[n as usize];
                    }
                }
            }
            _ => {} // mtllib/usemtl/g/o/s/vt — irrelevant to import
        }
    }
    let mut mesh = MeshData::new(positions, triangles);
    if normals.len() == mesh.positions.len() && !normals.is_empty() {
        mesh.normals = normals;
    }
    mesh.validate().map_err(|e| bad(format!("invalid mesh: {e}")))?;
    Ok(mesh)
}

/// OBJ indices are 1-based; negative counts from the end.
fn resolve_index(raw: i64, len: usize) -> Option<u32> {
    let idx = if raw > 0 {
        raw - 1
    } else if raw < 0 {
        len as i64 + raw
    } else {
        return None;
    };
    if (0..len as i64).contains(&idx) {
        Some(idx as u32)
    } else {
        None
    }
}

/// Size in bytes the mesh occupies as OBJ text (without materializing the
/// whole file in memory).
pub fn file_size(mesh: &MeshData) -> u64 {
    struct CountingSink(u64);
    impl Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0 += buf.len() as u64;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut sink = CountingSink(0);
    write(mesh, &mut sink).expect("counting sink cannot fail");
    sink.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sphere;

    #[test]
    fn roundtrip_preserves_geometry() {
        let m = sphere(Vec3::ZERO, 1.0, 200);
        let mut buf = Vec::new();
        write(&m, &mut buf).unwrap();
        let back = read(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.triangle_count(), m.triangle_count());
        assert_eq!(back.vertex_count(), m.vertex_count());
        // Positions match to the 4-decimal precision of the writer.
        for (a, b) in m.positions.iter().zip(&back.positions) {
            assert!((a.x - b.x).abs() < 1e-3);
            assert!((a.y - b.y).abs() < 1e-3);
            assert!((a.z - b.z).abs() < 1e-3);
        }
        assert_eq!(back.normals.len(), back.positions.len());
    }

    #[test]
    fn parses_quads_by_fanning() {
        let text = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n";
        let m = read(std::io::Cursor::new(text)).unwrap();
        assert_eq!(m.triangle_count(), 2);
    }

    #[test]
    fn parses_negative_indices() {
        let text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n";
        let m = read(std::io::Cursor::new(text)).unwrap();
        assert_eq!(m.triangle_count(), 1);
        assert_eq!(m.triangles[0], [0, 1, 2]);
    }

    #[test]
    fn skips_comments_and_unknown_records() {
        let text =
            "# comment\nmtllib foo.mtl\ng group\nv 0 0 0\nv 1 0 0\nv 0 1 0\ns off\nf 1 2 3\n";
        let m = read(std::io::Cursor::new(text)).unwrap();
        assert_eq!(m.triangle_count(), 1);
    }

    #[test]
    fn rejects_out_of_range_index() {
        let text = "v 0 0 0\nf 1 2 3\n";
        assert!(read(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_two_vertex_face() {
        let text = "v 0 0 0\nv 1 0 0\nf 1 2\n";
        assert!(read(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn file_size_matches_actual_bytes() {
        let m = sphere(Vec3::ZERO, 1.0, 64);
        let mut buf = Vec::new();
        write(&m, &mut buf).unwrap();
        assert_eq!(file_size(&m), buf.len() as u64);
    }
}
