//! Isosurface extraction by marching tetrahedra.
//!
//! Each grid cell is decomposed into 6 tetrahedra; each tetrahedron emits
//! 0, 1 or 2 triangles depending on the sign pattern of its corners, with
//! vertices placed by linear interpolation along sign-crossing edges.
//! Output is watertight across cells because shared faces see identical
//! corner samples. Cells are processed in parallel rows via Rayon (this is
//! the biggest single compute in model construction).

use crate::implicit::ScalarField;
use rave_math::{Aabb, Vec3};
use rave_scene::MeshData;
use rayon::prelude::*;

/// The 6-tetrahedron decomposition of a unit cell, as corner indices into
/// the cell's 8 corners (standard Kuhn split).
const TETS: [[usize; 4]; 6] =
    [[0, 5, 1, 6], [0, 1, 2, 6], [0, 2, 3, 6], [0, 3, 7, 6], [0, 7, 4, 6], [0, 4, 5, 6]];

/// Corner offsets of a cell, in (x, y, z) order matching `TETS`.
const CORNERS: [(f32, f32, f32); 8] = [
    (0.0, 0.0, 0.0),
    (1.0, 0.0, 0.0),
    (1.0, 1.0, 0.0),
    (0.0, 1.0, 0.0),
    (0.0, 0.0, 1.0),
    (1.0, 0.0, 1.0),
    (1.0, 1.0, 1.0),
    (0.0, 1.0, 1.0),
];

fn interp(p0: Vec3, v0: f32, p1: Vec3, v1: f32) -> Vec3 {
    let denom = v1 - v0;
    let t = if denom.abs() < 1e-12 { 0.5 } else { (-v0 / denom).clamp(0.0, 1.0) };
    p0.lerp(p1, t)
}

fn emit_tet(corners: &[(Vec3, f32); 8], tet: &[usize; 4], tris: &mut Vec<[Vec3; 3]>) {
    let (p, v): (Vec<Vec3>, Vec<f32>) = tet.iter().map(|&i| corners[i]).unzip();
    let mut inside = [false; 4];
    let mut n_inside = 0;
    for i in 0..4 {
        inside[i] = v[i] < 0.0;
        if inside[i] {
            n_inside += 1;
        }
    }
    // Indices of inside/outside corners, deterministic order.
    let ins: Vec<usize> = (0..4).filter(|&i| inside[i]).collect();
    let outs: Vec<usize> = (0..4).filter(|&i| !inside[i]).collect();
    match n_inside {
        0 | 4 => {}
        1 => {
            let a = ins[0];
            tris.push([
                interp(p[a], v[a], p[outs[0]], v[outs[0]]),
                interp(p[a], v[a], p[outs[1]], v[outs[1]]),
                interp(p[a], v[a], p[outs[2]], v[outs[2]]),
            ]);
        }
        3 => {
            let a = outs[0];
            tris.push([
                interp(p[a], v[a], p[ins[0]], v[ins[0]]),
                interp(p[a], v[a], p[ins[2]], v[ins[2]]),
                interp(p[a], v[a], p[ins[1]], v[ins[1]]),
            ]);
        }
        2 => {
            // Quad between the two crossing pairs, split into 2 triangles.
            let q0 = interp(p[ins[0]], v[ins[0]], p[outs[0]], v[outs[0]]);
            let q1 = interp(p[ins[0]], v[ins[0]], p[outs[1]], v[outs[1]]);
            let q2 = interp(p[ins[1]], v[ins[1]], p[outs[1]], v[outs[1]]);
            let q3 = interp(p[ins[1]], v[ins[1]], p[outs[0]], v[outs[0]]);
            tris.push([q0, q1, q2]);
            tris.push([q0, q2, q3]);
        }
        _ => unreachable!(),
    }
}

/// Polygonize the zero isosurface of `field` inside `bounds` on a
/// `res³`-cell grid. Returns a welded, indexed mesh with smooth normals
/// from the field gradient.
pub fn polygonize(field: &(impl ScalarField + ?Sized), bounds: Aabb, res: u32) -> MeshData {
    assert!(res >= 1);
    let n = res as usize;
    let ext = bounds.extent();
    let cell = Vec3::new(ext.x / res as f32, ext.y / res as f32, ext.z / res as f32);

    // Sample the lattice once: (n+1)^3 values.
    let lat = n + 1;
    let sample_at = |x: usize, y: usize, z: usize| {
        bounds.min + Vec3::new(x as f32 * cell.x, y as f32 * cell.y, z as f32 * cell.z)
    };
    let samples: Vec<f32> = (0..lat * lat * lat)
        .into_par_iter()
        .map(|i| {
            let x = i % lat;
            let y = (i / lat) % lat;
            let z = i / (lat * lat);
            field.sample(sample_at(x, y, z))
        })
        .collect();
    let value = |x: usize, y: usize, z: usize| samples[x + lat * (y + lat * z)];

    // March cells, one z-slab per parallel task.
    let slabs: Vec<Vec<[Vec3; 3]>> = (0..n)
        .into_par_iter()
        .map(|z| {
            let mut tris = Vec::new();
            for y in 0..n {
                for x in 0..n {
                    let mut corners = [(Vec3::ZERO, 0.0f32); 8];
                    let mut all_pos = true;
                    let mut all_neg = true;
                    for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
                        let cx = x + dx as usize;
                        let cy = y + dy as usize;
                        let cz = z + dz as usize;
                        let v = value(cx, cy, cz);
                        corners[i] = (sample_at(cx, cy, cz), v);
                        all_pos &= v >= 0.0;
                        all_neg &= v < 0.0;
                    }
                    if all_pos || all_neg {
                        continue;
                    }
                    for tet in &TETS {
                        emit_tet(&corners, tet, &mut tris);
                    }
                }
            }
            tris
        })
        .collect();

    // Weld vertices by quantized position so the output is indexed.
    let mut mesh = MeshData::new(Vec::new(), Vec::new());
    let quant = |p: Vec3| {
        let s = 1.0 / (cell.x.min(cell.y).min(cell.z) * 1e-3).max(1e-9);
        ((p.x * s).round() as i64, (p.y * s).round() as i64, (p.z * s).round() as i64)
    };
    let mut index: std::collections::HashMap<(i64, i64, i64), u32> =
        std::collections::HashMap::new();
    for tri in slabs.iter().flatten() {
        let mut idx = [0u32; 3];
        for (k, &p) in tri.iter().enumerate() {
            let key = quant(p);
            idx[k] = *index.entry(key).or_insert_with(|| {
                mesh.positions.push(p);
                (mesh.positions.len() - 1) as u32
            });
        }
        // Drop degenerate triangles produced by corner-touching cases.
        if idx[0] != idx[1] && idx[1] != idx[2] && idx[0] != idx[2] {
            mesh.triangles.push(idx);
        }
    }
    mesh.normals = mesh.positions.iter().map(|&p| field.gradient(p)).collect();
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::{Blobby, Capsule, Sphere};

    fn unit_sphere_mesh(res: u32) -> MeshData {
        let s = Sphere { center: Vec3::ZERO, radius: 1.0 };
        polygonize(&s, Aabb::new(Vec3::splat(-1.5), Vec3::splat(1.5)), res)
    }

    #[test]
    fn sphere_polygonizes_nonempty_valid() {
        let m = unit_sphere_mesh(16);
        assert!(m.triangle_count() > 100);
        m.validate().unwrap();
    }

    #[test]
    fn vertices_lie_near_isosurface() {
        let m = unit_sphere_mesh(24);
        for p in &m.positions {
            let d = (p.length() - 1.0).abs();
            assert!(d < 0.15, "vertex {p:?} is {d} from the isosurface");
        }
    }

    #[test]
    fn resolution_refines_triangle_count() {
        let lo = unit_sphere_mesh(8).triangle_count();
        let hi = unit_sphere_mesh(20).triangle_count();
        assert!(hi > lo * 3, "lo={lo} hi={hi}");
    }

    #[test]
    fn surface_area_converges_to_sphere() {
        let m = unit_sphere_mesh(32);
        let mut area = 0.0f64;
        for t in &m.triangles {
            let a = m.positions[t[0] as usize];
            let b = m.positions[t[1] as usize];
            let c = m.positions[t[2] as usize];
            area += (b - a).cross(c - a).length() as f64 * 0.5;
        }
        let expect = 4.0 * std::f64::consts::PI;
        assert!((area - expect).abs() / expect < 0.05, "area {area} vs sphere {expect}");
    }

    #[test]
    fn empty_field_produces_empty_mesh() {
        let s = Sphere { center: Vec3::splat(100.0), radius: 0.1 };
        let m = polygonize(&s, Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)), 8);
        assert_eq!(m.triangle_count(), 0);
    }

    #[test]
    fn welding_produces_shared_vertices() {
        let m = unit_sphere_mesh(12);
        // A triangle soup would have 3 vertices per triangle; welding must
        // do much better.
        assert!(
            (m.vertex_count() as u64) < m.triangle_count() * 3 / 2,
            "verts {} tris {}",
            m.vertex_count(),
            m.triangle_count()
        );
    }

    #[test]
    fn blobby_capsule_polygonizes() {
        let mut b = Blobby::new(0.1);
        b.push(Capsule { a: Vec3::ZERO, b: Vec3::new(2.0, 0.0, 0.0), radius: 0.3 });
        let m = polygonize(&b, Aabb::new(Vec3::splat(-1.0), Vec3::new(3.0, 1.0, 1.0)), 20);
        assert!(m.triangle_count() > 50);
        m.validate().unwrap();
        let bb = m.bounds();
        assert!(bb.max.x > 1.8, "capsule spans x: {:?}", bb);
    }

    #[test]
    fn normals_point_outward_on_sphere() {
        let m = unit_sphere_mesh(16);
        for (p, n) in m.positions.iter().zip(&m.normals) {
            assert!(p.normalized().dot(*n) > 0.7, "normal not outward at {p:?}");
        }
    }
}
