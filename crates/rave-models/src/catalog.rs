//! The paper's four benchmark models, rebuilt procedurally with exact
//! polygon counts (Table 1).

use crate::decimate::decimate_to;
use crate::generators::{
    hull, merge, pad_to_exact, paint, parametric_grid, sail, sphere, transform, tube,
};
use crate::implicit::{Blobby, Capsule, Ellipsoid, ScalarField};
use crate::marching::polygonize;
use rave_math::{Aabb, Quat, Vec3};
use rave_scene::MeshData;

/// The models used in the paper's benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperModel {
    /// Clemson Stereolithography Archive hand — 0.83 M polygons, 20 MB.
    SkeletalHand,
    /// Visible Man skeleton (marching cubes + decimation) — 2.8 M, 75 MB.
    Skeleton,
    /// Blaxxun VRML benchmark figure — 50 k polygons (Tables 3/4).
    Elle,
    /// Java3D example galleon — 5.5 k polygons (Tables 3/4/5, Fig 5).
    Galleon,
}

impl PaperModel {
    pub const ALL: [PaperModel; 4] =
        [PaperModel::SkeletalHand, PaperModel::Skeleton, PaperModel::Elle, PaperModel::Galleon];

    pub fn name(self) -> &'static str {
        match self {
            PaperModel::SkeletalHand => "Skeletal Hand",
            PaperModel::Skeleton => "Skeleton",
            PaperModel::Elle => "Elle",
            PaperModel::Galleon => "Galleon",
        }
    }

    /// Polygon count reported in the paper.
    pub fn target_polygons(self) -> u64 {
        match self {
            PaperModel::SkeletalHand => 830_000,
            PaperModel::Skeleton => 2_800_000,
            PaperModel::Elle => 50_000,
            PaperModel::Galleon => 5_500,
        }
    }

    /// Data-file size the paper reports (MB), where given.
    pub fn paper_file_size_mb(self) -> Option<f64> {
        match self {
            PaperModel::SkeletalHand => Some(20.0),
            PaperModel::Skeleton => Some(75.0),
            _ => None,
        }
    }
}

/// Split `total` into integer shares proportional to `weights`, summing
/// exactly to `total` (largest-remainder assignment of the slack).
pub fn split_budget(total: u64, weights: &[u32]) -> Vec<u64> {
    assert!(!weights.is_empty());
    let wsum: u64 = weights.iter().map(|&w| w as u64).sum();
    assert!(wsum > 0);
    let mut shares: Vec<u64> = weights.iter().map(|&w| total * w as u64 / wsum).collect();
    let mut assigned: u64 = shares.iter().sum();
    let n = shares.len();
    let mut i = 0;
    while assigned < total {
        shares[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    shares
}

/// Build a paper model at its published polygon count. Full-size builds of
/// the Hand/Skeleton take seconds in release mode; tests should use
/// [`build_with_budget`] with small budgets.
pub fn build_model(model: PaperModel) -> MeshData {
    build_with_budget(model, model.target_polygons())
}

/// Build a paper model scaled to exactly `budget` triangles.
pub fn build_with_budget(model: PaperModel, budget: u64) -> MeshData {
    assert!(budget >= 64, "budget too small for a recognizable model");
    let mut mesh = match model {
        PaperModel::SkeletalHand => skeletal_hand(budget),
        PaperModel::Skeleton => skeleton(budget),
        PaperModel::Elle => elle(budget),
        PaperModel::Galleon => galleon(budget),
    };
    assert_eq!(mesh.triangle_count(), budget, "{} budget miss", model.name());
    debug_assert!(mesh.validate().is_ok());
    if mesh.normals.is_empty() {
        mesh.compute_normals();
    }
    mesh
}

/// Isosurface `field` within `bounds` at a resolution sized to the budget,
/// then decimate (if over) or T-split pad (if under) to exactly `budget`.
fn isosurface_budgeted(field: &(impl ScalarField + ?Sized), bounds: Aabb, budget: u64) -> MeshData {
    // Probe to estimate triangle yield per res² (marching-tet output grows
    // quadratically with res for a 2-D surface). The res cap scales with
    // the budget: tiny budgets must not escalate to huge grids only to be
    // decimated straight back down — padding covers the shortfall instead.
    let res_cap = ((budget as f64).sqrt() * 3.0).clamp(32.0, 360.0) as u32;
    let probe_res = 20.min(res_cap);
    let mut mesh = polygonize(field, bounds, probe_res);
    let mut res = probe_res;
    while mesh.triangle_count() < budget && res < res_cap {
        let have = mesh.triangle_count().max(8);
        // Aim 25% above target.
        let factor = ((budget as f64 * 1.25 / have as f64).sqrt()).max(1.3);
        res = (((res as f64 * factor).ceil() as u32).min(res_cap)).max(res + 1);
        mesh = polygonize(field, bounds, res);
    }
    if mesh.triangle_count() == 0 {
        // Field surface missed the grid entirely (degenerate bone):
        // substitute a budget-exact sphere at the bounds center so the
        // budget contract still holds.
        return sphere(bounds.center(), bounds.extent().length().max(0.01) * 0.25, budget);
    }
    if mesh.triangle_count() > budget {
        decimate_to(&mut mesh, budget);
        assert!(mesh.triangle_count() <= budget, "decimation stuck");
    }
    pad_to_exact(&mut mesh, budget);
    mesh
}

/// The skeletal hand: a squashed palm plus five articulated fingers built
/// from capsule chains, isosurfaced per digit (bones render as distinct
/// solids, like the stereolithography original).
fn skeletal_hand(budget: u64) -> MeshData {
    // Weights: palm 4, thumb 2, four fingers 3 each.
    let shares = split_budget(budget, &[4, 2, 3, 3, 3, 3]);
    let bone = Vec3::new(0.93, 0.90, 0.82); // aged-bone tint

    let mut parts: Vec<MeshData> = Vec::new();

    // Palm: flattened ellipsoid.
    let palm_field = Ellipsoid { center: Vec3::ZERO, radii: Vec3::new(0.85, 1.0, 0.28) };
    let palm_bounds = Aabb::new(Vec3::new(-1.1, -1.3, -0.5), Vec3::new(1.1, 1.3, 0.5));
    parts.push(isosurface_budgeted(&palm_field, palm_bounds, shares[0]));

    // Thumb: two phalanges angled off the palm edge.
    let mut thumb = Blobby::new(0.04);
    thumb.push(Capsule {
        a: Vec3::new(-0.8, -0.5, 0.0),
        b: Vec3::new(-1.35, 0.1, 0.1),
        radius: 0.14,
    });
    thumb.push(Capsule {
        a: Vec3::new(-1.35, 0.1, 0.1),
        b: Vec3::new(-1.6, 0.62, 0.15),
        radius: 0.11,
    });
    let thumb_bounds = Aabb::new(Vec3::new(-2.0, -0.9, -0.3), Vec3::new(-0.5, 1.0, 0.5));
    parts.push(isosurface_budgeted(&thumb, thumb_bounds, shares[1]));

    // Four fingers: three phalanges each, fanned across the palm top.
    for (i, &share) in shares[2..].iter().enumerate() {
        let x = -0.6 + 0.4 * i as f32;
        let len = [1.05, 1.2, 1.1, 0.85][i];
        let mut finger = Blobby::new(0.03);
        let joints = [0.0, 0.45, 0.78, 1.0];
        for s in 0..3 {
            finger.push(Capsule {
                a: Vec3::new(x, 1.0 + joints[s] * len, 0.0),
                b: Vec3::new(x, 1.0 + joints[s + 1] * len, 0.0),
                radius: 0.13 - 0.02 * s as f32,
            });
        }
        let b = Aabb::new(Vec3::new(x - 0.3, 0.6, -0.3), Vec3::new(x + 0.3, 1.1 + len + 0.3, 0.3));
        parts.push(isosurface_budgeted(&finger, b, share));
    }

    let mut mesh = merge(&parts);
    paint(&mut mesh, bone);
    mesh
}

/// The full skeleton: ~30 bones, each an implicit solid isosurfaced in its
/// own local bounds (the same marching + decimation pipeline the Visible
/// Man model went through, run per bone so the grid stays tractable).
fn skeleton(budget: u64) -> MeshData {
    struct BonePart {
        field: Blobby,
        bounds: Aabb,
        weight: u32,
    }
    let mut bones: Vec<BonePart> = Vec::new();
    fn add_capsule(bones: &mut Vec<BonePart>, a: Vec3, b: Vec3, r: f32, weight: u32) {
        let mut f = Blobby::new(0.0);
        f.push(Capsule { a, b, radius: r });
        let lo = a.min(b) - Vec3::splat(r * 2.0);
        let hi = a.max(b) + Vec3::splat(r * 2.0);
        bones.push(BonePart { field: f, bounds: Aabb::new(lo, hi), weight });
    }

    // Skull.
    {
        let mut f = Blobby::new(0.05);
        f.push(Ellipsoid { center: Vec3::new(0.0, 3.4, 0.0), radii: Vec3::new(0.32, 0.4, 0.36) });
        f.push(Ellipsoid { center: Vec3::new(0.0, 3.05, 0.12), radii: Vec3::new(0.2, 0.16, 0.2) }); // jaw
        bones.push(BonePart {
            field: f,
            bounds: Aabb::new(Vec3::new(-0.6, 2.6, -0.6), Vec3::new(0.6, 4.0, 0.6)),
            weight: 6,
        });
    }
    // Spine: 8 vertebra segments.
    for s in 0..8 {
        let y0 = 1.4 + 0.19 * s as f32;
        add_capsule(&mut bones, Vec3::new(0.0, y0, 0.0), Vec3::new(0.0, y0 + 0.14, 0.0), 0.09, 1);
    }
    // Rib cage: 6 pairs of curved-ish ribs approximated by two capsules per
    // side.
    for r in 0..6 {
        let y = 2.0 + 0.12 * r as f32;
        let spread = 0.42 - 0.02 * r as f32;
        for side in [-1.0f32, 1.0] {
            let mut f = Blobby::new(0.02);
            f.push(Capsule {
                a: Vec3::new(0.0, y, -0.05),
                b: Vec3::new(side * spread, y - 0.05, 0.12),
                radius: 0.035,
            });
            f.push(Capsule {
                a: Vec3::new(side * spread, y - 0.05, 0.12),
                b: Vec3::new(side * 0.12, y - 0.12, 0.3),
                radius: 0.03,
            });
            let lo = Vec3::new(-0.6, y - 0.3, -0.2);
            let hi = Vec3::new(0.6, y + 0.2, 0.5);
            bones.push(BonePart { field: f, bounds: Aabb::new(lo, hi), weight: 2 });
        }
    }
    // Pelvis.
    {
        let mut f = Blobby::new(0.04);
        f.push(Ellipsoid { center: Vec3::new(0.0, 1.25, 0.0), radii: Vec3::new(0.4, 0.22, 0.26) });
        bones.push(BonePart {
            field: f,
            bounds: Aabb::new(Vec3::new(-0.7, 0.9, -0.5), Vec3::new(0.7, 1.6, 0.5)),
            weight: 4,
        });
    }
    // Shoulders + arms: clavicle, humerus, radius/ulna per side.
    for side in [-1.0f32, 1.0] {
        add_capsule(
            &mut bones,
            Vec3::new(0.0, 2.75, 0.0),
            Vec3::new(side * 0.45, 2.7, 0.0),
            0.05,
            1,
        );
        add_capsule(
            &mut bones,
            Vec3::new(side * 0.45, 2.7, 0.0),
            Vec3::new(side * 0.55, 1.95, 0.0),
            0.06,
            3,
        );
        add_capsule(
            &mut bones,
            Vec3::new(side * 0.55, 1.95, 0.0),
            Vec3::new(side * 0.6, 1.25, 0.05),
            0.05,
            3,
        );
        // Hand blob.
        let mut f = Blobby::new(0.02);
        f.push(Ellipsoid {
            center: Vec3::new(side * 0.62, 1.1, 0.07),
            radii: Vec3::new(0.07, 0.12, 0.04),
        });
        bones.push(BonePart {
            field: f,
            bounds: Aabb::new(
                Vec3::new(side * 0.62 - 0.25, 0.85, -0.2),
                Vec3::new(side * 0.62 + 0.25, 1.35, 0.3),
            ),
            weight: 1,
        });
    }
    // Legs: femur, tibia, foot per side.
    for side in [-1.0f32, 1.0] {
        add_capsule(
            &mut bones,
            Vec3::new(side * 0.22, 1.15, 0.0),
            Vec3::new(side * 0.25, 0.55, 0.0),
            0.07,
            4,
        );
        add_capsule(
            &mut bones,
            Vec3::new(side * 0.25, 0.55, 0.0),
            Vec3::new(side * 0.26, 0.05, 0.0),
            0.055,
            4,
        );
        add_capsule(
            &mut bones,
            Vec3::new(side * 0.26, 0.05, 0.0),
            Vec3::new(side * 0.26, 0.02, 0.22),
            0.045,
            1,
        );
    }

    let weights: Vec<u32> = bones.iter().map(|b| b.weight).collect();
    let shares = split_budget(budget, &weights);
    let parts: Vec<MeshData> = bones
        .iter()
        .zip(&shares)
        .map(|(b, &share)| isosurface_budgeted(&b.field, b.bounds, share.max(4)))
        .collect();
    // Budget exactness: shares sum to budget but the `.max(4)` floor for
    // micro-shares can overshoot; reconcile by decimating the merge.
    let mut mesh = merge(&parts);
    if mesh.triangle_count() > budget {
        decimate_to(&mut mesh, budget);
    }
    pad_to_exact(&mut mesh, budget);
    paint(&mut mesh, Vec3::new(0.92, 0.91, 0.86));
    mesh
}

/// "Elle": a standing figure (the Blaxxun VRML benchmark was a human
/// figure), as one smooth blobby body.
fn elle(budget: u64) -> MeshData {
    let mut body = Blobby::new(0.08);
    // Head, torso, hips.
    body.push(Ellipsoid { center: Vec3::new(0.0, 1.62, 0.0), radii: Vec3::new(0.11, 0.14, 0.12) });
    body.push(Ellipsoid { center: Vec3::new(0.0, 1.25, 0.0), radii: Vec3::new(0.17, 0.26, 0.12) });
    body.push(Ellipsoid { center: Vec3::new(0.0, 0.92, 0.0), radii: Vec3::new(0.17, 0.14, 0.13) });
    // Arms.
    for side in [-1.0f32, 1.0] {
        body.push(Capsule {
            a: Vec3::new(side * 0.2, 1.42, 0.0),
            b: Vec3::new(side * 0.3, 1.1, 0.02),
            radius: 0.05,
        });
        body.push(Capsule {
            a: Vec3::new(side * 0.3, 1.1, 0.02),
            b: Vec3::new(side * 0.33, 0.8, 0.06),
            radius: 0.04,
        });
    }
    // Legs.
    for side in [-1.0f32, 1.0] {
        body.push(Capsule {
            a: Vec3::new(side * 0.09, 0.86, 0.0),
            b: Vec3::new(side * 0.11, 0.45, 0.0),
            radius: 0.07,
        });
        body.push(Capsule {
            a: Vec3::new(side * 0.11, 0.45, 0.0),
            b: Vec3::new(side * 0.12, 0.04, 0.0),
            radius: 0.05,
        });
    }
    let bounds = Aabb::new(Vec3::new(-0.6, -0.1, -0.4), Vec3::new(0.6, 1.9, 0.4));
    let mut mesh = isosurface_budgeted(&body, bounds, budget);
    paint(&mut mesh, Vec3::new(0.8, 0.65, 0.55));
    mesh
}

/// The galleon: hull, deck, three masts, three sails, bowsprit.
fn galleon(budget: u64) -> MeshData {
    let shares = split_budget(budget, &[8, 2, 1, 1, 1, 3, 3, 3, 1]);
    let mut parts = Vec::new();

    // Hull + deck.
    let mut h = hull(4.0, 1.2, 0.9, shares[0]);
    paint(&mut h, Vec3::new(0.45, 0.3, 0.18));
    parts.push(h);
    let mut deck = parametric_grid(1, (shares[1] / 2).max(1) as u32, |u, v| {
        let x = (v - 0.5) * 3.8;
        let w = (1.0 - (2.0 * v - 1.0).powi(2)).max(0.05);
        Vec3::new(x, 0.02, (u - 0.5) * 1.1 * w)
    });
    // Grid dims may undershoot odd shares; pad below via the merge step.
    pad_to_exact(&mut deck, shares[1]);
    paint(&mut deck, Vec3::new(0.55, 0.42, 0.25));
    parts.push(deck);

    // Masts.
    let mast_x = [-1.2f32, 0.0, 1.2];
    for (i, &x) in mast_x.iter().enumerate() {
        let mut m = tube(Vec3::new(x, 0.0, 0.0), Vec3::new(0.0, 2.2, 0.0), 0.05, shares[2 + i]);
        paint(&mut m, Vec3::new(0.4, 0.3, 0.2));
        parts.push(m);
    }
    // Sails.
    for (i, &x) in mast_x.iter().enumerate() {
        let mut s = sail(Vec3::new(x, 1.3, 0.0), 1.1, 1.2, shares[5 + i]);
        paint(&mut s, Vec3::new(0.95, 0.93, 0.85));
        parts.push(s);
    }
    // Bowsprit.
    let mut b = tube(Vec3::new(1.9, 0.15, 0.0), Vec3::new(1.0, 0.35, 0.0), 0.03, shares[8]);
    paint(&mut b, Vec3::new(0.4, 0.3, 0.2));
    parts.push(b);

    let mut mesh = merge(&parts);
    // Tilt slightly so a straight-on view shows the masts (Fig 5 framing).
    transform(&mut mesh, Quat::from_axis_angle(Vec3::Y, 0.15), Vec3::ZERO);
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_budget_sums_exactly() {
        for total in [100u64, 101, 5_500, 12_345] {
            let shares = split_budget(total, &[4, 2, 3, 3, 3, 3]);
            assert_eq!(shares.iter().sum::<u64>(), total);
        }
    }

    #[test]
    #[should_panic]
    fn split_budget_rejects_zero_weights() {
        split_budget(100, &[0, 0]);
    }

    #[test]
    fn galleon_small_budget_exact() {
        let m = build_with_budget(PaperModel::Galleon, 5_500);
        assert_eq!(m.triangle_count(), 5_500);
        m.validate().unwrap();
        assert!(!m.colors.is_empty());
    }

    #[test]
    fn hand_scaled_down_exact() {
        let m = build_with_budget(PaperModel::SkeletalHand, 3_000);
        assert_eq!(m.triangle_count(), 3_000);
        m.validate().unwrap();
        // Five fingers + thumb + palm: spans in both x and y.
        let b = m.bounds();
        assert!(b.extent().x > 1.5 && b.extent().y > 2.0);
    }

    #[test]
    fn skeleton_scaled_down_exact() {
        let m = build_with_budget(PaperModel::Skeleton, 4_000);
        assert_eq!(m.triangle_count(), 4_000);
        m.validate().unwrap();
        let b = m.bounds();
        assert!(b.extent().y > 3.0, "skeleton should be tall: {:?}", b);
    }

    #[test]
    fn elle_scaled_down_exact() {
        let m = build_with_budget(PaperModel::Elle, 2_000);
        assert_eq!(m.triangle_count(), 2_000);
        m.validate().unwrap();
    }

    #[test]
    fn targets_match_paper() {
        assert_eq!(PaperModel::SkeletalHand.target_polygons(), 830_000);
        assert_eq!(PaperModel::Skeleton.target_polygons(), 2_800_000);
        assert_eq!(PaperModel::Elle.target_polygons(), 50_000);
        assert_eq!(PaperModel::Galleon.target_polygons(), 5_500);
    }

    #[test]
    #[should_panic]
    fn tiny_budget_rejected() {
        build_with_budget(PaperModel::Galleon, 10);
    }

    #[test]
    fn models_have_normals() {
        let m = build_with_budget(PaperModel::Galleon, 600);
        assert_eq!(m.normals.len(), m.positions.len());
    }
}
