//! Multicast fan-out accounting.
//!
//! §3.1.2: "The data service informs the render service of any changes,
//! using network bandwidth-saving techniques such as multicasting." On a
//! shared segment one transmission reaches every subscriber; unicast
//! would cost one transmission per subscriber. This module computes both
//! so the saving is measurable.

use crate::topology::Network;
use rave_sim::SimTime;
use std::collections::BTreeSet;

/// Result of a fan-out cost computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutCost {
    /// When each receiver gets the message (parallel per segment), as the
    /// max across receivers.
    pub completion: SimTime,
    /// Wire transmissions actually performed.
    pub transmissions: u32,
    /// Transmissions unicast would have performed (= receiver count).
    pub unicast_transmissions: u32,
}

impl FanoutCost {
    /// Fraction of unicast transmissions saved.
    pub fn saving(&self) -> f64 {
        if self.unicast_transmissions == 0 {
            return 0.0;
        }
        1.0 - self.transmissions as f64 / self.unicast_transmissions as f64
    }
}

/// Cost of multicasting `bytes` from `sender` to `receivers`: one
/// transmission per distinct receiving segment (plus one per receiver on
/// the sender's own segment if bridging is needed — modelled as a single
/// segment transmission too, since 2004 multicast rode the LAN broadcast
/// domain).
pub fn multicast_cost(net: &Network, sender: &str, receivers: &[&str], bytes: u64) -> FanoutCost {
    let mut segments = BTreeSet::new();
    let mut slowest = SimTime::ZERO;
    let mut count = 0u32;
    for r in receivers {
        if *r == sender {
            continue; // local delivery is free
        }
        let seg = net.segment_of(r).unwrap_or_else(|| panic!("unknown host {r}")).to_string();
        if segments.insert(seg) {
            count += 1;
        }
        slowest = slowest.max(net.transfer_time(sender, r, bytes));
    }
    FanoutCost {
        completion: slowest,
        transmissions: count,
        unicast_transmissions: receivers.iter().filter(|r| **r != sender).count() as u32,
    }
}

/// Cost of the same fan-out done with unicast sends serialized on the
/// sender's uplink (the comparison baseline).
pub fn unicast_cost(net: &Network, sender: &str, receivers: &[&str], bytes: u64) -> SimTime {
    let mut wire_free = SimTime::ZERO;
    let mut last_arrival = SimTime::ZERO;
    for r in receivers {
        if *r == sender {
            continue;
        }
        let link = net.link_between(sender, r);
        let start = wire_free;
        let done_tx = start + link.tx_time(bytes);
        wire_free = done_tx;
        last_arrival = last_arrival.max(done_tx + link.latency);
    }
    last_arrival
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_charges_once_per_segment() {
        let net = Network::paper_testbed(1.0);
        let receivers = ["desktop", "tower", "onyx", "v880z"]; // all on "lan"
        let cost = multicast_cost(&net, "laptop", &receivers, 10_000);
        assert_eq!(cost.transmissions, 1);
        assert_eq!(cost.unicast_transmissions, 4);
        assert_eq!(cost.saving(), 0.75);
    }

    #[test]
    fn cross_segment_adds_transmissions() {
        let net = Network::paper_testbed(1.0);
        let receivers = ["desktop", "zaurus"]; // lan + wlan
        let cost = multicast_cost(&net, "laptop", &receivers, 10_000);
        assert_eq!(cost.transmissions, 2);
        // Completion bounded by the slow wireless hop.
        let wireless = net.transfer_time("laptop", "zaurus", 10_000);
        assert_eq!(cost.completion, wireless);
    }

    #[test]
    fn sender_excluded_from_receivers() {
        let net = Network::paper_testbed(1.0);
        let cost = multicast_cost(&net, "laptop", &["laptop", "desktop"], 1000);
        assert_eq!(cost.unicast_transmissions, 1);
        assert_eq!(cost.transmissions, 1);
    }

    #[test]
    fn multicast_faster_than_unicast_for_many_receivers() {
        let net = Network::paper_testbed(1.0);
        let receivers = ["desktop", "tower", "onyx", "v880z", "adrenochrome"];
        let m = multicast_cost(&net, "laptop", &receivers, 1_000_000).completion;
        let u = unicast_cost(&net, "laptop", &receivers, 1_000_000);
        assert!(u.as_secs() > m.as_secs() * 3.0, "unicast {u} vs multicast {m}");
    }

    #[test]
    fn empty_receiver_list_is_free() {
        let net = Network::paper_testbed(1.0);
        let cost = multicast_cost(&net, "laptop", &[], 1000);
        assert_eq!(cost.transmissions, 0);
        assert_eq!(cost.completion, SimTime::ZERO);
        assert_eq!(cost.saving(), 0.0);
    }
}
