//! Multicast fan-out accounting.
//!
//! §3.1.2: "The data service informs the render service of any changes,
//! using network bandwidth-saving techniques such as multicasting." On a
//! shared segment one transmission reaches every subscriber; unicast
//! would cost one transmission per subscriber. This module computes both
//! so the saving is measurable.

use crate::topology::Network;
use rave_sim::SimTime;
use std::collections::BTreeSet;

/// Result of a fan-out cost computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutCost {
    /// When each receiver gets the message (parallel per segment), as the
    /// max across receivers.
    pub completion: SimTime,
    /// Wire transmissions actually performed.
    pub transmissions: u32,
    /// Transmissions unicast would have performed (= receiver count).
    pub unicast_transmissions: u32,
    /// Receivers skipped because their host is not on the network (a
    /// subscriber raced its host's teardown); they get nothing, and a
    /// caller that must not lose them can check this is zero.
    pub skipped: u32,
}

impl FanoutCost {
    /// Fraction of unicast transmissions saved.
    pub fn saving(&self) -> f64 {
        if self.unicast_transmissions == 0 {
            return 0.0;
        }
        1.0 - self.transmissions as f64 / self.unicast_transmissions as f64
    }
}

/// Cost of multicasting `bytes` from `sender` to `receivers`: one
/// transmission per distinct receiving segment (plus one per receiver on
/// the sender's own segment if bridging is needed — modelled as a single
/// segment transmission too, since 2004 multicast rode the LAN broadcast
/// domain).
pub fn multicast_cost(net: &Network, sender: &str, receivers: &[&str], bytes: u64) -> FanoutCost {
    multicast_deliver(net, sender, receivers, bytes).cost
}

/// One multicast fan-out with per-receiver arrival times: what a data
/// service delivering one update to its matched subscribers books.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastDelivery {
    pub cost: FanoutCost,
    /// `(index into the receivers slice, arrival offset)` for every
    /// receiver whose host is known, in input order. Receivers on the
    /// sender's own host arrive at loopback transfer time (no wire
    /// transmission charged).
    pub arrivals: Vec<(usize, SimTime)>,
    /// Bytes the multicast fan-out puts on the wire (one copy per
    /// receiving segment).
    pub wire_bytes: u64,
    /// Bytes unicast would have put on the wire (one copy per receiver).
    pub unicast_wire_bytes: u64,
}

/// Deliver `bytes` from `sender` to `receivers` with multicast fan-out:
/// one transmission per distinct receiving segment, every receiver on a
/// segment served by the same copy, arrival at its own transfer time.
/// Unknown receiver hosts are skipped and counted (not panicked on —
/// `FanoutCost::skipped`); segment dedup borrows the topology's segment
/// names instead of allocating one `String` per receiver.
pub fn multicast_deliver(
    net: &Network,
    sender: &str,
    receivers: &[&str],
    bytes: u64,
) -> MulticastDelivery {
    let mut segments: BTreeSet<&str> = BTreeSet::new();
    let mut slowest = SimTime::ZERO;
    let mut transmissions = 0u32;
    let mut unicast = 0u32;
    let mut skipped = 0u32;
    let mut arrivals = Vec::with_capacity(receivers.len());
    for (i, r) in receivers.iter().enumerate() {
        if *r == sender {
            // Local delivery: loopback time, no wire transmission.
            arrivals.push((i, net.transfer_time(sender, r, bytes)));
            continue;
        }
        let Some(seg) = net.segment_of(r) else {
            skipped += 1;
            continue;
        };
        unicast += 1;
        if segments.insert(seg) {
            transmissions += 1;
        }
        let at = net.transfer_time(sender, r, bytes);
        slowest = slowest.max(at);
        arrivals.push((i, at));
    }
    MulticastDelivery {
        cost: FanoutCost {
            completion: slowest,
            transmissions,
            unicast_transmissions: unicast,
            skipped,
        },
        arrivals,
        wire_bytes: transmissions as u64 * bytes,
        unicast_wire_bytes: unicast as u64 * bytes,
    }
}

/// Cost of the same fan-out done with unicast sends serialized on the
/// sender's uplink (the comparison baseline).
pub fn unicast_cost(net: &Network, sender: &str, receivers: &[&str], bytes: u64) -> SimTime {
    let mut wire_free = SimTime::ZERO;
    let mut last_arrival = SimTime::ZERO;
    for r in receivers {
        if *r == sender {
            continue;
        }
        let link = net.link_between(sender, r);
        let start = wire_free;
        let done_tx = start + link.tx_time(bytes);
        wire_free = done_tx;
        last_arrival = last_arrival.max(done_tx + link.latency);
    }
    last_arrival
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_charges_once_per_segment() {
        let net = Network::paper_testbed(1.0);
        let receivers = ["desktop", "tower", "onyx", "v880z"]; // all on "lan"
        let cost = multicast_cost(&net, "laptop", &receivers, 10_000);
        assert_eq!(cost.transmissions, 1);
        assert_eq!(cost.unicast_transmissions, 4);
        assert_eq!(cost.saving(), 0.75);
    }

    #[test]
    fn cross_segment_adds_transmissions() {
        let net = Network::paper_testbed(1.0);
        let receivers = ["desktop", "zaurus"]; // lan + wlan
        let cost = multicast_cost(&net, "laptop", &receivers, 10_000);
        assert_eq!(cost.transmissions, 2);
        // Completion bounded by the slow wireless hop.
        let wireless = net.transfer_time("laptop", "zaurus", 10_000);
        assert_eq!(cost.completion, wireless);
    }

    #[test]
    fn sender_excluded_from_receivers() {
        let net = Network::paper_testbed(1.0);
        let cost = multicast_cost(&net, "laptop", &["laptop", "desktop"], 1000);
        assert_eq!(cost.unicast_transmissions, 1);
        assert_eq!(cost.transmissions, 1);
    }

    #[test]
    fn multicast_faster_than_unicast_for_many_receivers() {
        let net = Network::paper_testbed(1.0);
        let receivers = ["desktop", "tower", "onyx", "v880z", "adrenochrome"];
        let m = multicast_cost(&net, "laptop", &receivers, 1_000_000).completion;
        let u = unicast_cost(&net, "laptop", &receivers, 1_000_000);
        assert!(u.as_secs() > m.as_secs() * 3.0, "unicast {u} vs multicast {m}");
    }

    #[test]
    fn unknown_receiver_is_skipped_and_counted() {
        let net = Network::paper_testbed(1.0);
        let d = multicast_deliver(&net, "laptop", &["desktop", "ghost", "tower"], 1000);
        assert_eq!(d.cost.skipped, 1);
        assert_eq!(d.cost.unicast_transmissions, 2);
        assert_eq!(d.cost.transmissions, 1); // desktop + tower share the lan
                                             // Arrivals only for known hosts, input order preserved.
        assert_eq!(d.arrivals.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(d.wire_bytes, 1000);
        assert_eq!(d.unicast_wire_bytes, 2000);
    }

    #[test]
    fn local_receivers_ride_loopback_off_the_wire() {
        let net = Network::paper_testbed(1.0);
        let d = multicast_deliver(&net, "laptop", &["laptop", "desktop"], 1000);
        assert_eq!(d.cost.transmissions, 1, "loopback is not a wire transmission");
        assert_eq!(d.arrivals[0].1, net.transfer_time("laptop", "laptop", 1000));
        assert!(d.arrivals[1].1 > d.arrivals[0].1, "lan hop slower than loopback");
    }

    #[test]
    fn empty_receiver_list_is_free() {
        let net = Network::paper_testbed(1.0);
        let cost = multicast_cost(&net, "laptop", &[], 1000);
        assert_eq!(cost.transmissions, 0);
        assert_eq!(cost.completion, SimTime::ZERO);
        assert_eq!(cost.saving(), 0.0);
    }
}
