//! The binary socket protocol.
//!
//! §4.3: "we only use Grid/Web services for initial service discovery ...
//! We then back off from SOAP and use direct socket communication to send
//! binary information." These are those binary frames: a fixed header
//! (magic, kind, length) followed by an opaque payload. Streaming decode
//! supports partial buffers, because simulated sockets deliver bytes in
//! link-sized chunks.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic: `0xCADF` — CArdiff Data Format, in the spirit of the
/// original.
pub const FRAME_MAGIC: u16 = 0xCADF;

/// Frame type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Subscription / control handshake.
    Control = 0,
    /// A scene update (binary-serialized `StampedUpdate`).
    SceneUpdate = 1,
    /// A full rendered framebuffer (RGB bytes) for a thin client.
    FrameBuffer = 2,
    /// A rendered tile (tile rect + RGB bytes).
    Tile = 3,
    /// A color+depth buffer for depth compositing.
    DepthBuffer = 4,
    /// Scene bootstrap payload (marshalled tree).
    Bootstrap = 5,
    /// Camera/interaction event from a client.
    Interaction = 6,
}

impl FrameKind {
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Control,
            1 => FrameKind::SceneUpdate,
            2 => FrameKind::FrameBuffer,
            3 => FrameKind::Tile,
            4 => FrameKind::DepthBuffer,
            5 => FrameKind::Bootstrap,
            6 => FrameKind::Interaction,
            _ => return None,
        })
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: Bytes,
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    BadMagic(u16),
    UnknownKind(u8),
    /// Declared length exceeds the sanity cap (corrupt stream).
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds cap"),
        }
    }
}

impl std::error::Error for FrameError {}

const HEADER_LEN: usize = 2 + 1 + 4;
/// Largest legal payload: a 2048×2048 color+depth buffer with headroom.
const MAX_PAYLOAD: u32 = 64 << 20;

impl Frame {
    pub fn new(kind: FrameKind, payload: impl Into<Bytes>) -> Self {
        Self { kind, payload: payload.into() }
    }

    /// Total encoded size (header + payload) — the byte count charged to
    /// the simulated link.
    pub fn wire_size(&self) -> u64 {
        (HEADER_LEN + self.payload.len()) as u64
    }

    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_u16(FRAME_MAGIC);
        buf.put_u8(self.kind as u8);
        buf.put_u32(self.payload.len() as u32);
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }

    /// Try to decode one frame from the front of `buf`. Returns:
    /// - `Ok(Some(frame))` and consumes its bytes,
    /// - `Ok(None)` if more bytes are needed (partial frame),
    /// - `Err(..)` on a corrupt stream (caller should drop the
    ///   connection, as a TCP reader would).
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>, FrameError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let kind_raw = buf[2];
        let len = u32::from_be_bytes([buf[3], buf[4], buf[5], buf[6]]);
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized(len));
        }
        if buf.len() < HEADER_LEN + len as usize {
            return Ok(None);
        }
        let kind = FrameKind::from_u8(kind_raw).ok_or(FrameError::UnknownKind(kind_raw))?;
        buf.advance(HEADER_LEN);
        let payload = buf.split_to(len as usize).freeze();
        Ok(Some(Frame { kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let f = Frame::new(FrameKind::SceneUpdate, &b"hello"[..]);
        let mut buf = BytesMut::from(&f.encode()[..]);
        let decoded = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded, f);
        assert!(buf.is_empty(), "all bytes consumed");
    }

    #[test]
    fn partial_header_needs_more() {
        let f = Frame::new(FrameKind::Tile, &b"abc"[..]);
        let enc = f.encode();
        let mut buf = BytesMut::from(&enc[..3]);
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_payload_needs_more() {
        let f = Frame::new(FrameKind::FrameBuffer, vec![0u8; 100]);
        let enc = f.encode();
        let mut buf = BytesMut::from(&enc[..50]);
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
        // Feed the rest: decodes.
        buf.extend_from_slice(&enc[50..]);
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap().payload.len(), 100);
    }

    #[test]
    fn stream_of_frames_decodes_in_order() {
        let frames = vec![
            Frame::new(FrameKind::Control, &b"sub"[..]),
            Frame::new(FrameKind::SceneUpdate, &b"u1"[..]),
            Frame::new(FrameKind::FrameBuffer, vec![7u8; 300]),
        ];
        let mut buf = BytesMut::new();
        for f in &frames {
            buf.extend_from_slice(&f.encode());
        }
        let mut out = Vec::new();
        while let Some(f) = Frame::decode(&mut buf).unwrap() {
            out.push(f);
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut buf = BytesMut::from(&[0xDEu8, 0xAD, 1, 0, 0, 0, 0][..]);
        assert!(matches!(Frame::decode(&mut buf), Err(FrameError::BadMagic(0xDEAD))));
    }

    #[test]
    fn unknown_kind_rejected() {
        let f = Frame::new(FrameKind::Control, &b""[..]);
        let mut enc = BytesMut::from(&f.encode()[..]);
        enc[2] = 99;
        assert!(matches!(Frame::decode(&mut enc), Err(FrameError::UnknownKind(99))));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(FRAME_MAGIC);
        buf.put_u8(0);
        buf.put_u32(u32::MAX);
        assert!(matches!(Frame::decode(&mut buf), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn wire_size_counts_header() {
        let f = Frame::new(FrameKind::Control, vec![0u8; 10]);
        assert_eq!(f.wire_size(), 17);
        assert_eq!(f.encode().len() as u64, f.wire_size());
    }
}
