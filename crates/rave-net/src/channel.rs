//! Serializing send queues.
//!
//! A link can only carry one message at a time; a sender streaming frames
//! faster than the wire drains them queues behind itself. This is what
//! turns the wireless link's 580 kB/s into the PDA's ~5 fps ceiling: each
//! frame's *arrival* time is `max(now, link_free) + tx + latency`.

use crate::link::LinkSpec;
use rave_sim::{Occupancy, SimTime};

/// A one-way serializing channel over a link.
#[derive(Debug, Clone)]
pub struct Channel {
    link: LinkSpec,
    /// The wire's occupancy timeline: one message at a time, queued
    /// back-to-back. Also the book of record for wire utilization.
    wire: Occupancy,
    /// Total *wire* bytes accepted — what actually crossed the link,
    /// after any compression.
    bytes_sent: u64,
    /// Total pre-compression payload bytes the senders handed over.
    logical_bytes_sent: u64,
    messages_sent: u64,
}

impl Channel {
    pub fn new(link: LinkSpec) -> Self {
        Self {
            link,
            wire: Occupancy::new(),
            bytes_sent: 0,
            logical_bytes_sent: 0,
            messages_sent: 0,
        }
    }

    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// Wire bytes carried (encoded size for compressed streams).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Logical payload bytes carried (pre-compression size).
    pub fn logical_bytes_sent(&self) -> u64 {
        self.logical_bytes_sent
    }

    /// Achieved `wire / logical` ratio over the channel's lifetime
    /// (1.0 when nothing was compressed or nothing was sent).
    pub fn compression_ratio(&self) -> f64 {
        if self.logical_bytes_sent == 0 {
            1.0
        } else {
            self.bytes_sent as f64 / self.logical_bytes_sent as f64
        }
    }

    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Time the wire becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.wire.busy_until()
    }

    /// The wire's occupancy timeline (busy seconds, utilization).
    pub fn occupancy(&self) -> &Occupancy {
        &self.wire
    }

    /// Queue a message of `bytes` at time `now`; returns its arrival time
    /// at the receiver.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.send_encoded(now, bytes, bytes)
    }

    /// Queue a *compressed* message: `wire_bytes` occupy the link and
    /// drive timing; `logical_bytes` (the pre-encode payload size) only
    /// feed the accounting, so `observed_goodput` reports what actually
    /// crossed the wire while [`Channel::compression_ratio`] reports the
    /// saving.
    pub fn send_encoded(&mut self, now: SimTime, wire_bytes: u64, logical_bytes: u64) -> SimTime {
        let (_, done_tx) = self.wire.acquire(now, self.link.tx_time(wire_bytes).as_secs());
        self.bytes_sent += wire_bytes;
        self.logical_bytes_sent += logical_bytes;
        self.messages_sent += 1;
        done_tx + self.link.latency
    }

    /// Queueing delay a message sent at `now` would experience before its
    /// bits start flowing.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.wire.wait(now)
    }

    /// Mean goodput since t=0 if the channel has been saturated.
    pub fn observed_goodput(&self, now: SimTime) -> f64 {
        if now <= SimTime::ZERO {
            0.0
        } else {
            self.bytes_sent as f64 / now.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_delivers_after_tx_plus_latency() {
        let mut c = Channel::new(LinkSpec::ethernet_100mb());
        let arrival = c.send(SimTime::from_secs(1.0), 1_000_000);
        let expect = SimTime::from_secs(1.0) + c.link().transfer_time(1_000_000);
        assert_eq!(arrival, expect);
    }

    #[test]
    fn back_to_back_sends_queue() {
        let mut c = Channel::new(LinkSpec::wireless_11mb(1.0));
        let a1 = c.send(SimTime::ZERO, 120_000);
        let a2 = c.send(SimTime::ZERO, 120_000);
        let a3 = c.send(SimTime::ZERO, 120_000);
        assert!(a2 > a1 && a3 > a2);
        // Spacing equals the tx time (pipeline steady state).
        let gap12 = (a2 - a1).as_secs();
        let tx = c.link().tx_time(120_000).as_secs();
        assert!((gap12 - tx).abs() < 1e-9);
        assert_eq!(c.messages_sent(), 3);
    }

    #[test]
    fn wireless_stream_caps_near_five_fps() {
        // Stream 20 frames of 120 kB: the paper's 5 fps ceiling.
        let mut c = Channel::new(LinkSpec::wireless_11mb(1.0));
        let mut last = SimTime::ZERO;
        for _ in 0..20 {
            last = c.send(SimTime::ZERO, 120_000);
        }
        let fps = 20.0 / last.as_secs();
        assert!((4.0..6.0).contains(&fps), "streamed fps {fps}");
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut c = Channel::new(LinkSpec::ethernet_100mb());
        c.send(SimTime::ZERO, 1_000_000);
        // Long idle gap: next send sees an empty queue.
        let late = SimTime::from_secs(10.0);
        assert_eq!(c.backlog(late), SimTime::ZERO);
        let arrival = c.send(late, 1000);
        assert_eq!(arrival, late + c.link().transfer_time(1000));
    }

    #[test]
    fn backlog_reflects_queue() {
        let mut c = Channel::new(LinkSpec::wireless_11mb(1.0));
        c.send(SimTime::ZERO, 1_200_000);
        assert!(c.backlog(SimTime::ZERO).as_secs() > 1.0);
    }

    #[test]
    fn encoded_sends_charge_wire_bytes_only() {
        let mut plain = Channel::new(LinkSpec::wireless_11mb(1.0));
        let mut compressed = Channel::new(LinkSpec::wireless_11mb(1.0));
        let a_plain = plain.send(SimTime::ZERO, 120_000);
        // Same logical frame at 4:1 compression: arrives much earlier...
        let a_comp = compressed.send_encoded(SimTime::ZERO, 30_000, 120_000);
        assert!(a_comp < a_plain);
        // ...and the books separate wire from logical traffic.
        assert_eq!(compressed.bytes_sent(), 30_000);
        assert_eq!(compressed.logical_bytes_sent(), 120_000);
        assert!((compressed.compression_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(plain.bytes_sent(), plain.logical_bytes_sent());
        assert_eq!(plain.compression_ratio(), 1.0);
        // Goodput measures the wire, not the logical stream.
        let g = compressed.observed_goodput(a_comp);
        assert!(g < 600_000.0, "goodput reflects wire bytes: {g}");
    }

    #[test]
    fn occupancy_books_tx_time_only() {
        let mut c = Channel::new(LinkSpec::wireless_11mb(1.0));
        let a1 = c.send(SimTime::ZERO, 120_000);
        let tx = c.link().tx_time(120_000).as_secs();
        assert!((c.occupancy().busy_secs() - tx).abs() < 1e-12);
        // Latency is propagation, not wire occupancy.
        assert_eq!(c.busy_until() + c.link().latency, a1);
        // Two back-to-back frames: the wire is busy the whole span.
        c.send(SimTime::ZERO, 120_000);
        let u = c.occupancy().utilization(c.busy_until());
        assert!((u - 1.0).abs() < 1e-9, "saturated wire utilization {u}");
        assert_eq!(c.occupancy().jobs(), 2);
    }

    #[test]
    fn observed_goodput_sane() {
        let mut c = Channel::new(LinkSpec::wireless_11mb(1.0));
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t = c.send(t, 120_000);
        }
        let goodput = c.observed_goodput(t);
        assert!((400_000.0..700_000.0).contains(&goodput), "goodput {goodput}");
    }
}
