//! Point-to-point link models.

use rave_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A transmission medium between two hosts (or segments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    pub name: String,
    /// Nominal signalling rate, bits/s (what the datasheet says).
    pub bandwidth_bps: f64,
    /// One-way propagation + stack latency.
    pub latency: SimTime,
    /// Fixed cost per message (framing, syscalls, interrupts).
    pub per_message: SimTime,
    /// Fraction of nominal bandwidth actually achievable as goodput
    /// (MAC/protocol overhead; ~0.42 for 802.11b, ~0.9 for ethernet).
    pub efficiency: f64,
}

impl LinkSpec {
    /// 100 Mbit switched ethernet — the paper's LAN.
    pub fn ethernet_100mb() -> Self {
        Self {
            name: "ethernet-100".into(),
            bandwidth_bps: 100.0e6,
            latency: SimTime::from_micros(200.0),
            per_message: SimTime::from_micros(120.0),
            efficiency: 0.90,
        }
    }

    /// Gigabit ethernet (for the "larger datasets" future-work sweeps).
    pub fn ethernet_1gb() -> Self {
        Self {
            name: "ethernet-1000".into(),
            bandwidth_bps: 1.0e9,
            latency: SimTime::from_micros(80.0),
            per_message: SimTime::from_micros(50.0),
            efficiency: 0.92,
        }
    }

    /// 11 Mbit/s 802.11b wireless at the given `signal_quality ∈ (0, 1]`.
    /// Full quality yields ≈580 kB/s goodput — the ceiling the paper
    /// measured from its 5 fps of 120 kB frames (§5.1). Reduced quality
    /// scales goodput down, modelling "when the user moves away from an
    /// access point, or when walls, etc. attenuate the signal".
    pub fn wireless_11mb(signal_quality: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&signal_quality) && signal_quality > 0.0,
            "signal quality must be in (0, 1]"
        );
        Self {
            name: "wireless-11".into(),
            bandwidth_bps: 11.0e6,
            latency: SimTime::from_millis(2.5),
            per_message: SimTime::from_millis(1.0),
            efficiency: 0.435 * signal_quality,
        }
    }

    /// Same-host communication.
    pub fn loopback() -> Self {
        Self {
            name: "loopback".into(),
            bandwidth_bps: 10.0e9,
            latency: SimTime::from_micros(10.0),
            per_message: SimTime::from_micros(5.0),
            efficiency: 1.0,
        }
    }

    /// Achievable goodput, bytes/s.
    pub fn goodput_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bps * self.efficiency / 8.0
    }

    /// Serialization (wire occupancy) time for `bytes`, excluding
    /// propagation latency.
    pub fn tx_time(&self, bytes: u64) -> SimTime {
        self.per_message + SimTime::from_secs(bytes as f64 / self.goodput_bytes_per_sec())
    }

    /// End-to-end one-way transfer time for a single message of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.tx_time(bytes) + self.latency
    }

    /// Sustainable message rate (messages/s) for back-to-back messages of
    /// `bytes` — the frame-rate ceiling a streaming sender hits.
    pub fn sustained_rate(&self, bytes: u64) -> f64 {
        1.0 / self.tx_time(bytes).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wireless_matches_paper_image_receipt() {
        // Table 2: 120 kB uncompressed 200x200 frame takes ≈0.2 s.
        let w = LinkSpec::wireless_11mb(1.0);
        let t = w.transfer_time(120_000).as_secs();
        assert!((t - 0.20).abs() < 0.02, "wireless 120kB transfer: {t}s");
    }

    #[test]
    fn wireless_goodput_near_580kbs() {
        let w = LinkSpec::wireless_11mb(1.0);
        let g = w.goodput_bytes_per_sec();
        assert!((g - 580_000.0).abs() < 40_000.0, "goodput {g}");
    }

    #[test]
    fn wireless_frame_rate_ceilings_match_paper() {
        // §5.1: ≈5 fps max at 200x200, ≈0.6 fps at 640x480.
        let w = LinkSpec::wireless_11mb(1.0);
        let fps_small = w.sustained_rate(120_000);
        let fps_big = w.sustained_rate(921_600);
        assert!((4.0..6.0).contains(&fps_small), "200x200 ceiling {fps_small}");
        assert!((0.5..0.75).contains(&fps_big), "640x480 ceiling {fps_big}");
    }

    #[test]
    fn signal_quality_scales_bandwidth() {
        let full = LinkSpec::wireless_11mb(1.0);
        let weak = LinkSpec::wireless_11mb(0.25);
        assert!(
            weak.transfer_time(120_000).as_secs() > full.transfer_time(120_000).as_secs() * 3.0
        );
    }

    #[test]
    #[should_panic]
    fn zero_signal_rejected() {
        LinkSpec::wireless_11mb(0.0);
    }

    #[test]
    fn ethernet_much_faster_than_wireless() {
        let e = LinkSpec::ethernet_100mb();
        let w = LinkSpec::wireless_11mb(1.0);
        assert!(e.transfer_time(120_000).as_secs() * 10.0 < w.transfer_time(120_000).as_secs());
        // 120kB over 100Mb ethernet ≈ 11ms.
        let t = e.transfer_time(120_000).as_secs();
        assert!((0.008..0.015).contains(&t), "ethernet 120kB: {t}");
    }

    #[test]
    fn tiny_messages_dominated_by_fixed_costs() {
        let e = LinkSpec::ethernet_100mb();
        let t1 = e.transfer_time(1).as_secs();
        let t100 = e.transfer_time(100).as_secs();
        assert!((t100 - t1) / t1 < 0.05, "fixed costs dominate small messages");
    }

    #[test]
    fn loopback_is_cheapest() {
        let l = LinkSpec::loopback();
        assert!(l.transfer_time(1_000_000).as_secs() < 0.001);
    }
}
