//! Named hosts, segments and the links between them.

use crate::link::LinkSpec;
use rave_sim::SimTime;
use std::collections::BTreeMap;

/// A network of hosts grouped into segments (LANs). Hosts on the same
/// segment talk over the segment's intra-link; hosts on different segments
/// use the link registered for that segment pair (or the default).
#[derive(Debug, Clone)]
pub struct Network {
    hosts: BTreeMap<String, String>,             // host -> segment
    intra: BTreeMap<String, LinkSpec>,           // segment -> link within it
    inter: BTreeMap<(String, String), LinkSpec>, // sorted pair -> link
    default_inter: LinkSpec,
    loopback: LinkSpec,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    pub fn new() -> Self {
        Self {
            hosts: BTreeMap::new(),
            intra: BTreeMap::new(),
            inter: BTreeMap::new(),
            default_inter: LinkSpec::ethernet_100mb(),
            loopback: LinkSpec::loopback(),
        }
    }

    /// The paper's testbed topology: all servers on a 100 Mbit LAN, the
    /// PDA on a wireless segment bridged to it.
    pub fn paper_testbed(signal_quality: f64) -> Self {
        let mut n = Self::new();
        n.add_segment("lan", LinkSpec::ethernet_100mb());
        n.add_segment("wlan", LinkSpec::wireless_11mb(signal_quality));
        n.link_segments("lan", "wlan", LinkSpec::wireless_11mb(signal_quality));
        for host in ["onyx", "v880z", "laptop", "desktop", "tower", "adrenochrome"] {
            n.add_host(host, "lan");
        }
        n.add_host("zaurus", "wlan");
        n
    }

    pub fn add_segment(&mut self, segment: &str, intra_link: LinkSpec) {
        self.intra.insert(segment.to_string(), intra_link);
    }

    pub fn add_host(&mut self, host: &str, segment: &str) {
        assert!(
            self.intra.contains_key(segment),
            "segment {segment} must be added before hosts join it"
        );
        self.hosts.insert(host.to_string(), segment.to_string());
    }

    pub fn link_segments(&mut self, a: &str, b: &str, link: LinkSpec) {
        let key = Self::pair_key(a, b);
        self.inter.insert(key, link);
    }

    pub fn set_default_inter_link(&mut self, link: LinkSpec) {
        self.default_inter = link;
    }

    fn pair_key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    pub fn segment_of(&self, host: &str) -> Option<&str> {
        self.hosts.get(host).map(|s| s.as_str())
    }

    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.hosts.keys().map(|s| s.as_str())
    }

    /// The link used between two hosts. Panics on unknown hosts — a typo'd
    /// host name is a harness bug, not a runtime condition.
    pub fn link_between(&self, a: &str, b: &str) -> &LinkSpec {
        if a == b {
            return &self.loopback;
        }
        let sa = self.hosts.get(a).unwrap_or_else(|| panic!("unknown host {a}"));
        let sb = self.hosts.get(b).unwrap_or_else(|| panic!("unknown host {b}"));
        if sa == sb {
            return &self.intra[sa];
        }
        self.inter.get(&Self::pair_key(sa, sb)).unwrap_or(&self.default_inter)
    }

    /// One-way transfer time of a single `bytes` message from `a` to `b`.
    pub fn transfer_time(&self, a: &str, b: &str, bytes: u64) -> SimTime {
        self.link_between(a, b).transfer_time(bytes)
    }

    /// Round-trip: request of `req_bytes` then reply of `resp_bytes`.
    pub fn round_trip(&self, a: &str, b: &str, req_bytes: u64, resp_bytes: u64) -> SimTime {
        self.transfer_time(a, b, req_bytes) + self.transfer_time(b, a, resp_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_all_hosts() {
        let n = Network::paper_testbed(1.0);
        let hosts: Vec<&str> = n.hosts().collect();
        assert!(hosts.contains(&"zaurus"));
        assert!(hosts.contains(&"laptop"));
        assert_eq!(n.segment_of("zaurus"), Some("wlan"));
        assert_eq!(n.segment_of("laptop"), Some("lan"));
    }

    #[test]
    fn same_host_uses_loopback() {
        let n = Network::paper_testbed(1.0);
        let t = n.transfer_time("laptop", "laptop", 1_000_000);
        assert!(t.as_secs() < 0.001);
    }

    #[test]
    fn lan_hosts_use_ethernet() {
        let n = Network::paper_testbed(1.0);
        assert_eq!(n.link_between("laptop", "desktop").name, "ethernet-100");
    }

    #[test]
    fn pda_uses_wireless_from_lan() {
        let n = Network::paper_testbed(1.0);
        assert_eq!(n.link_between("laptop", "zaurus").name, "wireless-11");
        // Symmetric.
        assert_eq!(n.link_between("zaurus", "laptop").name, "wireless-11");
        let t = n.transfer_time("laptop", "zaurus", 120_000).as_secs();
        assert!((t - 0.2).abs() < 0.02, "PDA frame transfer {t}");
    }

    #[test]
    #[should_panic]
    fn unknown_host_panics() {
        Network::paper_testbed(1.0).link_between("laptop", "nonexistent");
    }

    #[test]
    fn unlinked_segments_fall_back_to_default() {
        let mut n = Network::new();
        n.add_segment("a", LinkSpec::ethernet_100mb());
        n.add_segment("b", LinkSpec::ethernet_100mb());
        n.add_host("h1", "a");
        n.add_host("h2", "b");
        assert_eq!(n.link_between("h1", "h2").name, "ethernet-100");
        n.set_default_inter_link(LinkSpec::ethernet_1gb());
        assert_eq!(n.link_between("h1", "h2").name, "ethernet-1000");
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let n = Network::paper_testbed(1.0);
        let rt = n.round_trip("zaurus", "laptop", 100, 120_000);
        let one = n.transfer_time("zaurus", "laptop", 100);
        let two = n.transfer_time("laptop", "zaurus", 120_000);
        assert_eq!(rt, one + two);
    }

    #[test]
    #[should_panic]
    fn host_requires_existing_segment() {
        let mut n = Network::new();
        n.add_host("h", "ghost-segment");
    }
}
