//! Simulated heterogeneous networking.
//!
//! The paper's testbed spans 100 Mbit ethernet (service ↔ service) and an
//! 11 Mbit/s 802.11b wireless hop to the PDA whose bandwidth "is
//! proportional to signal quality" (§5.1). This crate models:
//!
//! - [`link::LinkSpec`] — bandwidth/latency/efficiency of one medium,
//!   calibrated so a 120 kB frame crosses the wireless link in ≈0.2 s
//!   (Table 2's image-receipt column) and ≈5 fps of 200×200 frames
//!   saturate it at ≈580 kB/s (§5.1);
//! - [`topology::Network`] — named hosts on named segments with per-pair
//!   links, answering "how long does `n` bytes take from A to B";
//! - [`channel::Channel`] — a serializing send queue over a link
//!   (back-to-back frames queue behind each other, which is what turns
//!   link bandwidth into the PDA's frame-rate ceiling);
//! - [`multicast`] — data-service fan-out that charges each network
//!   segment once, "using network bandwidth-saving techniques such as
//!   multicasting" (§3.1.2);
//! - [`frame`] — the binary socket protocol ("we then back off from SOAP
//!   and use direct socket communication to send binary information",
//!   §4.3).

pub mod channel;
pub mod frame;
pub mod link;
pub mod multicast;
pub mod topology;

pub use channel::Channel;
pub use frame::{Frame, FrameError, FrameKind};
pub use link::LinkSpec;
pub use multicast::{
    multicast_cost, multicast_deliver, unicast_cost, FanoutCost, MulticastDelivery,
};
pub use topology::Network;
