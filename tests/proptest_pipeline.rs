//! Property tests on the pipelined frame path: whatever the pipeline
//! depth, network quality, transport mode, or scene size, the stream must
//! display frames in order, display exactly the requested count, never go
//! slower than the serial baseline, and ship the identical byte stream.

use proptest::prelude::*;
use rave::core::config::CompressionMode;
use rave::core::thin_client::{connect, stream_frames};
use rave::core::trace::TraceKind;
use rave::core::world::{RaveSim, RaveWorld};
use rave::core::{ClientId, RaveConfig};
use rave::math::Vec3;
use rave::net::Network;
use rave::scene::{MeshData, NodeKind};
use rave::sim::Simulation;
use std::sync::Arc;

fn session(polys: usize, mode: CompressionMode, depth: usize, quality: f64) -> (RaveSim, ClientId) {
    let mut config = RaveConfig::default();
    config.frame_compression = mode;
    config.pipeline_depth = depth;
    let mut sim = Simulation::new(RaveWorld::new(Network::paper_testbed(quality), config, 7));
    let rs = sim.world.spawn_render_service("laptop");
    let mesh = MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; polys],
        texture_bytes: 0,
    };
    let scene = &mut sim.world.render_mut(rs).scene;
    let root = scene.root();
    scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let cl = sim.world.spawn_thin_client("zaurus");
    connect(&mut sim, cl, rs);
    (sim, cl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Displays arrive in frame order (nondecreasing trace times), every
    /// requested frame displays, and per-stage busy books stay within the
    /// run's span.
    #[test]
    fn displays_ordered_and_complete(
        depth in 1usize..6,
        frames in 1u64..11,
        polys_i in 0usize..3,
        adaptive in any::<bool>(),
        quality_i in 0usize..3,
    ) {
        let polys = [10_000usize, 300_000, 830_000][polys_i];
        let quality = [0.5f64, 0.8, 1.0][quality_i];
        let mode = if adaptive { CompressionMode::Adaptive } else { CompressionMode::Raw };
        let (mut sim, cl) = session(polys, mode, depth, quality);
        stream_frames(&mut sim, cl, frames);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        prop_assert_eq!(stats.frames, frames);
        let displays: Vec<_> =
            sim.world.trace.of_kind(TraceKind::FrameDelivered).map(|e| e.at).collect();
        prop_assert_eq!(displays.len() as u64, frames);
        for w in displays.windows(2) {
            prop_assert!(w[0] <= w[1], "display order monotone: {:?} then {:?}", w[0], w[1]);
        }
        // Stall records only ever appear with real overlap.
        if depth == 1 {
            prop_assert_eq!(sim.world.trace.count(TraceKind::PipelineStall), 0);
            prop_assert_eq!(stats.stalled_frames, 0);
        }
        // No stage can be busy longer than the whole run.
        let span = stats.last_display.unwrap().as_secs();
        for busy in [stats.render_busy, stats.encode_busy, stats.wire_busy, stats.client_busy] {
            prop_assert!(busy <= span + 1e-9, "stage busy {busy} inside span {span}");
        }
        let b = stats.bound_by;
        prop_assert_eq!(b.render + b.wire + b.client, frames);
    }

    /// Any depth ships the exact bytes the serial run ships (same codec
    /// decisions, same encoded sizes), and never finishes later.
    #[test]
    fn any_depth_matches_serial_bytes(
        depth in 2usize..6,
        frames in 2u64..11,
        polys_i in 0usize..2,
        adaptive in any::<bool>(),
    ) {
        let polys = [10_000usize, 830_000][polys_i];
        let mode = if adaptive { CompressionMode::Adaptive } else { CompressionMode::Raw };
        let (mut serial, cl_s) = session(polys, mode, 1, 1.0);
        stream_frames(&mut serial, cl_s, frames);
        serial.run();
        let (mut piped, cl_p) = session(polys, mode, depth, 1.0);
        stream_frames(&mut piped, cl_p, frames);
        piped.run();
        let a = &piped.world.client(cl_p).stats;
        let b = &serial.world.client(cl_s).stats;
        prop_assert_eq!(a.encoded_bytes, b.encoded_bytes, "wire bytes depth-invariant");
        prop_assert_eq!(a.logical_bytes, b.logical_bytes);
        prop_assert!(
            a.last_display.unwrap() <= b.last_display.unwrap(),
            "overlap never slower: {:?} vs {:?}", a.last_display, b.last_display
        );
    }
}
