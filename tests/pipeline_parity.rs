//! Parity pin for the pipelined frame-path refactor: at
//! `pipeline_depth = 1` the staged pipeline must reproduce the
//! pre-refactor strictly-serial frame cycle *bit-identically* — the same
//! FrameStats (every Table-2 column, every byte counter), the same trace
//! stream byte-for-byte, and the same channel accounting. The reference
//! implementation below is the old `thin_client::frame_cycle` embedded
//! verbatim (modulo paths), still driven through the same public
//! transport/cost APIs.

use rave::compress::adaptive::EndpointSpeed;
use rave::core::config::CompressionMode;
use rave::core::frame_stream;
use rave::core::thin_client::{connect, stream_frames, ImportMode};
use rave::core::trace::TraceKind;
use rave::core::world::{RaveSim, RaveWorld};
use rave::core::{ClientId, RaveConfig, RenderServiceId};
use rave::math::{Vec3, Viewport};
use rave::scene::{MeshData, NodeKind};
use rave::sim::{SimTime, Simulation};
use std::sync::Arc;

/// The pre-refactor serial frame cycle, kept as the parity reference:
/// one closed loop per frame — request, render, transfer, import,
/// display — with the next cycle issued from inside the display event.
fn reference_stream(sim: &mut RaveSim, client_id: ClientId, frames: u64) {
    if frames == 0 {
        return;
    }
    reference_cycle(sim, client_id, frames);
}

fn reference_cycle(sim: &mut RaveSim, client_id: ClientId, remaining: u64) {
    let t0 = sim.now();
    let Some(rs_id) = sim.world.client(client_id).render_service else { return };
    let client_host = sim.world.client(client_id).host.clone();
    let rs_host = sim.world.render(rs_id).host.clone();

    // 1. Interaction/camera request (small control message).
    let t_request_arrives = sim.world.send_bytes(t0, &client_host, &rs_host, 64);

    // 2. Off-screen render at the service.
    let render_cost = sim
        .world
        .render(rs_id)
        .offscreen_render_cost(client_id)
        .expect("thin client session must be off-screen capable");
    let t_rendered = t_request_arrives + SimTime::from_secs(render_cost.total());

    // 3. Image transfer back: uncompressed 24 bpp or the adaptive
    // compressed stream, per config.
    let frame_bytes = {
        let c = sim.world.client(client_id);
        c.viewport.pixel_count() as u64 * 3
    };
    let (t_image_arrives, decode_secs, encoded_bytes) = match sim.world.config.frame_compression {
        CompressionMode::Raw => {
            let t = sim.world.send_bytes(t_rendered, &rs_host, &client_host, frame_bytes);
            (t, 0.0, frame_bytes)
        }
        CompressionMode::Adaptive => {
            let (vp, seq) = {
                let c = sim.world.client(client_id);
                (c.viewport, c.stats.frames)
            };
            let rgb = if sim.world.config.produce_images {
                sim.world
                    .render_mut(rs_id)
                    .rasterize(client_id)
                    .map(|fb| fb.to_rgb_bytes())
                    .unwrap_or_else(|| frame_stream::synthesize_frame(vp.width, vp.height, seq))
            } else {
                frame_stream::synthesize_frame(vp.width, vp.height, seq)
            };
            let allow_lossy = sim.world.config.allow_lossy_frames;
            let out = frame_stream::send_frame(
                &mut sim.world,
                t_rendered,
                rs_id,
                client_id,
                &rs_host,
                &client_host,
                &rgb,
                EndpointSpeed::workstation(),
                EndpointSpeed::pda(),
                allow_lossy,
            );
            (out.arrival, out.decode_secs, out.encoded_bytes)
        }
    };
    let receipt = t_image_arrives - t_rendered;

    // 4. Decode + import + blit + GUI overhead at the client, then
    // display.
    let (import, overhead) = {
        let c = sim.world.client(client_id);
        (c.import_time(frame_bytes), c.pda.frame_overhead)
    };
    let client_cpu = decode_secs + import + overhead;
    let t_displayed = t_image_arrives + SimTime::from_secs(client_cpu);

    let window = sim.world.config.fps_window;
    sim.schedule_at(t_displayed, move |sim| {
        let now = sim.now();
        {
            let rs = sim.world.render_mut(rs_id);
            rs.record_frame(now, window);
        }
        {
            let c = sim.world.client_mut(client_id);
            c.stats.frames += 1;
            c.stats.total_latency.record((now - t0).as_secs());
            c.stats.receipt.record(receipt.as_secs());
            c.stats.render.record(render_cost.total());
            c.stats.other_overheads.record(client_cpu);
            c.stats.logical_bytes += frame_bytes;
            c.stats.encoded_bytes += encoded_bytes;
            if let Some(last) = c.stats.last_display {
                c.stats.periods.record((now - last).as_secs());
            }
            c.stats.last_display = Some(now);
        }
        sim.world.trace.record(
            now,
            TraceKind::FrameDelivered,
            format!("{client_id} frame via {rs_id}"),
        );
        if remaining > 1 {
            reference_cycle(sim, client_id, remaining - 1);
        }
    });
}

// ---- scenario harness --------------------------------------------------

struct Scenario {
    polys: usize,
    frames: u64,
    mode: CompressionMode,
    viewport: Viewport,
    import: ImportMode,
}

fn build(sc: &Scenario) -> (RaveSim, ClientId, RenderServiceId) {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 7));
    sim.world.config.frame_compression = sc.mode;
    let rs = sim.world.spawn_render_service("laptop");
    let mesh = MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; sc.polys],
        texture_bytes: 0,
    };
    let scene = &mut sim.world.render_mut(rs).scene;
    let root = scene.root();
    scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let cl = sim.world.spawn_thin_client("zaurus");
    {
        let c = sim.world.client_mut(cl);
        c.viewport = sc.viewport;
        c.import_mode = sc.import;
    }
    connect(&mut sim, cl, rs);
    (sim, cl, rs)
}

/// Run the live pipeline (depth 1) and the embedded serial reference on
/// twin worlds and demand bit-identical books.
fn assert_depth1_parity(sc: &Scenario) {
    let (mut live, cl_live, rs_live) = build(sc);
    stream_frames(&mut live, cl_live, sc.frames);
    live.run();

    let (mut refr, cl_ref, rs_ref) = build(sc);
    reference_stream(&mut refr, cl_ref, sc.frames);
    refr.run();

    // Virtual clocks ended at the same instant.
    assert_eq!(live.now(), refr.now(), "end-of-run clock");

    // Every Table-2 column, bit-for-bit (Histogram carries raw samples;
    // Debug shows them all).
    let a = &live.world.client(cl_live).stats;
    let b = &refr.world.client(cl_ref).stats;
    assert_eq!(a.frames, b.frames);
    assert_eq!(format!("{:?}", a.periods), format!("{:?}", b.periods));
    assert_eq!(format!("{:?}", a.total_latency), format!("{:?}", b.total_latency));
    assert_eq!(format!("{:?}", a.receipt), format!("{:?}", b.receipt));
    assert_eq!(format!("{:?}", a.render), format!("{:?}", b.render));
    assert_eq!(format!("{:?}", a.other_overheads), format!("{:?}", b.other_overheads));
    assert_eq!(a.last_display, b.last_display);
    assert_eq!(a.logical_bytes, b.logical_bytes);
    assert_eq!(a.encoded_bytes, b.encoded_bytes);

    // The serial cycle never stalls, so the pipeline books no waits and
    // the trace streams are byte-identical (no PipelineStall records).
    assert_eq!(a.stalled_frames, 0);
    assert_eq!(a.stall_secs, 0.0);
    assert_eq!(live.world.trace.render(), refr.world.trace.render(), "trace byte parity");

    // Channel accounting (wire + logical bytes, message counts) matches
    // in both directions.
    let (ch_l, cc_l) = {
        let rs_host = live.world.render(rs_live).host.clone();
        let cl_host = live.world.client(cl_live).host.clone();
        let down = live.world.channel(&rs_host, &cl_host);
        let down_books = (down.bytes_sent(), down.logical_bytes_sent(), down.messages_sent());
        let up = live.world.channel(&cl_host, &rs_host);
        (down_books, (up.bytes_sent(), up.messages_sent()))
    };
    let (ch_r, cc_r) = {
        let rs_host = refr.world.render(rs_ref).host.clone();
        let cl_host = refr.world.client(cl_ref).host.clone();
        let down = refr.world.channel(&rs_host, &cl_host);
        let down_books = (down.bytes_sent(), down.logical_bytes_sent(), down.messages_sent());
        let up = refr.world.channel(&cl_host, &rs_host);
        (down_books, (up.bytes_sent(), up.messages_sent()))
    };
    assert_eq!(ch_l, ch_r, "frame channel books");
    assert_eq!(cc_l, cc_r, "request channel books");
}

#[test]
fn depth1_matches_serial_hand_raw() {
    assert_depth1_parity(&Scenario {
        polys: 830_000,
        frames: 12,
        mode: CompressionMode::Raw,
        viewport: Viewport::new(200, 200),
        import: ImportMode::NativeCast,
    });
}

#[test]
fn depth1_matches_serial_skeleton_raw() {
    assert_depth1_parity(&Scenario {
        polys: 2_800_000,
        frames: 8,
        mode: CompressionMode::Raw,
        viewport: Viewport::new(200, 200),
        import: ImportMode::NativeCast,
    });
}

#[test]
fn depth1_matches_serial_hand_adaptive() {
    assert_depth1_parity(&Scenario {
        polys: 830_000,
        frames: 12,
        mode: CompressionMode::Adaptive,
        viewport: Viewport::new(200, 200),
        import: ImportMode::NativeCast,
    });
}

#[test]
fn depth1_matches_serial_vga_viewport() {
    assert_depth1_parity(&Scenario {
        polys: 10_000,
        frames: 5,
        mode: CompressionMode::Raw,
        viewport: Viewport::new(640, 480),
        import: ImportMode::J2me,
    });
}
