//! System-level resilience properties: random distributions, migrations
//! and service failures never lose or duplicate scene content.

use proptest::prelude::*;
use rave::core::bootstrap::connect_render_service;
use rave::core::migration::handle_service_failure;
use rave::core::world::{publish_update, RaveWorld};
use rave::core::{RaveConfig, RenderServiceId};
use rave::math::Vec3;
use rave::scene::{InterestSet, MeshData, NodeId, NodeKind, SceneUpdate};
use rave::sim::Simulation;
use std::sync::Arc;

fn mesh(tris: u32) -> NodeKind {
    NodeKind::Mesh(Arc::new(MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; tris as usize],
        texture_bytes: 0,
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partition content over several subset subscribers, then kill a
    /// random sequence of them. At every step: no content node is lost
    /// from the union of surviving interest sets (or it was explicitly
    /// refused), and the master scene is untouched.
    #[test]
    fn failures_never_lose_content(
        sizes in prop::collection::vec(100u32..5_000, 2..6),
        kill_order in prop::collection::vec(any::<usize>(), 1..5),
    ) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 4242));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        // One content node per future subscriber.
        let mut nodes: Vec<NodeId> = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            let (id, root) = {
                let scene = &mut sim.world.data_mut(ds).scene;
                (scene.allocate_id(), scene.root())
            };
            publish_update(
                &mut sim,
                ds,
                "imp",
                SceneUpdate::AddNode {
                    id,
                    parent: root,
                    name: format!("m{i}"),
                    kind: mesh(s),
                },
            )
            .unwrap();
            nodes.push(id);
        }
        let master_polys = sim.world.data(ds).scene.total_cost().polygons;

        // One subscriber per node, on the strongest hosts round-robin.
        let hosts = ["onyx", "tower", "v880z", "laptop", "desktop", "adrenochrome"];
        let mut services: Vec<RenderServiceId> = Vec::new();
        for (i, &node) in nodes.iter().enumerate() {
            let rs = sim.world.spawn_render_service(hosts[i % hosts.len()]);
            connect_render_service(&mut sim, rs, ds, InterestSet::subtrees([node]));
            services.push(rs);
        }
        sim.run();

        // Kill services one at a time (never the last survivor).
        let mut alive = services.clone();
        for &pick in &kill_order {
            if alive.len() <= 1 {
                break;
            }
            let victim = alive.remove(pick % alive.len());
            let outcome = handle_service_failure(&mut sim, ds, victim);
            sim.run();

            // Master untouched.
            prop_assert_eq!(
                sim.world.data(ds).scene.total_cost().polygons,
                master_polys
            );
            if outcome.refused {
                continue; // explicitly surfaced loss — allowed by the spec
            }
            // Recruited services join the alive set.
            for r in &outcome.recruited {
                alive.push(*r);
            }
            // Every content node is claimed by exactly one surviving
            // subscriber's interest roots.
            let ds_ref = sim.world.data(ds);
            for &node in &nodes {
                let holders = ds_ref
                    .subscribers
                    .values()
                    .filter(|sub| sub.interest.roots().any(|r| r == node))
                    .count();
                prop_assert_eq!(holders, 1, "node {} held once", node);
            }
            // Replica contents match interests.
            let total_replica: u64 = ds_ref
                .subscribers
                .keys()
                .map(|rs| sim.world.render(*rs).assigned_cost().polygons)
                .sum();
            prop_assert_eq!(total_replica, master_polys, "replicas partition the scene");
        }
    }
}
