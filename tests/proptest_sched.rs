//! Property tests on the unified scheduler's event loop: arbitrary
//! sequences of rebalance events — overload, underload, failure, cost
//! drift — conserve the scene. Every content node stays claimed by
//! exactly one live subscriber, replica contents partition the master,
//! and the master copy itself is never touched.

use proptest::prelude::*;
use rave::core::bootstrap::connect_render_service;
use rave::core::sched::rebalance::process_events;
use rave::core::sched::SchedEvent;
use rave::core::world::{publish_update, RaveWorld};
use rave::core::{RaveConfig, RenderServiceId};
use rave::math::Vec3;
use rave::scene::{InterestSet, MeshData, NodeId, NodeKind, SceneUpdate};
use rave::sim::Simulation;
use std::sync::Arc;

fn mesh(tris: u32) -> NodeKind {
    NodeKind::Mesh(Arc::new(MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; tris as usize],
        texture_bytes: 0,
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Feed the scheduler random event batches over a partitioned scene.
    /// After every processed batch (and barring an explicit refusal) the
    /// scene is conserved: each content node has exactly one holder among
    /// the live subscribers and the replicas sum to the master cost.
    #[test]
    fn event_storms_conserve_the_scene(
        sizes in prop::collection::vec(100u32..5_000, 2..6),
        storm in prop::collection::vec((0usize..4, any::<usize>()), 1..8),
    ) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1717));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let mut nodes: Vec<NodeId> = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            let (id, root) = {
                let scene = &mut sim.world.data_mut(ds).scene;
                (scene.allocate_id(), scene.root())
            };
            publish_update(
                &mut sim,
                ds,
                "imp",
                SceneUpdate::AddNode {
                    id,
                    parent: root,
                    name: format!("m{i}"),
                    kind: mesh(s),
                },
            )
            .unwrap();
            nodes.push(id);
        }
        let master_polys = sim.world.data(ds).scene.total_cost().polygons;

        let hosts = ["onyx", "tower", "v880z", "laptop", "desktop", "adrenochrome"];
        let mut alive: Vec<RenderServiceId> = Vec::new();
        for (i, &node) in nodes.iter().enumerate() {
            let rs = sim.world.spawn_render_service(hosts[i % hosts.len()]);
            connect_render_service(&mut sim, rs, ds, InterestSet::subtrees([node]));
            alive.push(rs);
        }
        sim.run();

        for &(kind, pick) in &storm {
            if alive.len() <= 1 {
                break;
            }
            let target = alive[pick % alive.len()];
            let event = match kind {
                0 => SchedEvent::Overload { service: target },
                1 => SchedEvent::Underload { service: target },
                2 => SchedEvent::CostDrift {
                    service: target,
                    measured: 1_000.0,
                    expected: 1e7,
                },
                _ => SchedEvent::Failure { service: target },
            };
            let outcome = process_events(&mut sim, ds, &[event]);
            if matches!(event, SchedEvent::Failure { .. }) {
                alive.retain(|&rs| rs != target);
            }
            for r in &outcome.recruited {
                alive.push(*r);
            }
            sim.run();

            // Master untouched, whatever the scheduler did.
            prop_assert_eq!(sim.world.data(ds).scene.total_cost().polygons, master_polys);
            if outcome.refused {
                continue; // explicitly surfaced loss — allowed by the spec
            }
            // Every content node claimed by exactly one live subscriber.
            let ds_ref = sim.world.data(ds);
            for &node in &nodes {
                let holders = ds_ref
                    .subscribers
                    .values()
                    .filter(|sub| sub.interest.roots().any(|r| r == node))
                    .count();
                prop_assert_eq!(holders, 1, "node {} held once after {:?}", node, event);
            }
            // Replicas partition the master scene: total assigned cost is
            // conserved through every move.
            let total_replica: u64 = ds_ref
                .subscribers
                .keys()
                .map(|rs| sim.world.render(*rs).assigned_cost().polygons)
                .sum();
            prop_assert_eq!(total_replica, master_polys, "replicas conserve cost after {:?}", event);
        }
    }
}
