//! Property tests on the unified scheduler: arbitrary sequences of
//! rebalance events — overload, underload, failure, cost drift —
//! conserve the scene (every content node stays claimed by exactly one
//! live subscriber, replica contents partition the master, and the
//! master copy itself is never touched); the ledger's incremental
//! resift tracks a naive full re-sort over arbitrary debit/push
//! sequences; and the incremental planner's suffix replays land on the
//! cold plan of the final workload set after arbitrary edit storms.

use proptest::prelude::*;
use rave::core::bootstrap::connect_render_service;
use rave::core::sched::rebalance::process_events;
use rave::core::sched::SchedEvent;
use rave::core::world::{publish_update, RaveWorld};
use rave::core::{RaveConfig, RenderServiceId};
use rave::math::Vec3;
use rave::scene::{InterestSet, MeshData, NodeId, NodeKind, SceneUpdate};
use rave::sim::Simulation;
use std::sync::Arc;

fn mesh(tris: u32) -> NodeKind {
    NodeKind::Mesh(Arc::new(MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; tris as usize],
        texture_bytes: 0,
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Feed the scheduler random event batches over a partitioned scene.
    /// After every processed batch (and barring an explicit refusal) the
    /// scene is conserved: each content node has exactly one holder among
    /// the live subscribers and the replicas sum to the master cost.
    #[test]
    fn event_storms_conserve_the_scene(
        sizes in prop::collection::vec(100u32..5_000, 2..6),
        storm in prop::collection::vec((0usize..4, any::<usize>()), 1..8),
    ) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1717));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let mut nodes: Vec<NodeId> = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            let (id, root) = {
                let scene = &mut sim.world.data_mut(ds).scene;
                (scene.allocate_id(), scene.root())
            };
            publish_update(
                &mut sim,
                ds,
                "imp",
                SceneUpdate::AddNode {
                    id,
                    parent: root,
                    name: format!("m{i}"),
                    kind: mesh(s),
                },
            )
            .unwrap();
            nodes.push(id);
        }
        let master_polys = sim.world.data(ds).scene.total_cost().polygons;

        let hosts = ["onyx", "tower", "v880z", "laptop", "desktop", "adrenochrome"];
        let mut alive: Vec<RenderServiceId> = Vec::new();
        for (i, &node) in nodes.iter().enumerate() {
            let rs = sim.world.spawn_render_service(hosts[i % hosts.len()]);
            connect_render_service(&mut sim, rs, ds, InterestSet::subtrees([node]));
            alive.push(rs);
        }
        sim.run();

        for &(kind, pick) in &storm {
            if alive.len() <= 1 {
                break;
            }
            let target = alive[pick % alive.len()];
            let event = match kind {
                0 => SchedEvent::Overload { service: target },
                1 => SchedEvent::Underload { service: target },
                2 => SchedEvent::CostDrift {
                    service: target,
                    measured: 1_000.0,
                    expected: 1e7,
                },
                _ => SchedEvent::Failure { service: target },
            };
            let outcome = process_events(&mut sim, ds, &[event]);
            if matches!(event, SchedEvent::Failure { .. }) {
                alive.retain(|&rs| rs != target);
            }
            for r in &outcome.recruited {
                alive.push(*r);
            }
            sim.run();

            // Master untouched, whatever the scheduler did.
            prop_assert_eq!(sim.world.data(ds).scene.total_cost().polygons, master_polys);
            if outcome.refused {
                continue; // explicitly surfaced loss — allowed by the spec
            }
            // Every content node claimed by exactly one live subscriber.
            let ds_ref = sim.world.data(ds);
            for &node in &nodes {
                let holders = ds_ref
                    .subscribers
                    .values()
                    .filter(|sub| sub.interest.roots().any(|r| r == node))
                    .count();
                prop_assert_eq!(holders, 1, "node {} held once after {:?}", node, event);
            }
            // Replicas partition the master scene: total assigned cost is
            // conserved through every move.
            let total_replica: u64 = ds_ref
                .subscribers
                .keys()
                .map(|rs| sim.world.render(*rs).assigned_cost().polygons)
                .sum();
            prop_assert_eq!(total_replica, master_polys, "replicas conserve cost after {:?}", event);
        }
    }
}

mod ledger_resift {
    //! The `Ledger` keeps its most-spacious-first order two ways: an
    //! O(log s) `partition_point`/`rotate_left` resift after an in-order
    //! debit, and a full re-sort deferred to the next successful fit
    //! after an out-of-order `push` (the `stale_tail` flag). Both must
    //! agree — choice by choice and slot order by slot order — with the
    //! pre-refactor policy: a naive stable re-sort after every debit.

    use proptest::prelude::*;
    use rave::core::capacity::Headroom;
    use rave::core::sched::Ledger;
    use rave::core::RenderServiceId;
    use rave::scene::NodeCost;

    /// The naive reference ledger: first-fit over the mirrored slot
    /// order, full stable re-sort after every successful debit, pushes
    /// appended unsorted until the next debit's re-sort folds them in.
    struct Naive(Vec<(RenderServiceId, u64, u64)>);

    impl Naive {
        fn fit(&mut self, polys: u64, tex: u64) -> Option<RenderServiceId> {
            let idx = self.0.iter().position(|&(_, p, t)| polys <= p && tex <= t)?;
            self.0[idx].1 -= polys;
            self.0[idx].2 -= tex;
            let svc = self.0[idx].0;
            self.0.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            Some(svc)
        }

        fn states(&self) -> Vec<(RenderServiceId, u64)> {
            self.0.iter().map(|&(s, p, _)| (s, p)).collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary interleavings of fits (op 1..5, hit or miss on
        /// either capacity axis) and recruit pushes (op 0) leave the
        /// live ledger and the naive model in identical slot states at
        /// every step, choosing identical services.
        #[test]
        fn incremental_resift_matches_a_naive_stable_resort(
            initial in prop::collection::vec((1u64..200_000, 0u64..4_000), 1..10),
            ops in prop::collection::vec((0usize..5, 0u64..100_000, 0u64..3_000), 1..60),
        ) {
            let caps: Vec<(RenderServiceId, Headroom)> = initial
                .iter()
                .enumerate()
                .map(|(i, &(p, t))| {
                    (RenderServiceId(i as u64 + 1), Headroom { polygons: p, texture_bytes: t })
                })
                .collect();
            let mut ledger = Ledger::from_caps(&caps, true);
            let mut model: Vec<(RenderServiceId, u64, u64)> =
                caps.iter().map(|&(s, h)| (s, h.polygons, h.texture_bytes)).collect();
            model.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut naive = Naive(model);
            let mut next_svc = initial.len() as u64 + 1;

            for &(kind, a, b) in &ops {
                if kind == 0 {
                    ledger.push(
                        RenderServiceId(next_svc),
                        Headroom { polygons: a, texture_bytes: b },
                    );
                    naive.0.push((RenderServiceId(next_svc), a, b));
                    next_svc += 1;
                } else {
                    let cost = NodeCost { polygons: a, texture_bytes: b, ..NodeCost::ZERO };
                    prop_assert_eq!(ledger.fit(&cost), naive.fit(a, b));
                }
                prop_assert_eq!(ledger.slot_states(), naive.states());
            }
        }
    }
}

mod plan_state_storms {
    //! Edit-storm exactness at the `PlanState` level, away from any
    //! scene: arbitrary interleavings of unit upserts, removals, basis
    //! swaps, forced full replays and replans must always land the
    //! incremental state on exactly the assignment a cold
    //! `place_with_splitting` of the final workload set produces — and
    //! the emitted diffs, applied move by move, must reconstruct it.

    use proptest::prelude::*;
    use rave::core::capacity::Headroom;
    use rave::core::sched::placement::{place_with_splitting, Ledger};
    use rave::core::sched::PlanState;
    use rave::core::RenderServiceId;
    use rave::scene::{NodeCost, NodeId};
    use std::collections::BTreeMap;

    fn cold(
        units: &BTreeMap<NodeId, NodeCost>,
        caps: &[(RenderServiceId, Headroom)],
    ) -> Vec<(RenderServiceId, Vec<NodeId>, NodeCost)> {
        let mut ledger = Ledger::from_caps(caps, true);
        let queue: Vec<(NodeId, NodeCost)> = units.iter().map(|(&id, &c)| (id, c)).collect();
        place_with_splitting(&mut ledger, queue, |_| None, false)
            .expect("feasible by construction")
            .assignments
    }

    fn basis(n_services: usize, shuffle: u64) -> Vec<(RenderServiceId, Headroom)> {
        (0..n_services)
            .map(|i| {
                // Distinct per-service room (no key ties), perturbed by
                // the basis generation so swaps really reorder slots.
                let polygons = 60_000 + (i as u64) * 9_001 + (shuffle % 7) * 1_003;
                (RenderServiceId(i as u64 + 1), Headroom { polygons, texture_bytes: 1 << 30 })
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Workload ids live in a 40-id space with costs under 2k
        /// polygons against ≥3 services of ≥60k each, so every storm is
        /// feasible without splitting and every divergence is an engine
        /// bug. Ops: 0-3 upsert, 4-5 remove, 6 swap the capacity basis,
        /// 7 force a full replay, 8 replan now (plus a final replan).
        #[test]
        fn edit_storms_replan_to_the_cold_plan(
            n_services in 3usize..7,
            storm in prop::collection::vec((0usize..9, any::<u64>(), 1u64..2_000), 1..80),
        ) {
            let mut generation = 0u64;
            let mut caps = basis(n_services, generation);
            let mut units: BTreeMap<NodeId, NodeCost> = BTreeMap::new();
            let mut state = PlanState::new();
            state.full_rebuild(Vec::new(), &caps, |_| None).unwrap();
            let mut applied: BTreeMap<NodeId, RenderServiceId> = BTreeMap::new();

            let mut replan = |state: &mut PlanState,
                              applied: &mut BTreeMap<NodeId, RenderServiceId>,
                              units: &BTreeMap<NodeId, NodeCost>,
                              caps: &Vec<(RenderServiceId, Headroom)>|
             -> Result<(), TestCaseError> {
                let diff = state.replan(|_| None).unwrap();
                for &(node, from, to) in &diff.moved {
                    prop_assert_eq!(applied.insert(node, to), from);
                }
                for &(node, svc) in &diff.dropped {
                    prop_assert_eq!(applied.remove(&node), Some(svc));
                }
                prop_assert_eq!(state.assignments(), cold(units, caps));
                Ok(())
            };

            for &(kind, pick, polys) in &storm {
                let id = NodeId(pick % 40);
                match kind {
                    0..=3 => {
                        let cost =
                            NodeCost { polygons: polys, data_bytes: polys, ..NodeCost::ZERO };
                        units.insert(id, cost);
                        state.note_unit(id, Some(cost));
                    }
                    4 | 5 => {
                        units.remove(&id);
                        state.note_unit(id, None);
                    }
                    6 => {
                        generation += 1;
                        caps = basis(n_services, generation);
                        state.note_caps(&caps);
                    }
                    7 => state.force_full_replay(),
                    _ => replan(&mut state, &mut applied, &units, &caps)?,
                }
            }
            replan(&mut state, &mut applied, &units, &caps)?;
            // Nothing lingers: the applied diffs and the final plan are
            // the same node→service map.
            let flat: BTreeMap<NodeId, RenderServiceId> = state
                .assignments()
                .into_iter()
                .flat_map(|(svc, nodes, _)| nodes.into_iter().map(move |n| (n, svc)))
                .collect();
            prop_assert_eq!(flat, applied);
        }
    }
}
