//! Cross-crate integration: the full RAVE pipeline from model file to
//! delivered pixels.

use rave::core::bootstrap::{connect_planned, connect_render_service};
use rave::core::collaboration::{join_session, move_camera};
use rave::core::distribution::plan_distribution;
use rave::core::thin_client::{connect, stream_frames};
use rave::core::world::{publish_update, RaveWorld};
use rave::core::RaveConfig;
use rave::math::Vec3;
use rave::models::{build_with_budget, obj, ply, PaperModel};
use rave::scene::{CameraParams, InterestSet, NodeKind, SceneUpdate};
use rave::sim::Simulation;
use std::sync::Arc;

/// The paper's full ingest path: procedural model → binary PLY → OBJ →
/// data service → render service replica → PDA frames.
#[test]
fn model_file_to_pda_frames() {
    // 1. Model provenance: PLY → OBJ conversion (§5).
    let model = build_with_budget(PaperModel::Galleon, 2_000);
    let mut ply_bytes = Vec::new();
    ply::write(&model, ply::PlyFormat::BinaryLittleEndian, &mut ply_bytes).unwrap();
    let from_ply = ply::read(std::io::Cursor::new(ply_bytes)).unwrap();
    let mut obj_bytes = Vec::new();
    obj::write(&from_ply, &mut obj_bytes).unwrap();
    let imported = obj::read(std::io::Cursor::new(obj_bytes)).unwrap();
    assert_eq!(imported.triangle_count(), 2_000);

    // 2. Serve it.
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1001));
    let ds = sim.world.spawn_data_service("adrenochrome", "galleon");
    let (node, root) = {
        let scene = &mut sim.world.data_mut(ds).scene;
        (scene.allocate_id(), scene.root())
    };
    publish_update(
        &mut sim,
        ds,
        "importer",
        SceneUpdate::AddNode {
            id: node,
            parent: root,
            name: "galleon".into(),
            kind: NodeKind::Mesh(Arc::new(imported)),
        },
    )
    .unwrap();

    // 3. Render service bootstraps, PDA streams.
    let rs = sim.world.spawn_render_service("laptop");
    connect_render_service(&mut sim, rs, ds, InterestSet::everything());
    sim.run();
    assert_eq!(sim.world.render(rs).assigned_cost().polygons, 2_000);

    let pda = sim.world.spawn_thin_client("zaurus");
    connect(&mut sim, pda, rs);
    stream_frames(&mut sim, pda, 5);
    sim.run();
    let stats = &sim.world.client(pda).stats;
    assert_eq!(stats.frames, 5);
    let fps = stats.fps();
    // Small model at 200x200: the wireless wire is the ceiling (~4 fps
    // with the sequential request loop).
    assert!((2.0..6.0).contains(&fps), "fps {fps}");
}

/// Distribution across heterogeneous services, then collaboration on the
/// distributed scene, with every replica converging.
#[test]
fn distributed_collaborative_session_converges() {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1002));
    let ds = sim.world.spawn_data_service("adrenochrome", "skeleton");
    // Two content subtrees.
    for (name, tris) in [("skull", 4_000u64), ("torso", 6_000u64)] {
        let (id, root) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            (scene.allocate_id(), scene.root())
        };
        publish_update(
            &mut sim,
            ds,
            "importer",
            SceneUpdate::AddNode {
                id,
                parent: root,
                name: name.into(),
                kind: NodeKind::Mesh(Arc::new(build_with_budget(PaperModel::Elle, tris))),
            },
        )
        .unwrap();
    }

    let rs1 = sim.world.spawn_render_service("laptop");
    let rs2 = sim.world.spawn_render_service("tower");
    // Plan by interrogated capacity, clamped so neither machine can hold
    // the whole 10k-polygon scene alone (forcing a genuine distribution —
    // on the unconstrained testbed the Xeon would swallow everything).
    let cfg = sim.world.config.clone();
    let reports: Vec<_> = vec![
        sim.world.render(rs1).capacity_report(&cfg),
        sim.world.render(rs2).capacity_report(&cfg),
    ]
    .into_iter()
    .map(|mut r| {
        r.poly_headroom = r.poly_headroom.min(6_000);
        r
    })
    .collect();
    let plan = {
        let mut master = sim.world.data(ds).scene.clone();
        let plan = plan_distribution(&mut master, &reports).unwrap();
        sim.world.data_mut(ds).scene = master;
        plan
    };
    let placed: u64 = plan.assignments.iter().map(|a| a.cost.polygons).sum();
    assert_eq!(placed, 10_000, "all content placed");
    connect_planned(&mut sim, ds, &plan);
    sim.run();

    // A user joins and navigates: avatar updates reach *all* replicas
    // (avatar adds go to everyone, ancestors orient subsets).
    let cam = CameraParams::look_at(Vec3::new(0.0, 1.0, 4.0), Vec3::new(0.0, 1.0, 0.0), Vec3::Y);
    let who = join_session(&mut sim, ds, "Desktop", Vec3::X, cam).unwrap();
    sim.run();
    let mut cam2 = cam;
    cam2.orbit(Vec3::new(0.0, 1.0, 0.0), 0.7, 0.0);
    move_camera(&mut sim, ds, who, "Desktop", cam2).unwrap();
    sim.run();

    for rs in [rs1, rs2] {
        let replica = &sim.world.render(rs).scene;
        assert!(replica.contains(who.avatar), "{rs} has the avatar");
        assert_eq!(
            replica.node(who.avatar).unwrap().transform().translation,
            cam2.position,
            "{rs} applied the camera move"
        );
    }
    // Replica contents partition the content nodes.
    let p1 = sim.world.render(rs1).assigned_cost().polygons;
    let p2 = sim.world.render(rs2).assigned_cost().polygons;
    // Avatars add 8 polygons wherever they land.
    assert!(p1 + p2 >= 10_000 && p1 + p2 <= 10_016, "p1={p1} p2={p2}");
    assert!(p1 > 0 && p2 > 0, "both services hold content");
}

/// Audit-trail persistence round-trips a whole collaborative session
/// through disk format and replays to the identical master scene.
#[test]
fn session_persistence_roundtrip() {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1003));
    let ds = sim.world.spawn_data_service("adrenochrome", "sess");
    let (id, root) = {
        let scene = &mut sim.world.data_mut(ds).scene;
        (scene.allocate_id(), scene.root())
    };
    publish_update(
        &mut sim,
        ds,
        "importer",
        SceneUpdate::AddNode {
            id,
            parent: root,
            name: "model".into(),
            kind: NodeKind::Mesh(Arc::new(build_with_budget(PaperModel::Galleon, 500))),
        },
    )
    .unwrap();
    let who = join_session(&mut sim, ds, "u1", Vec3::X, CameraParams::default()).unwrap();
    sim.run();
    for i in 0..5 {
        let mut cam = CameraParams::default();
        cam.orbit(Vec3::ZERO, 0.2 * i as f32, 0.0);
        move_camera(&mut sim, ds, who, "u1", cam).unwrap();
    }
    sim.run();

    // Save → load → replay.
    let mut bytes = Vec::new();
    sim.world.data(ds).audit.save(&mut bytes).unwrap();
    let loaded = rave::scene::AuditTrail::load(std::io::Cursor::new(bytes)).unwrap();
    let replayed = loaded.replay_all().unwrap();
    let master = &sim.world.data(ds).scene;
    assert_eq!(replayed.len(), master.len());
    for n in replayed.descendants(replayed.root()) {
        let a = replayed.node(n).unwrap();
        let b = master.node(n).expect("same node set");
        assert_eq!(a.name(), b.name());
        assert_eq!(a.transform(), b.transform());
    }
}

/// §5.1's degrading-wireless scenario end-to-end: real frames from the
/// rasterizer, codec chosen adaptively per link state; the chosen codec's
/// end-to-end frame time beats raw at every signal level and the decoded
/// image is identical (lossless path) to what was rendered.
#[test]
fn adaptive_compression_under_degrading_signal() {
    use rave::compress::adaptive::{select, EndpointSpeed};
    use rave::net::LinkSpec;
    use rave::render::{Framebuffer, Renderer};

    let mesh = build_with_budget(PaperModel::Galleon, 2_000);
    let mut tree = rave::scene::SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let b = tree.world_bounds(root);
    let cam0 = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.2 * b.radius(), 2.0 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    let renderer = Renderer::default();
    let mut prev_fb = Framebuffer::new(200, 200);
    renderer.render(&tree, &cam0, &mut prev_fb);
    let mut cam1 = cam0;
    cam1.orbit(b.center(), 0.04, 0.0);
    let mut cur_fb = Framebuffer::new(200, 200);
    renderer.render(&tree, &cam1, &mut cur_fb);
    let prev = prev_fb.to_rgb_bytes();
    let cur = cur_fb.to_rgb_bytes();

    let mut last_time = 0.0;
    for signal in [1.0, 0.5, 0.2, 0.08] {
        let link = LinkSpec::wireless_11mb(signal);
        let choice = select(
            &cur,
            Some(&prev),
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false, // lossless only: the decoded frame must be exact
        );
        let raw_time = link.transfer_time(cur.len() as u64).as_secs();
        assert!(
            choice.total_time.as_secs() <= raw_time,
            "codec never loses to raw at {signal}: {} vs {raw_time}",
            choice.total_time.as_secs()
        );
        assert!(choice.total_time.as_secs() >= last_time, "weaker signal cannot be faster");
        last_time = choice.total_time.as_secs();
        // End-to-end decode correctness on the real frame.
        let decoded =
            choice.codec.decode(&choice.codec.encode(&cur, Some(&prev)), Some(&prev)).unwrap();
        assert_eq!(decoded, cur, "lossless roundtrip at signal {signal}");
    }
}

/// Failure injection across the whole stack: a render service dies
/// mid-session; its scene share is redistributed and the collaborating
/// client's avatar updates keep flowing to the survivor.
#[test]
fn service_failure_recovery() {
    use rave::core::migration::handle_service_failure;

    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1005));
    let ds = sim.world.spawn_data_service("adrenochrome", "sess");
    // Content split across two subset subscribers.
    let mut nodes = Vec::new();
    for name in ["left", "right"] {
        let (id, root) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            (scene.allocate_id(), scene.root())
        };
        publish_update(
            &mut sim,
            ds,
            "importer",
            SceneUpdate::AddNode {
                id,
                parent: root,
                name: name.into(),
                kind: NodeKind::Mesh(Arc::new(build_with_budget(PaperModel::Galleon, 1_000))),
            },
        )
        .unwrap();
        nodes.push(id);
    }
    let rs_a = sim.world.spawn_render_service("laptop");
    let rs_b = sim.world.spawn_render_service("tower");
    connect_render_service(&mut sim, rs_a, ds, InterestSet::subtrees([nodes[0]]));
    connect_render_service(&mut sim, rs_b, ds, InterestSet::subtrees([nodes[1]]));
    sim.run();

    // rs_a dies; its subtree must land on rs_b.
    let outcome = handle_service_failure(&mut sim, ds, rs_a);
    sim.run();
    assert!(!outcome.refused);
    assert_eq!(outcome.moved.len(), 1);
    assert!(sim.world.render(rs_b).scene.contains(nodes[0]));
    assert_eq!(sim.world.render(rs_b).assigned_cost().polygons, 2_000);

    // Collaboration continues against the survivor.
    let who =
        join_session(&mut sim, ds, "survivor-user", Vec3::X, CameraParams::default()).unwrap();
    sim.run();
    assert!(sim.world.render(rs_b).scene.contains(who.avatar));
}

/// The grid discovery plane: services registered in UDDI are found by
/// technical model and their WSDL conforms, so clients connect without
/// configuration (§3.2.2).
#[test]
fn discovery_through_uddi_registry() {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 1004));
    sim.world.spawn_data_service("adrenochrome", "Skull");
    sim.world.spawn_render_service("tower");
    sim.world.spawn_render_service("laptop");
    let renders =
        sim.world.registry.scan_access_points("RAVE", rave::grid::TechnicalModel::RenderService);
    assert_eq!(renders.len(), 2);
    let datas = sim.world.registry.find_services("RAVE", rave::grid::TechnicalModel::DataService);
    assert_eq!(datas.len(), 1);
    assert!(datas[0].wsdl.conforms());
    // The Fig 4 tree renders with both machines.
    let tree = sim.world.registry.render_tree();
    assert!(tree.contains("tower") && tree.contains("adrenochrome"));
}
