//! Property tests pinning the inverted interest index to its oracle:
//! after arbitrary edit storms — adds, removes, reparents, renames —
//! folded in through incremental `repair`, the index's routing decision
//! for any update equals a naive scan over *freshly refreshed*
//! `InterestSet` closures. Plus the presence rule as a regression: avatar
//! and camera updates reach every subscriber, however narrow its
//! interest, and full-replica subscribers converge to the master scene
//! through the batched multicast delivery path.

use proptest::prelude::*;
use rave::core::world::{publish_batch, RaveWorld};
use rave::core::RaveConfig;
use rave::math::Vec3;
use rave::scene::{
    AvatarInfo, InterestIndex, InterestSet, NodeId, NodeKind, SceneTree, SceneUpdate, Transform,
};
use rave::sim::Simulation;

/// A structural edit against whatever nodes the tree currently holds
/// (picks are reduced modulo the live node count at apply time).
#[derive(Debug, Clone)]
enum Edit {
    Add { parent_pick: usize },
    AddAvatar { parent_pick: usize },
    Remove { pick: usize },
    Reparent { pick: usize, dest_pick: usize },
    Rename { pick: usize },
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        any::<usize>().prop_map(|parent_pick| Edit::Add { parent_pick }),
        any::<usize>().prop_map(|parent_pick| Edit::AddAvatar { parent_pick }),
        any::<usize>().prop_map(|pick| Edit::Remove { pick }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(pick, dest_pick)| Edit::Reparent { pick, dest_pick }),
        any::<usize>().prop_map(|pick| Edit::Rename { pick }),
    ]
}

/// One subscriber's interest: `None` = everything, otherwise subtree
/// roots drawn from the initial node population (picks reduced modulo).
fn interest_strategy() -> impl Strategy<Value = Option<Vec<usize>>> {
    prop_oneof![
        Just(None),
        prop::collection::vec(any::<usize>(), 1..4).prop_map(Some),
        prop::collection::vec(any::<usize>(), 1..4).prop_map(Some),
        prop::collection::vec(any::<usize>(), 1..4).prop_map(Some),
    ]
}

fn avatar() -> NodeKind {
    NodeKind::Avatar(AvatarInfo { label: "u".into(), color: Vec3::X, camera: Default::default() })
}

/// The oracle: refresh every closure against the current tree, then scan.
fn naive(sets: &mut [InterestSet], u: &SceneUpdate, tree: &SceneTree) -> Vec<u32> {
    sets.iter_mut().for_each(|s| s.refresh(tree));
    sets.iter().enumerate().filter(|(_, s)| s.relevant(u, tree)).map(|(i, _)| i as u32).collect()
}

fn indexed(ix: &mut InterestIndex, u: &SceneUpdate, tree: &SceneTree) -> Vec<u32> {
    let mut out = Vec::new();
    ix.matches(u, tree, &mut out);
    out
}

/// The probe battery: one update of every routing class against the
/// current tree state (plus a remembered dead id for the unknown-target
/// rule), each checked index-vs-oracle.
fn check_probes(
    ix: &mut InterestIndex,
    sets: &mut [InterestSet],
    tree: &mut SceneTree,
    removed: &[NodeId],
    salt: usize,
) {
    let nodes: Vec<NodeId> = tree.descendants(tree.root());
    let target = nodes[salt % nodes.len()];
    let parent = nodes[(salt / 7) % nodes.len()];
    let fresh = tree.allocate_id();
    let mut probes = vec![
        SceneUpdate::SetName { id: target, name: "probe".into() },
        SceneUpdate::SetTransform { id: tree.root(), transform: Transform::IDENTITY },
        SceneUpdate::AddNode { id: fresh, parent, name: "p".into(), kind: NodeKind::Group },
        SceneUpdate::CameraMoved { id: target, camera: Default::default() },
    ];
    if let Some(&dead) = removed.last() {
        probes.push(SceneUpdate::SetName { id: dead, name: "ghost".into() });
        probes.push(SceneUpdate::RemoveNode { id: dead });
    }
    for u in &probes {
        let got = indexed(ix, u, tree);
        let want = naive(sets, u, tree);
        assert_eq!(got, want, "index diverged from refreshed scan on {u:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary edit storms, folded into the index strictly through
    /// `drain_structure_dirt` → `repair` (never a rebuild), keep every
    /// routing decision identical to the refreshed naive scan — including
    /// updates to nodes that left the tree mid-storm (unknown-target
    /// conservatism) and roots that were removed or reparented (interval
    /// and ancestor-chain staleness).
    #[test]
    fn repaired_index_tracks_refreshed_scan_through_edit_storms(
        seed_sizes in prop::collection::vec(1usize..4, 2..5),
        interests in prop::collection::vec(interest_strategy(), 2..7),
        storm in prop::collection::vec(edit_strategy(), 1..25),
    ) {
        // Seed: a few branches of varying depth.
        let mut tree = SceneTree::new();
        for (b, &depth) in seed_sizes.iter().enumerate() {
            let mut at = tree.root();
            for d in 0..depth {
                at = tree.add_node(at, format!("b{b}d{d}"), NodeKind::Group).unwrap();
            }
        }
        let seed_nodes: Vec<NodeId> = tree.descendants(tree.root());

        let mut sets: Vec<InterestSet> = interests
            .iter()
            .map(|spec| match spec {
                None => InterestSet::everything(),
                Some(picks) => InterestSet::subtrees(
                    picks.iter().map(|&p| seed_nodes[p % seed_nodes.len()]),
                ),
            })
            .collect();

        let mut ix = InterestIndex::new();
        let _ = tree.drain_structure_dirt();
        ix.rebuild(&tree, sets.iter());

        let mut removed: Vec<NodeId> = Vec::new();
        for (step, edit) in storm.iter().enumerate() {
            let nodes: Vec<NodeId> = tree.descendants(tree.root());
            match edit {
                Edit::Add { parent_pick } => {
                    let parent = nodes[parent_pick % nodes.len()];
                    tree.add_node(parent, format!("s{step}"), NodeKind::Group).unwrap();
                }
                Edit::AddAvatar { parent_pick } => {
                    let parent = nodes[parent_pick % nodes.len()];
                    tree.add_node(parent, format!("av{step}"), avatar()).unwrap();
                }
                Edit::Remove { pick } => {
                    let victims: Vec<NodeId> =
                        nodes.iter().copied().filter(|&n| n != tree.root()).collect();
                    if let Some(&v) = victims.get(pick % victims.len().max(1)) {
                        removed.extend(tree.descendants(v));
                        tree.remove(v).unwrap();
                    }
                }
                Edit::Reparent { pick, dest_pick } => {
                    let movable: Vec<NodeId> =
                        nodes.iter().copied().filter(|&n| n != tree.root()).collect();
                    if !movable.is_empty() {
                        let node = movable[pick % movable.len()];
                        let dest = nodes[dest_pick % nodes.len()];
                        // Moving under your own subtree is rejected; skip.
                        let _ = tree.reparent(node, dest);
                    }
                }
                Edit::Rename { pick } => {
                    let id = nodes[pick % nodes.len()];
                    SceneUpdate::SetName { id, name: format!("r{step}") }
                        .apply(&mut tree)
                        .unwrap();
                }
            }
            let dirt = tree.drain_structure_dirt();
            ix.repair(&tree, &dirt);
            check_probes(&mut ix, &mut sets, &mut tree, &removed, step * 31 + 7);
        }
    }

    /// End-to-end through the batched multicast delivery path: arbitrary
    /// update batches published to full-replica subscribers leave every
    /// replica holding exactly the master's nodes once the sim drains.
    #[test]
    fn full_replicas_converge_under_batched_storms(
        batches in prop::collection::vec(
            prop::collection::vec((0usize..3, any::<usize>()), 1..5),
            1..5,
        ),
    ) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 77));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let rs_a = sim.world.spawn_render_service("desktop");
        let rs_b = sim.world.spawn_render_service("zaurus");
        for rs in [rs_a, rs_b] {
            sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
            let replica = sim.world.data(ds).scene.clone();
            sim.world.render_mut(rs).scene = replica;
        }
        for batch in &batches {
            // Build the batch against a planning clone: later picks must
            // not touch nodes an earlier update in the same batch removed
            // (the data service applies the batch sequentially).
            let mut planned = sim.world.data(ds).scene.clone();
            let mut updates: Vec<(String, SceneUpdate)> = Vec::new();
            for &(kind, pick) in batch {
                let nodes: Vec<NodeId> = planned.descendants(planned.root());
                let u = match kind {
                    0 => {
                        let parent = nodes[pick % nodes.len()];
                        let id = sim.world.data_mut(ds).scene.allocate_id();
                        SceneUpdate::AddNode {
                            id,
                            parent,
                            name: format!("n{id:?}"),
                            kind: NodeKind::Group,
                        }
                    }
                    1 => match nodes.iter().copied().find(|&n| n != planned.root()) {
                        Some(id) => SceneUpdate::RemoveNode { id },
                        None => continue,
                    },
                    _ => {
                        let id = nodes[pick % nodes.len()];
                        SceneUpdate::SetName { id, name: "moved".into() }
                    }
                };
                u.apply(&mut planned).unwrap();
                updates.push(("u".to_string(), u));
            }
            if updates.is_empty() {
                continue;
            }
            publish_batch(&mut sim, ds, updates).unwrap();
            sim.run();
        }
        let master: Vec<NodeId> = {
            let s = &sim.world.data(ds).scene;
            s.descendants(s.root())
        };
        for rs in [rs_a, rs_b] {
            let replica: Vec<NodeId> = {
                let s = &sim.world.render(rs).scene;
                s.descendants(s.root())
            };
            prop_assert_eq!(&replica, &master, "replica {:?} diverged", rs);
        }
    }
}

/// §3.2.4 regression: presence (avatar join + camera motion) reaches
/// every subscriber, including one whose interest is a sibling subtree
/// that does not contain the avatar.
#[test]
fn presence_reaches_narrow_subscribers() {
    let mut tree = SceneTree::new();
    let shown = tree.add_node(tree.root(), "shown", NodeKind::Group).unwrap();
    let hidden = tree.add_node(tree.root(), "hidden", NodeKind::Group).unwrap();
    let mut sets = vec![InterestSet::subtrees([shown]), InterestSet::everything()];
    let mut ix = InterestIndex::new();
    let _ = tree.drain_structure_dirt();
    ix.rebuild(&tree, sets.iter());

    // The avatar joins under the *unsubscribed* branch — still everyone's.
    let av = tree.allocate_id();
    let join = SceneUpdate::AddNode {
        id: av,
        parent: hidden,
        name: "avatar-u".into(),
        kind: NodeKind::Avatar(AvatarInfo {
            label: "u".into(),
            color: Vec3::X,
            camera: Default::default(),
        }),
    };
    assert_eq!(indexed(&mut ix, &join, &tree), vec![0, 1], "join reaches everyone");
    join.apply(&mut tree).unwrap();
    let dirt = tree.drain_structure_dirt();
    ix.repair(&tree, &dirt);

    let motion = SceneUpdate::CameraMoved { id: av, camera: Default::default() };
    assert_eq!(indexed(&mut ix, &motion, &tree), naive(&mut sets, &motion, &tree));
    assert_eq!(indexed(&mut ix, &motion, &tree), vec![0, 1], "presence motion reaches everyone");

    // A mundane update in the hidden branch still stays scoped.
    let mundane = SceneUpdate::SetName { id: hidden, name: "h".into() };
    assert_eq!(indexed(&mut ix, &mundane, &tree), vec![1], "non-presence stays scoped");
}
