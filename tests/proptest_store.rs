//! Property tests on the durable store: WAL record framing round-trips
//! any payload, and recovery after *arbitrary* file truncation always
//! replays a strict prefix of the session — never garbage, never a
//! reordering, never a partial update.

use proptest::prelude::*;
use rave::scene::wire;
use rave::scene::{AuditEntry, NodeKind, SceneTree, SceneUpdate, StampedUpdate};
use rave::store::record::{encode_record, scan_records, RECORD_HEADER_LEN};
use rave::store::wal::Wal;
use std::path::PathBuf;

fn tmp_dir(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rave-prop-store-{tag}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entry(seq: u64, name: &str) -> AuditEntry {
    AuditEntry {
        at_secs: seq as f64 * 0.25,
        stamped: StampedUpdate {
            seq,
            origin: "prop".into(),
            update: SceneUpdate::SetName { id: rave::scene::NodeId(0), name: name.into() },
        },
    }
}

proptest! {
    /// Any payloads, framed back to back, scan out unchanged and in
    /// order — and the scan reports the buffer fully clean.
    #[test]
    fn record_framing_roundtrips(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..200), 0..20)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            encode_record(p, &mut buf);
        }
        let scan = scan_records(&buf);
        prop_assert!(scan.torn.is_none());
        prop_assert_eq!(scan.clean_len, buf.len());
        prop_assert_eq!(scan.payloads.len(), payloads.len());
        for (got, want) in scan.payloads.iter().zip(&payloads) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    /// Wire-encoded audit entries round-trip through the WAL record
    /// framing exactly.
    #[test]
    fn audit_entries_roundtrip_through_framing(
        names in prop::collection::vec("[a-z]{0,12}", 1..30)
    ) {
        let mut buf = Vec::new();
        let entries: Vec<AuditEntry> = names
            .iter()
            .enumerate()
            .map(|(i, n)| entry(i as u64 + 1, n))
            .collect();
        for e in &entries {
            encode_record(&wire::encode_entry(e), &mut buf);
        }
        let scan = scan_records(&buf);
        prop_assert_eq!(scan.payloads.len(), entries.len());
        for (payload, want) in scan.payloads.iter().zip(&entries) {
            let got = wire::decode_entry(payload).unwrap();
            prop_assert_eq!(&got, want);
        }
    }

    /// Truncate the WAL's active segment at ANY byte boundary: recovery
    /// still succeeds and replays exactly the entries whose records
    /// survived intact — a strict prefix of what was appended.
    #[test]
    fn recovery_after_arbitrary_truncation_is_strict_prefix(
        n in 1u64..25,
        cut_frac in 0.0f64..1.0,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("trunc", case);
        let mut tree = SceneTree::new();
        let (mut wal, _) = Wal::open(&dir, 1 << 20, false).unwrap();
        for seq in 1..=n {
            let id = tree.allocate_id();
            let update = SceneUpdate::AddNode {
                id,
                parent: tree.root(),
                name: format!("n{seq}"),
                kind: NodeKind::Group,
            };
            update.apply(&mut tree).unwrap();
            wal.append(&AuditEntry {
                at_secs: seq as f64,
                stamped: StampedUpdate { seq, origin: "prop".into(), update },
            }).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // One segment (1 MiB cap): cut it anywhere past the header.
        let (_, seg) = rave::store::segment::list_segments(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&seg).unwrap();
        let min = rave::store::segment::SEGMENT_HEADER_LEN;
        let cut = min + ((bytes.len() - min) as f64 * cut_frac) as usize;
        std::fs::write(&seg, &bytes[..cut]).unwrap();

        let rec = rave::store::recover(&dir).unwrap();
        // A strict prefix: seqs 1..=k for some k <= n, each fully applied.
        prop_assert!(rec.last_seq <= n);
        prop_assert_eq!(rec.entries.len() as u64, rec.last_seq);
        for (i, e) in rec.entries.iter().enumerate() {
            prop_assert_eq!(e.stamped.seq, i as u64 + 1);
        }
        // And the recovered tree is exactly the prefix state.
        let mut prefix = SceneTree::new();
        for e in &rec.entries {
            e.stamped.update.apply(&mut prefix).unwrap();
        }
        prop_assert_eq!(&rec.tree, &prefix);
        // Cutting inside record i's bytes loses at most record i and
        // later: everything before the cut's record boundary survives.
        let full_records = {
            let scan = scan_records(&bytes[min..cut]);
            scan.payloads.len() as u64
        };
        prop_assert_eq!(rec.last_seq, full_records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn truncation_sweep_every_byte_of_a_small_log() {
    // Exhaustive companion to the random property: a 5-entry log cut at
    // every single byte offset.
    let dir = tmp_dir("sweep", 0);
    let mut tree = SceneTree::new();
    let (mut wal, _) = Wal::open(&dir, 1 << 20, false).unwrap();
    for seq in 1..=5 {
        let id = tree.allocate_id();
        let update = SceneUpdate::AddNode {
            id,
            parent: tree.root(),
            name: format!("n{seq}"),
            kind: NodeKind::Group,
        };
        update.apply(&mut tree).unwrap();
        wal.append(&AuditEntry {
            at_secs: seq as f64,
            stamped: StampedUpdate { seq, origin: "sweep".into(), update },
        })
        .unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let (_, seg) = rave::store::segment::list_segments(&dir).unwrap().pop().unwrap();
    let bytes = std::fs::read(&seg).unwrap();
    let min = rave::store::segment::SEGMENT_HEADER_LEN;
    let mut last_seen = 0;
    for cut in min..=bytes.len() {
        std::fs::write(&seg, &bytes[..cut]).unwrap();
        let rec = rave::store::recover(&dir).unwrap();
        assert!(rec.last_seq >= last_seen, "prefix length monotone in cut at {cut}");
        assert_eq!(rec.entries.len() as u64, rec.last_seq);
        last_seen = rec.last_seq;
        assert_eq!(RECORD_HEADER_LEN, 8, "framing constant the offsets in this sweep rely on");
    }
    assert_eq!(last_seen, 5, "full file recovers everything");
    std::fs::remove_dir_all(&dir).unwrap();
}
