//! Parity pins for the unified scheduler refactor: the new
//! `sched::placement` engine must produce byte-for-byte the same plans as
//! the pre-refactor planners. Reference copies of the old first-fit-
//! decreasing dataset planner and the old feedback-weighted tile planner
//! are embedded here verbatim (modulo naming) and compared against the
//! live implementations across seeded scenarios, including ones that
//! force spatial splits.

use rave::core::capacity::CapacityReport;
use rave::core::distribution::{plan_distribution, split_node, DistributionPlan, PlanError};
use rave::core::tiles::{plan_tiles, plan_tiles_with_feedback, TileCostTracker, TilePlan};
use rave::core::RenderServiceId;
use rave::math::{Vec3, Viewport};
use rave::scene::{MeshData, NodeCost, NodeId, NodeKind, SceneTree};
use std::sync::Arc;

fn strip_mesh(tris: u32) -> MeshData {
    let mut positions = Vec::with_capacity((tris as usize + 1) * 2);
    let mut triangles = Vec::with_capacity(tris as usize);
    for i in 0..=tris {
        positions.push(Vec3::new(i as f32, 0.0, 0.0));
        positions.push(Vec3::new(i as f32, 1.0, 0.0));
    }
    for i in 0..tris {
        let b = i * 2;
        triangles.push([b, b + 2, b + 3]);
    }
    MeshData::new(positions, triangles)
}

fn report(id: u64, polys: u64) -> CapacityReport {
    CapacityReport {
        service: RenderServiceId(id),
        host: format!("h{id}"),
        polys_per_sec: 1e7,
        poly_headroom: polys,
        texture_headroom: 1 << 40,
        volume_hw: false,
        assigned: NodeCost::ZERO,
        rolling_fps: None,
    }
}

/// The pre-refactor `plan_distribution` packing loop, kept as the parity
/// reference: headroom ledger most-spacious-first (id ascending on ties,
/// re-sorted after every placement), FIFO queue sorted by descending
/// render weight, larger split half requeued first.
fn reference_plan(
    scene: &mut SceneTree,
    candidates: &[CapacityReport],
) -> Result<DistributionPlan, PlanError> {
    if candidates.is_empty() {
        return Err(PlanError::NoCandidates);
    }
    let demand = scene.total_cost();
    let total_polys = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.poly_headroom));
    let total_tex = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.texture_headroom));
    if demand.polygons > total_polys || demand.texture_bytes > total_tex {
        return Err(PlanError::InsufficientResources {
            required_polygons: demand.polygons,
            total_poly_headroom: total_polys,
            required_texture: demand.texture_bytes,
            total_texture_headroom: total_tex,
        });
    }

    let mut remaining: Vec<(RenderServiceId, u64, u64)> =
        candidates.iter().map(|c| (c.service, c.poly_headroom, c.texture_headroom)).collect();
    remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut queue: Vec<(NodeId, NodeCost)> = scene
        .find_all(|n| {
            !n.own_cost().is_zero()
                && !matches!(n.kind(), NodeKind::Avatar(_) | NodeKind::Camera(_))
        })
        .into_iter()
        .map(|id| (id, scene.node(id).expect("found").own_cost()))
        .collect();
    queue.sort_by(|a, b| b.1.render_weight().cmp(&a.1.render_weight()).then(a.0.cmp(&b.0)));
    let mut assignments: std::collections::BTreeMap<RenderServiceId, (Vec<NodeId>, NodeCost)> =
        std::collections::BTreeMap::new();
    let mut splits = 0u32;

    while !queue.is_empty() {
        let (id, cost) = queue.remove(0);
        let slot = remaining
            .iter_mut()
            .find(|(_, polys, tex)| cost.polygons <= *polys && cost.texture_bytes <= *tex);
        match slot {
            Some((svc, polys, tex)) => {
                *polys -= cost.polygons;
                *tex -= cost.texture_bytes;
                let entry = assignments.entry(*svc).or_default();
                entry.0.push(id);
                entry.1 += cost;
                remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            None => match split_node(scene, id) {
                Some((a, b)) => {
                    splits += 1;
                    let ca = scene.node(a).expect("split child").own_cost();
                    let cb = scene.node(b).expect("split child").own_cost();
                    if ca.render_weight() >= cb.render_weight() {
                        queue.insert(0, (a, ca));
                        queue.insert(1, (b, cb));
                    } else {
                        queue.insert(0, (b, cb));
                        queue.insert(1, (a, ca));
                    }
                }
                None => {
                    return Err(PlanError::IndivisibleNode {
                        node: id,
                        polygons: cost.polygons,
                        largest_headroom: remaining.iter().map(|(_, p, _)| *p).max().unwrap_or(0),
                    });
                }
            },
        }
    }

    Ok(DistributionPlan {
        assignments: assignments
            .into_iter()
            .map(|(service, (nodes, cost))| rave::core::distribution::Assignment {
                service,
                nodes,
                cost,
            })
            .collect(),
        splits_performed: splits,
    })
}

/// The pre-refactor feedback-weighted tile planner, kept as the parity
/// reference.
fn reference_tiles_with_feedback(
    viewport: &Viewport,
    owner: RenderServiceId,
    helpers: &[CapacityReport],
    tracker: &TileCostTracker,
) -> TilePlan {
    let mut ordered: Vec<&CapacityReport> =
        helpers.iter().filter(|r| r.headroom_weight() > 0).collect();
    ordered.sort_by_key(|r| std::cmp::Reverse(r.headroom_weight()));
    ordered.truncate(viewport.width.saturating_sub(1) as usize);
    if tracker.observed_services() == 0 || viewport.width == 0 {
        return plan_tiles(viewport, owner, helpers);
    }
    let participants: Vec<RenderServiceId> =
        std::iter::once(owner).chain(ordered.iter().map(|r| r.service)).collect();
    let known: Vec<f64> = participants.iter().filter_map(|&svc| tracker.throughput(svc)).collect();
    let mean = known.iter().sum::<f64>() / known.len().max(1) as f64;
    let max = known.iter().cloned().fold(mean, f64::max).max(1e-12);
    let weights: Vec<u64> = participants
        .iter()
        .map(|&svc| {
            let rate = tracker.throughput(svc).unwrap_or(mean);
            ((rate / max * 1000.0).round() as u64).max(1)
        })
        .collect();
    let cells = viewport.split_columns_weighted(&weights);
    TilePlan { tiles: cells.into_iter().zip(participants).collect() }
}

/// Deterministic scenario generator (LCG; no RNG dependency).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn scene_with_meshes(sizes: &[u64]) -> SceneTree {
    let mut scene = SceneTree::new();
    let root = scene.root();
    for (i, &s) in sizes.iter().enumerate() {
        scene
            .add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(strip_mesh(s as u32))))
            .unwrap();
    }
    scene
}

#[test]
fn dataset_plans_match_the_pre_refactor_planner() {
    let mut rng = Lcg(0x5eed_0004);
    for round in 0..40 {
        let n_meshes = rng.in_range(1, 9) as usize;
        let sizes: Vec<u64> = (0..n_meshes).map(|_| rng.in_range(2, 5_000)).collect();
        let n_services = rng.in_range(1, 6) as usize;
        let caps: Vec<u64> = (0..n_services).map(|_| rng.in_range(100, 7_000)).collect();
        let reports: Vec<CapacityReport> =
            caps.iter().enumerate().map(|(i, &c)| report(i as u64 + 1, c)).collect();

        let mut scene_new = scene_with_meshes(&sizes);
        let mut scene_ref = scene_new.clone();
        let new = plan_distribution(&mut scene_new, &reports);
        let old = reference_plan(&mut scene_ref, &reports);
        assert_eq!(new, old, "round {round}: sizes {sizes:?}, caps {caps:?}");
        // Both planners split identically, so the mutated master scenes
        // must agree node for node too.
        assert_eq!(scene_new.len(), scene_ref.len(), "round {round}: scene shapes diverged");
    }
}

#[test]
fn split_heavy_scenarios_match_the_pre_refactor_planner() {
    // Every node oversized for every service, forcing the splitter path
    // on each queue pop until the halves fit: the maximum-stress case for
    // the front-requeue order (split halves must be re-examined before
    // anything already queued, even heavier items further back).
    let mut rng = Lcg(0x5eed_0006);
    for round in 0..20 {
        let n_meshes = rng.in_range(1, 6) as usize;
        // All meshes larger than the biggest service cap below.
        let sizes: Vec<u64> = (0..n_meshes).map(|_| rng.in_range(2_000, 12_000)).collect();
        // Enough sub-mesh-sized services that the plan is feasible and
        // the splitter must actually run (never the refusal path).
        let demand: u64 = sizes.iter().sum();
        let n_services = (demand / 1_000 + 2) as usize;
        let caps: Vec<u64> = (0..n_services).map(|_| rng.in_range(1_000, 1_900)).collect();
        let reports: Vec<CapacityReport> =
            caps.iter().enumerate().map(|(i, &c)| report(i as u64 + 1, c)).collect();

        let mut scene_new = scene_with_meshes(&sizes);
        let mut scene_ref = scene_new.clone();
        let new = plan_distribution(&mut scene_new, &reports);
        let old = reference_plan(&mut scene_ref, &reports);
        assert_eq!(new, old, "round {round}: sizes {sizes:?}, caps {caps:?}");
        assert_eq!(scene_new.len(), scene_ref.len(), "round {round}: scene shapes diverged");
        let plan = new.expect("feasible by construction");
        assert!(plan.splits_performed >= n_meshes as u32, "every node had to split");
    }
}

mod queue_ledger_proptest {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The new VecDeque queue + incrementally-resifted ledger must
        /// produce plans identical to the embedded pre-refactor planner on
        /// arbitrary scenes up to 2k nodes, mixed fitting/oversized.
        #[test]
        fn plans_identical_up_to_2k_nodes(
            seed in any::<u64>(),
            n_meshes in 1usize..2_000,
            n_services in 1usize..12,
        ) {
            let mut rng = Lcg(seed | 1);
            let sizes: Vec<u64> = (0..n_meshes).map(|_| rng.in_range(2, 600)).collect();
            let caps: Vec<u64> =
                (0..n_services).map(|_| rng.in_range(200, 80_000)).collect();
            let reports: Vec<CapacityReport> =
                caps.iter().enumerate().map(|(i, &c)| report(i as u64 + 1, c)).collect();

            let mut scene_new = scene_with_meshes(&sizes);
            let mut scene_ref = scene_new.clone();
            let new = plan_distribution(&mut scene_new, &reports);
            let old = reference_plan(&mut scene_ref, &reports);
            prop_assert_eq!(new, old);
            prop_assert_eq!(scene_new.len(), scene_ref.len());
        }
    }
}

#[test]
fn dataset_plan_splits_are_pinned() {
    // One 4000-triangle mesh over two 2500-headroom services: exactly one
    // split, both halves placed.
    let mut scene = scene_with_meshes(&[4_000]);
    let reports = vec![report(1, 2_500), report(2, 2_500)];
    let mut scene_ref = scene.clone();
    let new = plan_distribution(&mut scene, &reports).unwrap();
    let old = reference_plan(&mut scene_ref, &reports).unwrap();
    assert_eq!(new, old);
    assert_eq!(new.splits_performed, 1);
    assert_eq!(new.total_cost().polygons, 4_000);
}

mod incremental_parity {
    //! The incremental replanner must be *exact*: after any sequence of
    //! scene edits, (a) `PlanState::assignments()` equals a cold
    //! `plan_distribution` of the final (post-split) scene, and (b) the
    //! emitted [`PlanDiff`]s, applied move by move, reconstruct that same
    //! assignment — the "identical migration set modulo no-ops" pin.

    use super::*;
    use rave::core::capacity::Headroom;
    use rave::core::distribution::plan_incremental;
    use rave::core::sched::{PlanDiff, PlanState};
    use rave::scene::NodeCost;
    use std::collections::BTreeMap;

    fn basis(caps: &[u64]) -> Vec<(RenderServiceId, Headroom)> {
        caps.iter()
            .enumerate()
            .map(|(i, &c)| {
                (RenderServiceId(i as u64 + 1), Headroom { polygons: c, texture_bytes: 1 << 40 })
            })
            .collect()
    }

    /// Cold-plan a clone of the scene over the same capacity basis. The
    /// incremental engine guarantees equality against the cold plan of
    /// the *final* scene — splits it performed are already in the master,
    /// so the verification plan must not need any further ones.
    fn cold_assignments(
        scene: &SceneTree,
        caps: &[u64],
    ) -> Vec<(RenderServiceId, Vec<NodeId>, NodeCost)> {
        let reports: Vec<CapacityReport> =
            caps.iter().enumerate().map(|(i, &c)| report(i as u64 + 1, c)).collect();
        let mut clone = scene.clone();
        let plan = plan_distribution(&mut clone, &reports).expect("feasible by construction");
        assert_eq!(plan.splits_performed, 0, "verification plan re-splits a settled scene");
        plan.assignments.into_iter().map(|a| (a.service, a.nodes, a.cost)).collect()
    }

    /// Apply a diff to a node→service map, asserting each entry's `from`
    /// side matches what the map currently says — i.e. the diff is the
    /// exact delta between consecutive plans, with no phantom moves.
    fn apply_diff(applied: &mut BTreeMap<NodeId, RenderServiceId>, diff: &PlanDiff) {
        for &(node, from, to) in &diff.moved {
            assert_eq!(applied.insert(node, to), from, "move of {node} misstates its origin");
        }
        for &(node, svc) in &diff.dropped {
            assert_eq!(applied.remove(&node), Some(svc), "drop of {node} misstates its holder");
        }
    }

    fn flatten(
        assignments: &[(RenderServiceId, Vec<NodeId>, NodeCost)],
    ) -> BTreeMap<NodeId, RenderServiceId> {
        assignments
            .iter()
            .flat_map(|(svc, nodes, _)| nodes.iter().map(move |&n| (n, *svc)))
            .collect()
    }

    #[test]
    fn incremental_replans_match_cold_plans_across_edit_storms() {
        let mut rng = Lcg(0x5eed_0007);
        for round in 0..15 {
            let n_meshes = rng.in_range(2, 10) as usize;
            let sizes: Vec<u64> = (0..n_meshes).map(|_| rng.in_range(2, 4_000)).collect();
            let n_services = rng.in_range(2, 6) as usize;
            // Ample room: the storm never forces splits or refusals, so
            // every divergence is an engine bug, not a feasibility edge.
            let caps: Vec<u64> = (0..n_services).map(|_| rng.in_range(60_000, 100_000)).collect();

            let mut scene = scene_with_meshes(&sizes);
            let mut state = PlanState::new();
            let mut applied = BTreeMap::new();
            let diff = plan_incremental(&mut scene, &basis(&caps), &mut state, 0.0)
                .unwrap()
                .expect("the first plan is never deferred");
            apply_diff(&mut applied, &diff);
            assert_eq!(state.assignments(), cold_assignments(&scene, &caps), "round {round}");

            let mut live: Vec<NodeId> = scene.find_all(|n| !n.own_cost().is_zero());
            for step in 0..10 {
                if rng.in_range(0, 3) == 0 && live.len() > 1 {
                    let victim = live.remove((rng.next() as usize) % live.len());
                    scene.remove(victim).unwrap();
                } else {
                    let root = scene.root();
                    let tris = rng.in_range(2, 4_000) as u32;
                    let id = scene
                        .add_node(
                            root,
                            format!("s{step}"),
                            NodeKind::Mesh(Arc::new(strip_mesh(tris))),
                        )
                        .unwrap();
                    live.push(id);
                }
                let diff = plan_incremental(&mut scene, &basis(&caps), &mut state, 0.0)
                    .unwrap()
                    .expect("max_staleness 0 replans on any dirt");
                apply_diff(&mut applied, &diff);
                let want = cold_assignments(&scene, &caps);
                assert_eq!(state.assignments(), want, "round {round} step {step}");
                assert_eq!(flatten(&want), applied, "round {round} step {step}: diffs drifted");
            }
        }
    }

    #[test]
    fn incremental_split_storms_match_cold_plans_of_the_final_scene() {
        // Every mesh oversized for every service: the splitter runs both
        // inside the initial rebuild and inside each incremental replay,
        // and the equality target is the cold plan of the *post-split*
        // master (split children are ordinary queue items by then).
        let mut rng = Lcg(0x5eed_0009);
        for round in 0..10 {
            let n_meshes = rng.in_range(1, 5) as usize;
            let sizes: Vec<u64> = (0..n_meshes).map(|_| rng.in_range(2_000, 9_000)).collect();
            // Capacity covers the initial meshes plus the four storm
            // inserts below (≤ 9k triangles each), in sub-mesh slots.
            let demand: u64 = sizes.iter().sum::<u64>() + 4 * 9_000;
            let n_services = (demand / 1_000 + 2) as usize;
            let caps: Vec<u64> = (0..n_services).map(|_| rng.in_range(1_000, 1_900)).collect();

            let mut scene = scene_with_meshes(&sizes);
            let mut state = PlanState::new();
            let mut applied = BTreeMap::new();
            let mut splits = 0u32;
            let diff = plan_incremental(&mut scene, &basis(&caps), &mut state, 0.0)
                .unwrap()
                .expect("the first plan is never deferred");
            splits += diff.splits;
            apply_diff(&mut applied, &diff);
            assert_eq!(state.assignments(), cold_assignments(&scene, &caps), "round {round}");

            for step in 0..4 {
                let root = scene.root();
                let tris = rng.in_range(2_000, 9_000) as u32;
                let id = scene
                    .add_node(root, format!("s{step}"), NodeKind::Mesh(Arc::new(strip_mesh(tris))))
                    .unwrap();
                let _ = id;
                let diff = plan_incremental(&mut scene, &basis(&caps), &mut state, 0.0)
                    .unwrap()
                    .expect("max_staleness 0 replans on any dirt");
                splits += diff.splits;
                apply_diff(&mut applied, &diff);
                let want = cold_assignments(&scene, &caps);
                assert_eq!(state.assignments(), want, "round {round} step {step}");
                assert_eq!(flatten(&want), applied, "round {round} step {step}: diffs drifted");
            }
            assert!(
                splits >= (n_meshes + 4) as u32,
                "round {round}: every oversized node had to split (saw {splits})"
            );
        }
    }
}

#[test]
fn tile_plans_match_the_pre_refactor_planner() {
    let mut rng = Lcg(0x5eed_0005);
    let owner = RenderServiceId(1);
    for round in 0..40 {
        let vp = Viewport::new(rng.in_range(1, 1_024) as u32, 256);
        let n_helpers = rng.in_range(0, 5) as usize;
        let helpers: Vec<CapacityReport> =
            (0..n_helpers).map(|i| report(i as u64 + 2, rng.in_range(0, 500_000))).collect();
        let mut tracker = TileCostTracker::new();
        for _ in 0..rng.in_range(0, 8) {
            let svc = RenderServiceId(rng.in_range(1, n_helpers as u64 + 2));
            tracker.record(svc, rng.in_range(1_000, 900_000), 0.01 * rng.in_range(1, 90) as f64);
        }
        let new = plan_tiles_with_feedback(&vp, owner, &helpers, &tracker);
        let old = reference_tiles_with_feedback(&vp, owner, &helpers, &tracker);
        assert_eq!(new.tiles, old.tiles, "round {round}");
    }
}
