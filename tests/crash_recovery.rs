//! Crash recovery end-to-end: a collaborative session persisted through
//! the rave-store WAL + snapshot checkpoints, a data-service crash that
//! tears the final log record, and a replacement service that recovers
//! the session and re-mirrors every subscribed render service.

use rave::core::bootstrap::{connect_render_service, recover_data_service};
use rave::core::collaboration::{join_session, move_camera, reattach_participant};
use rave::core::trace::TraceKind;
use rave::core::world::{publish_update, RaveWorld};
use rave::core::RaveConfig;
use rave::math::Vec3;
use rave::scene::{CameraParams, InterestSet, NodeKind, SceneUpdate, Transform};
use rave::sim::Simulation;
use rave::store::StoreConfig;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rave-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Simulate the crash artifact: a torn final record, as if the process
/// died mid-`write` of an append that never reached any subscriber.
fn tear_wal_tail(dir: &PathBuf) {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|d| d.ok())
        .map(|d| d.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let active = segs.last().expect("a WAL segment exists");
    let mut bytes = std::fs::read(active).unwrap();
    // A record header promising 200 payload bytes, followed by only 4:
    // exactly what a crash mid-append leaves behind.
    bytes.extend_from_slice(&200u32.to_le_bytes());
    bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    bytes.extend_from_slice(&[0x55; 4]);
    std::fs::write(active, &bytes).unwrap();
}

#[test]
fn session_survives_data_service_crash() {
    let dir = tmp_dir("failover");
    let mut cfg = RaveConfig::default();
    cfg.checkpoint_every = 8; // checkpoint often so the WAL tail stays short
    let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 7001));

    // A persistent session: every commit is WAL-logged, with periodic
    // snapshot checkpoints and compaction.
    let ds = sim.world.spawn_data_service("adrenochrome", "skull-session");
    sim.world
        .data_mut(ds)
        .attach_store(
            &dir,
            StoreConfig { checkpoint_every: 8, segment_max_bytes: 512, ..Default::default() },
        )
        .unwrap();

    // A render service mirrors the session; a user joins and works.
    let rs = sim.world.spawn_render_service("tower");
    connect_render_service(&mut sim, rs, ds, InterestSet::everything());
    sim.run();
    let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
    let who = join_session(&mut sim, ds, "Desktop", Vec3::Y, cam).unwrap();
    let mut objects = Vec::new();
    for i in 0..20 {
        let (id, root) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            (scene.allocate_id(), scene.root())
        };
        publish_update(
            &mut sim,
            ds,
            "Desktop",
            SceneUpdate::AddNode {
                id,
                parent: root,
                name: format!("obj-{i}"),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        objects.push(id);
    }
    for (i, &id) in objects.iter().enumerate() {
        publish_update(
            &mut sim,
            ds,
            "Desktop",
            SceneUpdate::SetTransform {
                id,
                transform: Transform::from_translation(Vec3::new(i as f32, 0.0, 0.0)),
            },
        )
        .unwrap();
    }
    let mut cam2 = cam;
    cam2.orbit(Vec3::ZERO, 0.4, 0.1);
    move_camera(&mut sim, ds, who, "Desktop", cam2).unwrap();
    sim.run();

    // Quiescent: the mirror is exactly the master, and checkpoints ran.
    let pre_crash_mirror = sim.world.render(rs).scene.clone();
    assert_eq!(pre_crash_mirror, sim.world.data(ds).scene);
    assert!(sim.world.trace.count(TraceKind::Checkpoint) >= 2, "periodic checkpoints traced");

    // Crash: the data-service process dies mid-append. The torn record
    // was never applied anywhere — it is not part of the session.
    tear_wal_tail(&dir);
    let new_ds = recover_data_service(&mut sim, ds, "v880z", &dir).unwrap();
    assert_ne!(new_ds, ds);

    // The replacement recovered exactly the pre-crash state...
    assert_eq!(sim.world.data(new_ds).scene, pre_crash_mirror);
    assert_eq!(sim.world.trace.count(TraceKind::Recovery), 1);
    let detail = &sim.world.trace.first_of(TraceKind::Recovery).unwrap().detail;
    assert!(detail.contains("1 subscriber(s)"), "trace: {detail}");

    // ...the user re-finds their avatar instead of duplicating it...
    let who2 = reattach_participant(&sim.world.data(new_ds).scene, "Desktop").unwrap();
    assert_eq!(who2.avatar, who.avatar);

    // ...and the subscriber re-mirrors and receives fresh updates.
    sim.run();
    assert_eq!(sim.world.render(rs).scene, pre_crash_mirror);
    let (id, root) = {
        let scene = &mut sim.world.data_mut(new_ds).scene;
        (scene.allocate_id(), scene.root())
    };
    publish_update(
        &mut sim,
        new_ds,
        "Desktop",
        SceneUpdate::AddNode { id, parent: root, name: "post-crash".into(), kind: NodeKind::Group },
    )
    .unwrap();
    sim.run();
    assert!(
        sim.world.render(rs).scene.contains(id),
        "replacement streams to re-mirrored subscriber"
    );

    // The post-crash update went into the same store: a second crash
    // right now would still recover it.
    let rec = rave::store::recover(&dir).unwrap();
    assert!(rec.tree.contains(id));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_bounds_store_size_over_long_session() {
    let dir = tmp_dir("bounded");
    let mut cfg = RaveConfig::default();
    cfg.checkpoint_every = 32;
    let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 7002));
    let ds = sim.world.spawn_data_service("adrenochrome", "marathon");
    sim.world
        .data_mut(ds)
        .attach_store(
            &dir,
            StoreConfig { checkpoint_every: 32, segment_max_bytes: 2048, ..Default::default() },
        )
        .unwrap();
    let (id, root) = {
        let scene = &mut sim.world.data_mut(ds).scene;
        (scene.allocate_id(), scene.root())
    };
    publish_update(
        &mut sim,
        ds,
        "u",
        SceneUpdate::AddNode { id, parent: root, name: "obj".into(), kind: NodeKind::Group },
    )
    .unwrap();
    for i in 0..1000 {
        publish_update(
            &mut sim,
            ds,
            "u",
            SceneUpdate::SetTransform {
                id,
                transform: Transform::from_translation(Vec3::new(i as f32, 0.0, 0.0)),
            },
        )
        .unwrap();
    }
    sim.run();
    // ~1000 transform updates would be ~60 KB of raw log; compaction
    // keeps the store to one small snapshot + the live segments.
    let mut disk = 0;
    for d in std::fs::read_dir(&dir).unwrap() {
        disk += d.unwrap().metadata().unwrap().len();
    }
    assert!(disk < 16 * 1024, "store is {disk} bytes, compaction not bounding it");
    let rec = rave::store::recover(&dir).unwrap();
    assert_eq!(rec.last_seq, 1001);
    assert_eq!(rec.tree, sim.world.data(ds).scene);
    std::fs::remove_dir_all(&dir).unwrap();
}
