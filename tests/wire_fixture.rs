//! Snapshot wire-format stability pin.
//!
//! `tests/fixtures/scene_v1.bin` holds a scene encoded by the *pre-arena*
//! `BTreeMap`-backed tree. Any storage refactor must decode those bytes
//! into an identical tree and re-encode them byte-for-byte, or every WAL
//! checkpoint written by an earlier build becomes unreadable. The fixture
//! is checked in; regenerate (only when the format is deliberately
//! revised) with `REGEN_SCENE_FIXTURE=1 cargo test --test wire_fixture`.

use rave_math::{Quat, Vec3};
use rave_scene::wire::{decode_tree, encode_tree};
use rave_scene::{
    AvatarInfo, CameraParams, MeshData, NodeKind, PointCloudData, SceneTree, SceneUpdate,
    Transform, VolumeData,
};
use std::path::PathBuf;
use std::sync::Arc;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scene_v1.bin")
}

/// A scene exercising every node kind, non-trivial transforms, version
/// bumps, renames, and a removal that burns an id (so `next_id` differs
/// from the live id range). Fully deterministic.
fn fixture_scene() -> SceneTree {
    let mut t = SceneTree::new();
    let root = t.root();
    let grp = t.add_node(root, "galleon", NodeKind::Group).unwrap();
    t.set_transform(grp, Transform::from_translation(Vec3::new(1.5, -2.0, 0.25)));

    let mut mesh = MeshData::new(
        vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
        vec![[0, 1, 2], [0, 2, 3], [1, 2, 3]],
    );
    mesh.normals = vec![Vec3::Z, Vec3::Z, Vec3::Z, Vec3::Z];
    mesh.colors = vec![Vec3::ONE, Vec3::X, Vec3::Y, Vec3::Z];
    mesh.texture_bytes = 4096;
    let hull = t.add_node(grp, "hull", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    t.set_transform(
        hull,
        Transform {
            translation: Vec3::new(0.0, 3.0, 0.0),
            rotation: Quat::from_axis_angle(Vec3::Y, 0.7),
            scale: Vec3::splat(2.0),
        },
    );

    let mut cloud = PointCloudData::new(vec![Vec3::X, Vec3::Y, Vec3::Z, Vec3::ONE]);
    cloud.colors = vec![Vec3::X, Vec3::Y, Vec3::Z, Vec3::ONE];
    cloud.point_size = 2.5;
    t.add_node(grp, "spray", NodeKind::PointCloud(Arc::new(cloud))).unwrap();

    let vol = VolumeData::new([2, 3, 2], Vec3::new(1.0, 0.5, 2.0), (0u8..12).collect());
    let vol_id = t.add_node(root, "fog", NodeKind::Volume(Arc::new(vol))).unwrap();

    let cam = CameraParams::look_at(Vec3::new(5.0, 4.0, 3.0), Vec3::ZERO, Vec3::Y);
    let cam_id = t.add_node(root, "cam-desktop", NodeKind::Camera(cam)).unwrap();

    let avatar = AvatarInfo {
        label: "Desktop".into(),
        color: Vec3::new(0.2, 0.4, 0.9),
        camera: CameraParams::look_at(Vec3::new(-3.0, 1.0, 0.0), Vec3::ZERO, Vec3::Y),
    };
    t.add_node(root, "avatar-desktop", NodeKind::Avatar(avatar)).unwrap();

    // Version bumps through the real update path.
    SceneUpdate::SetName { id: hull, name: "hull-renamed".into() }.apply(&mut t).unwrap();
    SceneUpdate::SetTransform {
        id: vol_id,
        transform: Transform::from_translation(Vec3::new(0.0, 0.0, -4.0)),
    }
    .apply(&mut t)
    .unwrap();
    SceneUpdate::CameraMoved {
        id: cam_id,
        camera: CameraParams::look_at(Vec3::new(6.0, 4.0, 3.0), Vec3::ZERO, Vec3::Y),
    }
    .apply(&mut t)
    .unwrap();

    // Burn an id: allocator state must survive the round-trip.
    let doomed = t.add_node(grp, "doomed", NodeKind::Group).unwrap();
    t.remove(doomed).unwrap();
    t
}

#[test]
fn fixture_bytes_decode_and_reencode_byte_identically() {
    let path = fixture_path();
    if std::env::var("REGEN_SCENE_FIXTURE").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_tree(&fixture_scene())).unwrap();
    }
    let bytes = std::fs::read(&path).expect("fixture present (checked in)");

    // The decoded tree must be structurally whole and re-encode to the
    // exact pre-refactor bytes.
    let decoded = decode_tree(&bytes).unwrap();
    decoded.check_invariants().unwrap();
    assert_eq!(encode_tree(&decoded), bytes, "re-encode must be byte-identical");

    // The current encoder must still produce those bytes from scratch:
    // iteration order, allocator state, and versions are all pinned.
    let rebuilt = fixture_scene();
    assert_eq!(encode_tree(&rebuilt), bytes, "fresh encode must match the fixture");

    // The JSON serde shape (the human-inspectable session format) is
    // pinned by a sibling fixture: same scene, same stability contract.
    let json_path = path.with_file_name("scene_v1.json");
    if std::env::var("REGEN_SCENE_FIXTURE").as_deref() == Ok("1") {
        std::fs::write(&json_path, serde_json::to_string(&fixture_scene()).unwrap()).unwrap();
    }
    let json = std::fs::read_to_string(&json_path).expect("json fixture present");
    assert_eq!(serde_json::to_string(&rebuilt).unwrap(), json, "serde shape pinned");
    let from_json: SceneTree = serde_json::from_str(&json).unwrap();
    from_json.check_invariants().unwrap();
    assert_eq!(encode_tree(&from_json), bytes, "json-decoded tree matches wire bytes");

    // Spot checks that decode landed in the right shape.
    assert_eq!(decoded.len(), rebuilt.len());
    let hull = decoded.find_by_path("/galleon/hull-renamed").expect("renamed mesh present");
    assert_eq!(decoded.subtree_cost(hull).polygons, 3);
    let mut a = decoded.clone();
    let mut b = rebuilt.clone();
    assert_eq!(a.allocate_id(), b.allocate_id(), "allocator state pinned");
}
