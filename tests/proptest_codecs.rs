//! Property tests on every serialization boundary: image codecs, the
//! binary frame protocol, SOAP, and the PLY/OBJ model formats.

use proptest::prelude::*;
use rave::compress::{delta, rle, stream, Codec};
use rave::grid::{SoapCodec, SoapEnvelope, SoapValue};
use rave::math::Vec3;
use rave::net::{Frame, FrameKind};
use rave::scene::MeshData;

/// A shared 2-thread pool for the thread-invariance property (built once;
/// per-case pool spawning would dominate the test).
fn two_thread_pool() -> &'static rayon::ThreadPool {
    static POOL: std::sync::OnceLock<rayon::ThreadPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap())
}

fn rgb_frame() -> impl Strategy<Value = Vec<u8>> {
    // Pixel count then content mode: flat runs, gradients, or noise —
    // exercising best and worst cases of each codec.
    (1usize..2000, 0u8..3, any::<u64>()).prop_map(|(px, mode, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..px * 3)
            .map(|i| match mode {
                0 => 37,                     // flat
                1 => ((i / 30) % 251) as u8, // gradient bands
                _ => (next() >> 32) as u8,   // noise
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lossless codecs roundtrip any frame exactly; lossy ones bound the
    /// per-channel error by the quantization step.
    #[test]
    fn image_codecs_roundtrip(frame in rgb_frame(), prev in rgb_frame()) {
        for codec in Codec::ALL {
            let prev_arg = if prev.len() == frame.len() { Some(&prev[..]) } else { None };
            let enc = codec.encode(&frame, prev_arg);
            let dec = codec.decode(&enc, prev_arg).expect("decodable");
            prop_assert_eq!(dec.len(), frame.len(), "{}", codec.name());
            if codec.is_lossy() {
                for (a, b) in frame.iter().zip(&dec) {
                    prop_assert!((*a as i16 - *b as i16).abs() <= 8, "{}", codec.name());
                }
            } else {
                prop_assert_eq!(&dec, &frame, "{}", codec.name());
            }
        }
    }

    /// The word-wide production kernels emit the exact byte stream of the
    /// scalar reference encoders, for any content.
    #[test]
    fn wordwide_kernels_match_scalar(frame in rgb_frame(), prev in rgb_frame()) {
        prop_assert_eq!(rle::encode(&frame), rle::encode_scalar(&frame));
        let prev_arg = if prev.len() == frame.len() { Some(&prev[..]) } else { None };
        prop_assert_eq!(delta::encode(&frame, prev_arg), delta::encode_scalar(&frame, prev_arg));
        prop_assert_eq!(delta::encode(&frame, None), delta::encode_scalar(&frame, None));
    }

    /// The dirty-strip container roundtrips any frame under every codec
    /// and strip count (exactly for lossless codecs, within the RGB565
    /// bound for lossy ones), and its bytes do not depend on the rayon
    /// thread count.
    #[test]
    fn strip_container_roundtrips(
        frame in rgb_frame(),
        prev in rgb_frame(),
        strips in 0u16..40,
    ) {
        let prev_arg = if prev.len() == frame.len() { Some(&prev[..]) } else { None };
        for codec in Codec::ALL {
            let enc = stream::encode_frame(codec, &frame, prev_arg, prev_arg, strips);
            let enc2 = two_thread_pool().install(|| {
                stream::encode_frame(codec, &frame, prev_arg, prev_arg, strips)
            });
            prop_assert_eq!(&enc, &enc2, "thread-count invariant ({})", codec.name());
            let dec = stream::decode_frame(&enc, prev_arg).expect("decodable");
            prop_assert_eq!(dec.len(), frame.len(), "{}", codec.name());
            if codec.is_lossy() {
                for (a, b) in frame.iter().zip(&dec) {
                    prop_assert!((*a as i16 - *b as i16).abs() <= 8, "{}", codec.name());
                }
            } else {
                prop_assert_eq!(&dec, &frame, "{}", codec.name());
            }
        }
    }

    /// Decoders must refuse arbitrary garbage with `None`, never panic:
    /// raw codec payloads, and stream containers both from whole cloth
    /// and from a single corrupted byte in a valid container.
    #[test]
    fn decoders_never_panic_on_corrupt_input(
        garbage in prop::collection::vec(any::<u8>(), 0..600),
        frame in rgb_frame(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..255,
    ) {
        for codec in Codec::ALL {
            let _ = codec.decode(&garbage, None);
            let _ = codec.decode(&garbage, Some(&frame));
        }
        let _ = rle::decode(&garbage);
        let _ = delta::decode(&garbage, Some(&frame));
        let _ = stream::decode_frame(&garbage, Some(&frame));

        let mut enc = stream::encode_frame(Codec::DeltaRle, &frame, None, Some(&frame), 7);
        let i = flip_at % enc.len();
        enc[i] ^= flip_bits;
        if let Some(dec) = stream::decode_frame(&enc, Some(&frame)) {
            // A surviving decode may differ, but must stay frame-shaped.
            prop_assert_eq!(dec.len() % 3, 0);
        }
    }

    /// The binary frame protocol decodes any split of its byte stream
    /// (streaming reassembly) to the original frame sequence.
    #[test]
    fn frame_protocol_survives_arbitrary_fragmentation(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..8),
        split_seed in any::<u64>(),
    ) {
        use bytes::BytesMut;
        let frames: Vec<Frame> = payloads
            .iter()
            .map(|p| Frame::new(FrameKind::SceneUpdate, p.clone()))
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // Feed the stream in pseudo-random chunk sizes.
        let mut buf = BytesMut::new();
        let mut out = Vec::new();
        let mut state = split_seed | 1;
        let mut i = 0;
        while i < wire.len() {
            state ^= state << 13;
            state ^= state >> 7;
            let chunk = 1 + (state as usize % 64).min(wire.len() - i - 1 + 1);
            buf.extend_from_slice(&wire[i..i + chunk.min(wire.len() - i)]);
            i += chunk.min(wire.len() - i);
            while let Some(f) = Frame::decode(&mut buf).unwrap() {
                out.push(f);
            }
        }
        prop_assert_eq!(out, frames);
    }

    /// SOAP envelopes roundtrip arbitrary argument values.
    #[test]
    fn soap_roundtrips(
        s in "[ -~]{0,40}",
        i in any::<i64>(),
        b in any::<bool>(),
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let codec = SoapCodec::default();
        let env = SoapEnvelope::new("svc", "op")
            .arg("s", SoapValue::Str(s))
            .arg("i", SoapValue::Int(i))
            .arg("b", SoapValue::Bool(b))
            .arg("blob", SoapValue::Bytes(bytes));
        let back = codec.decode(&codec.encode(&env)).unwrap();
        prop_assert_eq!(back, env);
    }

    /// PLY (binary) and OBJ writers/parsers roundtrip arbitrary valid
    /// meshes; the PLY→OBJ conversion pipeline preserves topology.
    #[test]
    fn model_formats_roundtrip(
        verts in prop::collection::vec(
            (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0),
            3..40,
        ),
        tri_picks in prop::collection::vec((any::<usize>(), any::<usize>(), any::<usize>()), 1..60),
    ) {
        let positions: Vec<Vec3> =
            verts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let n = positions.len();
        let triangles: Vec<[u32; 3]> = tri_picks
            .iter()
            .map(|&(a, b, c)| [(a % n) as u32, (b % n) as u32, (c % n) as u32])
            .collect();
        let mut mesh = MeshData::new(positions, triangles);
        mesh.compute_normals();

        // Binary PLY roundtrip is bit-exact.
        let mut ply_bytes = Vec::new();
        rave::models::ply::write(&mesh, rave::models::ply::PlyFormat::BinaryLittleEndian, &mut ply_bytes)
            .unwrap();
        let from_ply = rave::models::ply::read(std::io::Cursor::new(ply_bytes)).unwrap();
        prop_assert_eq!(&from_ply.positions, &mesh.positions);
        prop_assert_eq!(&from_ply.triangles, &mesh.triangles);

        // OBJ roundtrip preserves topology and positions to writer
        // precision.
        let mut obj_bytes = Vec::new();
        rave::models::obj::write(&from_ply, &mut obj_bytes).unwrap();
        let from_obj = rave::models::obj::read(std::io::Cursor::new(obj_bytes)).unwrap();
        prop_assert_eq!(from_obj.triangles.len(), mesh.triangles.len());
        for (a, b) in from_obj.positions.iter().zip(&mesh.positions) {
            prop_assert!((a.x - b.x).abs() < 1e-3);
            prop_assert!((a.y - b.y).abs() < 1e-3);
            prop_assert!((a.z - b.z).abs() < 1e-3);
        }
    }

    /// Budget padding hits any requested count exactly, for any generator
    /// target.
    #[test]
    fn generators_hit_exact_budgets(target in 64u64..3000) {
        let m = rave::models::generators::sphere(Vec3::ZERO, 1.0, target);
        prop_assert_eq!(m.triangle_count(), target);
        m.validate().unwrap();
    }
}
