//! Property tests on the renderer and compositors: the pixel-exactness
//! guarantees both distribution schemes depend on.

use proptest::prelude::*;
use rave::math::{Vec3, Viewport};
use rave::render::composite::{depth_composite, stitch_tiles};
use rave::render::{Framebuffer, Renderer};
use rave::scene::{CameraParams, MeshData, NodeKind, SceneTree};
use std::sync::Arc;

/// A random small scene of colored triangles around the origin.
fn scene_strategy() -> impl Strategy<Value = SceneTree> {
    prop::collection::vec(
        (
            prop::collection::vec((-2.0f32..2.0, -2.0f32..2.0, -2.0f32..2.0), 3),
            (0.1f32..1.0, 0.1f32..1.0, 0.1f32..1.0),
        ),
        1..6,
    )
    .prop_map(|tris| {
        let mut tree = SceneTree::new();
        let root = tree.root();
        for (i, (pts, color)) in tris.into_iter().enumerate() {
            let mut mesh = MeshData::new(
                pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect(),
                vec![[0, 1, 2]],
            );
            mesh.colors = vec![Vec3::new(color.0, color.1, color.2); 3];
            mesh.normals = vec![Vec3::Z; 3];
            tree.add_node(root, format!("t{i}"), NodeKind::Mesh(Arc::new(mesh))).unwrap();
        }
        tree
    })
}

fn camera_strategy() -> impl Strategy<Value = CameraParams> {
    (0.0f32..std::f32::consts::TAU, -0.8f32..0.8, 3.0f32..8.0).prop_map(|(yaw, pitch, dist)| {
        let eye = Vec3::new(
            dist * pitch.cos() * yaw.sin(),
            dist * pitch.sin(),
            dist * pitch.cos() * yaw.cos(),
        );
        CameraParams::look_at(eye, Vec3::ZERO, Vec3::Y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE framebuffer-distribution invariant: for any scene, camera and
    /// tile grid, rendering tiles separately and stitching is bit-exact
    /// equal to rendering the whole image ("the framebuffer aligns
    /// exactly").
    #[test]
    fn tiling_is_pixel_exact(
        tree in scene_strategy(),
        cam in camera_strategy(),
        cols in 1u32..4,
        rows in 1u32..4,
    ) {
        let r = Renderer::default();
        let vp = Viewport::new(48, 36);
        let mut full = Framebuffer::new(vp.width, vp.height);
        r.render(&tree, &cam, &mut full);

        let mut stitched = Framebuffer::new(vp.width, vp.height);
        let tiles: Vec<(Viewport, Framebuffer)> = vp
            .split_tiles(cols, rows)
            .into_iter()
            .map(|tile| {
                let mut fb = Framebuffer::new(tile.width, tile.height);
                r.render_tile(&tree, &cam, &vp, &tile, &mut fb);
                (tile, fb)
            })
            .collect();
        let refs: Vec<(Viewport, &Framebuffer)> =
            tiles.iter().map(|(v, f)| (*v, f)).collect();
        stitch_tiles(&mut stitched, &refs);
        prop_assert_eq!(full.diff_fraction(&stitched, 0.0), 0.0);
    }

    /// THE dataset-distribution invariant: splitting a scene's nodes
    /// across two renderers and depth-compositing their full-viewport
    /// buffers equals rendering everything on one machine (opaque
    /// content, any order).
    #[test]
    fn depth_compositing_is_pixel_exact(
        tree in scene_strategy(),
        cam in camera_strategy(),
        order in any::<bool>(),
    ) {
        let r = Renderer::default();
        let vp = Viewport::new(48, 36);
        let mut reference = Framebuffer::new(vp.width, vp.height);
        r.render(&tree, &cam, &mut reference);

        // Partition content nodes into two halves by index.
        let root = tree.root();
        let content: Vec<_> = tree.node(root).unwrap().children().collect();
        let (half_a, half_b): (Vec<_>, Vec<_>) =
            content.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let subset = |ids: Vec<(usize, &rave::scene::NodeId)>| {
            let roots: Vec<rave::scene::NodeId> = ids.into_iter().map(|(_, id)| *id).collect();
            tree.extract_subset(&roots)
        };
        let scene_a = subset(half_a);
        let scene_b = subset(half_b);

        let mut fb_a = Framebuffer::new(vp.width, vp.height);
        r.render(&scene_a, &cam, &mut fb_a);
        let mut fb_b = Framebuffer::new(vp.width, vp.height);
        r.render(&scene_b, &cam, &mut fb_b);

        // Composite over a background-cleared target; sources in either
        // order.
        let mut composed = Framebuffer::new(vp.width, vp.height);
        composed.clear(r.background);
        if order {
            depth_composite(&mut composed, &[&fb_a, &fb_b]);
        } else {
            depth_composite(&mut composed, &[&fb_b, &fb_a]);
        }
        prop_assert_eq!(reference.diff_fraction(&composed, 0.0), 0.0);
    }

    /// Rendering is deterministic: the same scene and camera give
    /// bit-identical images across runs.
    #[test]
    fn rendering_deterministic(tree in scene_strategy(), cam in camera_strategy()) {
        let r = Renderer::default();
        let mut a = Framebuffer::new(40, 40);
        let mut b = Framebuffer::new(40, 40);
        r.render(&tree, &cam, &mut a);
        r.render(&tree, &cam, &mut b);
        prop_assert_eq!(a.diff_fraction(&b, 0.0), 0.0);
    }

    /// THE parallel-engine invariant: the binned rayon renderer produces
    /// the same image as the serial immediate-mode reference — bit for
    /// bit, color and depth — at every thread count from 1 to 8.
    #[test]
    fn parallel_render_bit_identical_to_serial(
        tree in scene_strategy(),
        cam in camera_strategy(),
    ) {
        let r = Renderer::default();
        let mut reference = Framebuffer::new(48, 36);
        r.render_reference(&tree, &cam, &mut reference);

        for threads in 1usize..=8 {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let mut fb = Framebuffer::new(48, 36);
            pool.install(|| r.render(&tree, &cam, &mut fb));
            prop_assert_eq!(
                reference.diff_fraction(&fb, 0.0), 0.0,
                "color differs at {} threads", threads
            );
            for y in 0..36u32 {
                for x in 0..48u32 {
                    prop_assert_eq!(
                        reference.depth_at(x, y).to_bits(),
                        fb.depth_at(x, y).to_bits(),
                        "depth differs at ({}, {}) with {} threads", x, y, threads
                    );
                }
            }
        }
    }

    /// Depth buffer correctness under arbitrary draw order: rendering a
    /// scene with nodes in reversed child order gives the same image.
    #[test]
    fn draw_order_independent(tree in scene_strategy(), cam in camera_strategy()) {
        let r = Renderer::default();
        let mut forward = Framebuffer::new(40, 40);
        r.render(&tree, &cam, &mut forward);

        let mut reversed_tree = tree.clone();
        let root = reversed_tree.root();
        // Reverse the root's child order via reparent's move-to-last:
        // moving each child to the back in reverse original order leaves
        // the sibling list exactly reversed.
        let kids: Vec<_> = reversed_tree.node(root).unwrap().children().collect();
        for c in kids.into_iter().rev() {
            reversed_tree.reparent(c, root).unwrap();
        }
        let mut reversed = Framebuffer::new(40, 40);
        r.render(&reversed_tree, &cam, &mut reversed);
        // Opaque z-buffered content: order cannot matter except for exact
        // depth ties, which our random triangles avoid almost surely.
        prop_assert!(forward.diff_fraction(&reversed, 1.5) < 0.002);
    }
}
