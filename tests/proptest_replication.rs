//! Property tests on WAL log shipping: a primary whose log rotates at
//! *arbitrary* points is shipped frame by frame to a standby, with the
//! link failing at an *arbitrary* step — and the standby's durable state
//! is always an exact prefix of the primary's committed trail. Resuming
//! the link afterwards converges to full equality, losing nothing.

use proptest::prelude::*;
use rave::scene::{AuditEntry, NodeKind, SceneTree, SceneUpdate, StampedUpdate};
use rave::store::ship::{ShipAck, ShipFrame, Shipper, StandbyLog};
use rave::store::wal::Wal;
use std::path::PathBuf;

fn tmp_dir(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rave-prop-ship-{tag}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Append `n` AddNode updates to a fresh WAL under `dir` with the given
/// segment cap (small caps force rotation at arbitrary entry boundaries).
/// Returns the committed trail for prefix comparison.
fn build_primary(dir: &PathBuf, n: u64, seg_bytes: u64) -> Vec<AuditEntry> {
    let mut tree = SceneTree::new();
    let (mut wal, _) = Wal::open(dir, seg_bytes, false).unwrap();
    let mut trail = Vec::new();
    for seq in 1..=n {
        let id = tree.allocate_id();
        let update = SceneUpdate::AddNode {
            id,
            parent: tree.root(),
            name: format!("n{seq}"),
            kind: NodeKind::Group,
        };
        update.apply(&mut tree).unwrap();
        let e = AuditEntry {
            at_secs: seq as f64 * 0.5,
            stamped: StampedUpdate { seq, origin: "prop".into(), update },
        };
        wal.append(&e).unwrap();
        trail.push(e);
    }
    wal.sync().unwrap();
    trail
}

/// Assert the standby directory recovers to EXACTLY the primary trail's
/// prefix of length `rec.last_seq` — never garbage, never a gap.
fn assert_exact_prefix(sdir: &PathBuf, trail: &[AuditEntry]) -> u64 {
    let rec = rave::store::recover(sdir).unwrap();
    assert!(rec.last_seq <= trail.len() as u64, "standby never ahead of the primary");
    assert_eq!(rec.entries.len() as u64, rec.last_seq, "contiguous from seq 1");
    for (got, want) in rec.entries.iter().zip(trail) {
        assert_eq!(got, want, "shipped entry differs from committed entry");
    }
    let mut prefix = SceneTree::new();
    for e in &trail[..rec.last_seq as usize] {
        e.stamped.update.apply(&mut prefix).unwrap();
    }
    assert_eq!(rec.tree, prefix, "recovered tree is the prefix state");
    rec.last_seq
}

/// Drive the ship protocol one frame at a time until the plan is empty,
/// stopping early after `stop_after` frames (None = run to completion).
/// Returns the number of frames applied.
fn ship_until(
    shipper: &Shipper,
    standby: &mut StandbyLog,
    max_lag: u64,
    stop_after: Option<usize>,
) -> usize {
    let mut ack = ShipAck { last_seq: standby.last_seq(), resend: None };
    let mut steps = 0usize;
    loop {
        if let Some(limit) = stop_after {
            if steps >= limit {
                return steps;
            }
        }
        let frames = shipper.plan(ack.last_seq, ack.resend, max_lag, 1).unwrap();
        let Some(frame) = frames.into_iter().next() else { return steps };
        ack = standby.apply(&frame).unwrap().ack;
        steps += 1;
        assert!(steps < 10_000, "ship loop must converge");
    }
}

proptest! {
    /// Rotate the WAL at arbitrary points (tiny random segment caps),
    /// kill the link at an arbitrary ship step: the standby's durable
    /// state is an exact committed prefix. Re-establishing the link
    /// (fresh `StandbyLog::open` over the same directory, lag bound 0)
    /// then converges to the full trail — zero committed updates lost.
    #[test]
    fn failure_at_any_step_leaves_an_exact_prefix_and_resume_converges(
        n in 1u64..40,
        seg_bytes in 96u64..1024,
        max_lag in 0u64..6,
        fail_step in 0usize..60,
        case in any::<u64>(),
    ) {
        let pdir = tmp_dir("fail-p", case);
        let sdir = tmp_dir("fail-s", case);
        let trail = build_primary(&pdir, n, seg_bytes);
        let shipper = Shipper::new(&pdir);

        // Phase 1: ship until the injected failure (or until drained).
        let mut standby = StandbyLog::open(&sdir).unwrap();
        ship_until(&shipper, &mut standby, max_lag, Some(fail_step));
        let at_failure = standby.last_seq();
        drop(standby);
        let durable = assert_exact_prefix(&sdir, &trail);
        prop_assert_eq!(durable, at_failure, "cursor matches what recovery sees");

        // Phase 2: the standby restarts and the link resumes from its
        // durable cursor; with no lag allowance it drains completely.
        let mut standby = StandbyLog::open(&sdir).unwrap();
        prop_assert_eq!(standby.last_seq(), at_failure, "resume from the durable prefix");
        ship_until(&shipper, &mut standby, 0, None);
        prop_assert_eq!(standby.last_seq(), n, "resume converges to the full trail");
        let full = assert_exact_prefix(&sdir, &trail);
        prop_assert_eq!(full, n, "zero committed updates lost");

        std::fs::remove_dir_all(&pdir).unwrap();
        std::fs::remove_dir_all(&sdir).unwrap();
    }

    /// Corrupt one arbitrary byte of one arbitrary sealed frame on the
    /// wire: the standby declines it, asks for that segment again, and
    /// the re-shipped intact copy converges to full equality.
    #[test]
    fn torn_sealed_frame_is_declined_and_reshipped(
        n in 8u64..30,
        flip_frac in 0.0f64..1.0,
        case in any::<u64>(),
    ) {
        let pdir = tmp_dir("torn-p", case);
        let sdir = tmp_dir("torn-s", case);
        // 128-byte cap: several sealed segments for any n in range.
        let trail = build_primary(&pdir, n, 128);
        let shipper = Shipper::new(&pdir);
        let mut standby = StandbyLog::open(&sdir).unwrap();

        let mut ack = ShipAck { last_seq: 0, resend: None };
        let mut corrupted = false;
        let mut steps = 0usize;
        loop {
            let frames = shipper.plan(ack.last_seq, ack.resend, 0, 1).unwrap();
            let Some(mut frame) = frames.into_iter().next() else { break };
            if !corrupted {
                if let ShipFrame::Sealed { index, ref mut bytes } = frame {
                    let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
                    bytes[at] ^= 0xff;
                    let apply = standby.apply(&frame).unwrap();
                    prop_assert_eq!(apply.ack.resend, Some(index), "torn frame re-requested");
                    prop_assert_eq!(apply.ack.last_seq, ack.last_seq, "cursor does not move");
                    prop_assert!(apply.entries.is_empty(), "nothing applied from a torn frame");
                    ack = apply.ack;
                    corrupted = true;
                    continue;
                }
            }
            ack = standby.apply(&frame).unwrap().ack;
            steps += 1;
            prop_assert!(steps < 10_000, "ship loop must converge");
        }
        prop_assert!(corrupted, "a sealed frame was shipped and corrupted");
        prop_assert_eq!(standby.last_seq(), n);
        let full = assert_exact_prefix(&sdir, &trail);
        prop_assert_eq!(full, n);

        std::fs::remove_dir_all(&pdir).unwrap();
        std::fs::remove_dir_all(&sdir).unwrap();
    }
}
