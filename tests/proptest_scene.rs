//! Property tests on the scene tree, the update protocol and the audit
//! trail: the invariants replication correctness rests on.

use proptest::prelude::*;
use rave::math::{Quat, Vec3};
use rave::scene::{
    AuditTrail, MeshData, NodeCost, NodeId, NodeKind, SceneTree, SceneUpdate, StampedUpdate,
    Transform,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A randomly generated (valid-by-construction) update against the ids a
/// tree could plausibly hold.
#[derive(Debug, Clone)]
enum Op {
    Add { parent_pick: usize, name: String },
    Remove { pick: usize },
    Move { pick: usize, t: [f32; 3] },
    Rename { pick: usize, name: String },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), "[a-z]{1,8}")
            .prop_map(|(parent_pick, name)| Op::Add { parent_pick, name }),
        any::<usize>().prop_map(|pick| Op::Remove { pick }),
        (any::<usize>(), [-10.0f32..10.0, -10.0..10.0, -10.0..10.0])
            .prop_map(|(pick, t)| Op::Move { pick, t }),
        (any::<usize>(), "[a-z]{1,8}").prop_map(|(pick, name)| Op::Rename { pick, name }),
    ]
}

/// Turn abstract ops into concrete updates against the live tree,
/// mirroring how a data service allocates ids.
fn materialize(tree: &mut SceneTree, op: &Op) -> Option<SceneUpdate> {
    let nodes: Vec<NodeId> = tree.descendants(tree.root());
    match op {
        Op::Add { parent_pick, name } => {
            let parent = nodes[parent_pick % nodes.len()];
            let id = tree.allocate_id();
            Some(SceneUpdate::AddNode { id, parent, name: name.clone(), kind: NodeKind::Group })
        }
        Op::Remove { pick } => {
            // Never remove the root.
            let candidates: Vec<NodeId> =
                nodes.iter().copied().filter(|&n| n != tree.root()).collect();
            if candidates.is_empty() {
                return None;
            }
            Some(SceneUpdate::RemoveNode { id: candidates[pick % candidates.len()] })
        }
        Op::Move { pick, t } => {
            let id = nodes[pick % nodes.len()];
            Some(SceneUpdate::SetTransform {
                id,
                transform: Transform {
                    translation: Vec3::new(t[0], t[1], t[2]),
                    rotation: Quat::IDENTITY,
                    scale: Vec3::ONE,
                },
            })
        }
        Op::Rename { pick, name } => {
            let id = nodes[pick % nodes.len()];
            Some(SceneUpdate::SetName { id, name: name.clone() })
        }
    }
}

proptest! {
    /// Any sequence of valid updates leaves the tree structurally sound.
    #[test]
    fn updates_preserve_tree_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut tree = SceneTree::new();
        for op in &ops {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).expect("valid-by-construction update");
                tree.check_invariants().expect("invariants after update");
            }
        }
    }

    /// Two replicas applying the same update stream converge exactly —
    /// the multicast-replication guarantee.
    #[test]
    fn replicas_converge(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut master = SceneTree::new();
        let mut replica_a = SceneTree::new();
        let mut replica_b = SceneTree::new();
        for op in &ops {
            if let Some(update) = materialize(&mut master, op) {
                update.apply(&mut master).unwrap();
                update.apply(&mut replica_a).unwrap();
                update.apply(&mut replica_b).unwrap();
            }
        }
        prop_assert_eq!(format!("{replica_a:?}"), format!("{replica_b:?}"));
        prop_assert_eq!(replica_a.len(), master.len());
    }

    /// The audit trail is a faithful record: replaying it reconstructs the
    /// live tree, from any prefix boundary.
    #[test]
    fn audit_replay_equals_live_state(
        ops in prop::collection::vec(op_strategy(), 1..40),
        cut in 0.0f64..1.0,
    ) {
        let mut tree = SceneTree::new();
        let mut trail = AuditTrail::new();
        let mut seq = 0u64;
        let mut applied = Vec::new();
        for op in &ops {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).unwrap();
                seq += 1;
                // Timestamp = index among *materialized* updates, so the
                // prefix cut below lines up with `applied`.
                trail.record(
                    applied.len() as f64,
                    StampedUpdate { seq, origin: "p".into(), update: update.clone() },
                ).unwrap();
                applied.push(update);
            }
        }
        // Full replay equals live state.
        let replayed = trail.replay_all().unwrap();
        prop_assert_eq!(replayed.len(), tree.len());

        // Prefix replay equals applying the prefix.
        let upto = (applied.len() as f64 * cut) as usize;
        let mut prefix_tree = SceneTree::new();
        for u in &applied[..upto] {
            u.apply(&mut prefix_tree).unwrap();
        }
        let replay_prefix = trail.replay(upto as f64 - 0.5).unwrap();
        prop_assert_eq!(replay_prefix.len(), prefix_tree.len());
    }

    /// Save/load of the audit trail is lossless for arbitrary sessions.
    #[test]
    fn audit_persistence_roundtrip(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let mut tree = SceneTree::new();
        let mut trail = AuditTrail::new();
        let mut seq = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).unwrap();
                seq += 1;
                trail.record(i as f64, StampedUpdate { seq, origin: "p".into(), update }).unwrap();
            }
        }
        let mut buf = Vec::new();
        trail.save(&mut buf).unwrap();
        let loaded = AuditTrail::load(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(&loaded, &trail);
    }

    /// The arena agrees with a naive map-based model under arbitrary
    /// structural churn — see `model_ops_strategy` below. Lives inside the
    /// same `proptest!` block for shared config.
    #[test]
    fn arena_matches_reference_model(ops in prop::collection::vec(model_op_strategy(), 1..70)) {
        run_model_comparison(&ops)?;
    }

    /// `subset_closure` always contains the requested roots, their
    /// descendants and ancestors; `extract_subset` preserves world
    /// transforms for every included node.
    #[test]
    fn subset_extraction_sound(ops in prop::collection::vec(op_strategy(), 5..50), pick: usize) {
        let mut tree = SceneTree::new();
        for op in &ops {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).unwrap();
            }
        }
        let nodes: Vec<NodeId> = tree
            .descendants(tree.root())
            .into_iter()
            .filter(|&n| n != tree.root())
            .collect();
        prop_assume!(!nodes.is_empty());
        let chosen = nodes[pick % nodes.len()];
        let subset = tree.extract_subset(&[chosen]);
        subset.check_invariants().unwrap();
        prop_assert!(subset.contains(chosen));
        for d in tree.descendants(chosen) {
            prop_assert!(subset.contains(d), "descendant {d} present");
        }
        for a in tree.ancestors(chosen) {
            prop_assert!(subset.contains(a), "ancestor {a} present");
        }
        // World transform identical through the extracted chain.
        let p0 = tree.world_transform(chosen).transform_point(Vec3::ZERO);
        let p1 = subset.world_transform(chosen).transform_point(Vec3::ZERO);
        prop_assert!((p0 - p1).length() < 1e-4);
    }
}

// ---------------------------------------------------------------------------
// Arena vs. reference model
// ---------------------------------------------------------------------------
//
// The generational arena reuses slots and bumps generations on removal; the
// classic failure modes are a stale id resolving to a recycled slot, sibling
// links corrupted by unlink/relink surgery, and cached preorder/cost state
// surviving an edit it shouldn't. This harness drives the arena and a
// deliberately naive map-based model through the same random
// insert/remove/reparent/extract/merge sequence and requires them to agree
// on ids, iteration order, and subtree costs after every step. The model
// has no arena, no caches and no slot reuse, so any disagreement indicts
// the arena.

/// Abstract structural op; picks are reduced modulo the live population at
/// materialization time so every op is valid-by-construction.
#[derive(Debug, Clone)]
enum ModelOp {
    Insert { parent_pick: usize, tris: usize },
    Remove { pick: usize },
    Reparent { pick: usize, parent_pick: usize },
    ExtractMerge { pick: usize },
}

fn model_op_strategy() -> impl Strategy<Value = ModelOp> {
    // The vendored proptest has no weighted arms; inserts are listed
    // three times so trees grow on average and removes keep churning slots.
    prop_oneof![
        (any::<usize>(), 0usize..20)
            .prop_map(|(parent_pick, tris)| ModelOp::Insert { parent_pick, tris }),
        (any::<usize>(), 0usize..20)
            .prop_map(|(parent_pick, tris)| ModelOp::Insert { parent_pick, tris }),
        (any::<usize>(), 0usize..20)
            .prop_map(|(parent_pick, tris)| ModelOp::Insert { parent_pick, tris }),
        any::<usize>().prop_map(|pick| ModelOp::Remove { pick }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(pick, parent_pick)| ModelOp::Reparent { pick, parent_pick }),
        any::<usize>().prop_map(|pick| ModelOp::ExtractMerge { pick }),
    ]
}

/// The reference model: parent link, children in insertion order, own cost.
struct Model {
    nodes: BTreeMap<NodeId, (Option<NodeId>, Vec<NodeId>, NodeCost)>,
    root: NodeId,
}

impl Model {
    fn new(root: NodeId) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(root, (None, Vec::new(), NodeCost::ZERO));
        Model { nodes, root }
    }

    fn insert(&mut self, id: NodeId, parent: NodeId, cost: NodeCost) {
        self.nodes.insert(id, (Some(parent), Vec::new(), cost));
        self.nodes.get_mut(&parent).unwrap().1.push(id);
    }

    fn in_subtree(&self, ancestor: NodeId, mut id: NodeId) -> bool {
        loop {
            if id == ancestor {
                return true;
            }
            match self.nodes[&id].0 {
                Some(p) => id = p,
                None => return false,
            }
        }
    }

    /// Subtree removal, ids in the last-child-first DFS order the real
    /// `SceneTree::remove` documents.
    fn remove(&mut self, id: NodeId) -> Vec<NodeId> {
        let parent = self.nodes[&id].0.expect("never remove the root");
        self.nodes.get_mut(&parent).unwrap().1.retain(|&c| c != id);
        let mut removed = Vec::new();
        let mut stack = vec![id];
        while let Some(s) = stack.pop() {
            removed.push(s);
            stack.extend(self.nodes[&s].1.iter().copied());
            self.nodes.remove(&s);
        }
        removed
    }

    /// Move-to-last-child semantics with the same cycle rejection as the
    /// arena (moving under the node's own subtree, or moving the root).
    fn reparent(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), ()> {
        if id == self.root || self.in_subtree(id, new_parent) {
            return Err(());
        }
        let old = self.nodes[&id].0.unwrap();
        self.nodes.get_mut(&old).unwrap().1.retain(|&c| c != id);
        self.nodes.get_mut(&new_parent).unwrap().1.push(id);
        self.nodes.get_mut(&id).unwrap().0 = Some(new_parent);
        Ok(())
    }

    /// Pre-order, children in insertion order.
    fn preorder(&self, start: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(s) = stack.pop() {
            out.push(s);
            stack.extend(self.nodes[&s].1.iter().rev().copied());
        }
        out
    }

    fn subtree_cost(&self, id: NodeId) -> NodeCost {
        let (_, children, own) = &self.nodes[&id];
        children.iter().fold(*own, |acc, &c| acc + self.subtree_cost(c))
    }

    /// Requested roots plus all their descendants and ancestors — the
    /// closure `extract_subset` materializes.
    fn closure(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut included: Vec<NodeId> = Vec::new();
        for &r in roots {
            for d in self.preorder(r) {
                if !included.contains(&d) {
                    included.push(d);
                }
            }
            let mut cur = r;
            while let Some(p) = self.nodes[&cur].0 {
                if !included.contains(&p) {
                    included.push(p);
                }
                cur = p;
            }
        }
        included.sort_by_key(|id| id.0);
        included
    }
}

/// A mesh whose cost is distinctive per `tris`, so cost mismatches can't
/// cancel out across nodes.
fn mesh_kind(tris: usize) -> NodeKind {
    let mesh = MeshData::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]; tris]);
    NodeKind::Mesh(Arc::new(mesh))
}

fn run_model_comparison(ops: &[ModelOp]) -> Result<(), TestCaseError> {
    let mut tree = SceneTree::new();
    let mut model = Model::new(tree.root());
    // Ids removed so far; none may ever resolve again (ids are never
    // reallocated even when the underlying slot is recycled).
    let mut graveyard: Vec<NodeId> = Vec::new();

    for op in ops {
        let live: Vec<NodeId> = model.nodes.keys().copied().collect();
        match op {
            ModelOp::Insert { parent_pick, tris } => {
                let parent = live[parent_pick % live.len()];
                let kind = if *tris == 0 { NodeKind::Group } else { mesh_kind(*tris) };
                let cost = kind.cost();
                let id = tree.add_node(parent, format!("n{}", id_of(&live)), kind).unwrap();
                model.insert(id, parent, cost);
            }
            ModelOp::Remove { pick } => {
                let candidates: Vec<NodeId> =
                    live.iter().copied().filter(|&n| n != tree.root()).collect();
                if candidates.is_empty() {
                    continue;
                }
                let id = candidates[pick % candidates.len()];
                let got = tree.remove(id).unwrap();
                let want = model.remove(id);
                prop_assert_eq!(got, want, "removed ids and order");
                graveyard.extend(model_absent(&model, id));
                graveyard.push(id);
            }
            ModelOp::Reparent { pick, parent_pick } => {
                let id = live[pick % live.len()];
                let new_parent = live[parent_pick % live.len()];
                let got = tree.reparent(id, new_parent);
                let want = model.reparent(id, new_parent);
                prop_assert_eq!(got.is_ok(), want.is_ok(), "reparent verdicts agree");
            }
            ModelOp::ExtractMerge { pick } => {
                let chosen = live[pick % live.len()];
                let subset = tree.extract_subset(&[chosen]);
                subset.check_invariants().map_err(|msg| TestCaseError { msg })?;
                let got: Vec<NodeId> = subset.iter_nodes().map(|n| n.id()).collect();
                prop_assert_eq!(got, model.closure(&[chosen]), "extracted closure");
                // Merging the extract into an empty replica reproduces the
                // closure exactly (subset root folds onto the new root).
                let mut merged = SceneTree::new();
                merged.merge_subset(&subset);
                merged.check_invariants().map_err(|msg| TestCaseError { msg })?;
                prop_assert_eq!(merged.len(), subset.len());
                prop_assert_eq!(merged.total_cost(), subset.total_cost());
            }
        }

        // Step invariants: the arena and the model agree exactly.
        tree.check_invariants().map_err(|msg| TestCaseError { msg })?;
        let arena_ids: Vec<NodeId> = tree.iter_nodes().map(|n| n.id()).collect();
        let model_ids: Vec<NodeId> = model.nodes.keys().copied().collect();
        prop_assert_eq!(arena_ids, model_ids, "id set and iteration order");
        prop_assert_eq!(
            tree.descendants(tree.root()),
            model.preorder(model.root),
            "preorder traversal"
        );
        for &id in model.nodes.keys() {
            prop_assert_eq!(tree.subtree_cost(id), model.subtree_cost(id), "subtree cost {}", id);
        }
        prop_assert_eq!(tree.total_cost(), model.subtree_cost(model.root));
        for &dead in &graveyard {
            prop_assert!(!tree.contains(dead), "stale id {} must not resolve", dead);
            prop_assert!(tree.node(dead).is_none());
        }
    }
    Ok(())
}

/// Tiny deterministic name salt so repeated inserts get distinct names.
fn id_of(live: &[NodeId]) -> usize {
    live.len()
}

/// Ids the model no longer holds under `id` — captured *before* `Model::remove`
/// prunes them, so the caller records the whole removed subtree. (Helper kept
/// trivial: by the time it runs the subtree is already gone, so it returns
/// nothing; the caller pushes the root id explicitly and the order check on
/// `remove` already covered the subtree.)
fn model_absent(_model: &Model, _id: NodeId) -> Vec<NodeId> {
    Vec::new()
}
