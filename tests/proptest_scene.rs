//! Property tests on the scene tree, the update protocol and the audit
//! trail: the invariants replication correctness rests on.

use proptest::prelude::*;
use rave::math::{Quat, Vec3};
use rave::scene::{AuditTrail, NodeId, NodeKind, SceneTree, SceneUpdate, StampedUpdate, Transform};

/// A randomly generated (valid-by-construction) update against the ids a
/// tree could plausibly hold.
#[derive(Debug, Clone)]
enum Op {
    Add { parent_pick: usize, name: String },
    Remove { pick: usize },
    Move { pick: usize, t: [f32; 3] },
    Rename { pick: usize, name: String },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), "[a-z]{1,8}")
            .prop_map(|(parent_pick, name)| Op::Add { parent_pick, name }),
        any::<usize>().prop_map(|pick| Op::Remove { pick }),
        (any::<usize>(), [-10.0f32..10.0, -10.0..10.0, -10.0..10.0])
            .prop_map(|(pick, t)| Op::Move { pick, t }),
        (any::<usize>(), "[a-z]{1,8}").prop_map(|(pick, name)| Op::Rename { pick, name }),
    ]
}

/// Turn abstract ops into concrete updates against the live tree,
/// mirroring how a data service allocates ids.
fn materialize(tree: &mut SceneTree, op: &Op) -> Option<SceneUpdate> {
    let nodes: Vec<NodeId> = tree.descendants(tree.root());
    match op {
        Op::Add { parent_pick, name } => {
            let parent = nodes[parent_pick % nodes.len()];
            let id = tree.allocate_id();
            Some(SceneUpdate::AddNode { id, parent, name: name.clone(), kind: NodeKind::Group })
        }
        Op::Remove { pick } => {
            // Never remove the root.
            let candidates: Vec<NodeId> =
                nodes.iter().copied().filter(|&n| n != tree.root()).collect();
            if candidates.is_empty() {
                return None;
            }
            Some(SceneUpdate::RemoveNode { id: candidates[pick % candidates.len()] })
        }
        Op::Move { pick, t } => {
            let id = nodes[pick % nodes.len()];
            Some(SceneUpdate::SetTransform {
                id,
                transform: Transform {
                    translation: Vec3::new(t[0], t[1], t[2]),
                    rotation: Quat::IDENTITY,
                    scale: Vec3::ONE,
                },
            })
        }
        Op::Rename { pick, name } => {
            let id = nodes[pick % nodes.len()];
            Some(SceneUpdate::SetName { id, name: name.clone() })
        }
    }
}

proptest! {
    /// Any sequence of valid updates leaves the tree structurally sound.
    #[test]
    fn updates_preserve_tree_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut tree = SceneTree::new();
        for op in &ops {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).expect("valid-by-construction update");
                tree.check_invariants().expect("invariants after update");
            }
        }
    }

    /// Two replicas applying the same update stream converge exactly —
    /// the multicast-replication guarantee.
    #[test]
    fn replicas_converge(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut master = SceneTree::new();
        let mut replica_a = SceneTree::new();
        let mut replica_b = SceneTree::new();
        for op in &ops {
            if let Some(update) = materialize(&mut master, op) {
                update.apply(&mut master).unwrap();
                update.apply(&mut replica_a).unwrap();
                update.apply(&mut replica_b).unwrap();
            }
        }
        prop_assert_eq!(format!("{replica_a:?}"), format!("{replica_b:?}"));
        prop_assert_eq!(replica_a.len(), master.len());
    }

    /// The audit trail is a faithful record: replaying it reconstructs the
    /// live tree, from any prefix boundary.
    #[test]
    fn audit_replay_equals_live_state(
        ops in prop::collection::vec(op_strategy(), 1..40),
        cut in 0.0f64..1.0,
    ) {
        let mut tree = SceneTree::new();
        let mut trail = AuditTrail::new();
        let mut seq = 0u64;
        let mut applied = Vec::new();
        for op in &ops {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).unwrap();
                seq += 1;
                // Timestamp = index among *materialized* updates, so the
                // prefix cut below lines up with `applied`.
                trail.record(
                    applied.len() as f64,
                    StampedUpdate { seq, origin: "p".into(), update: update.clone() },
                ).unwrap();
                applied.push(update);
            }
        }
        // Full replay equals live state.
        let replayed = trail.replay_all().unwrap();
        prop_assert_eq!(replayed.len(), tree.len());

        // Prefix replay equals applying the prefix.
        let upto = (applied.len() as f64 * cut) as usize;
        let mut prefix_tree = SceneTree::new();
        for u in &applied[..upto] {
            u.apply(&mut prefix_tree).unwrap();
        }
        let replay_prefix = trail.replay(upto as f64 - 0.5).unwrap();
        prop_assert_eq!(replay_prefix.len(), prefix_tree.len());
    }

    /// Save/load of the audit trail is lossless for arbitrary sessions.
    #[test]
    fn audit_persistence_roundtrip(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let mut tree = SceneTree::new();
        let mut trail = AuditTrail::new();
        let mut seq = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).unwrap();
                seq += 1;
                trail.record(i as f64, StampedUpdate { seq, origin: "p".into(), update }).unwrap();
            }
        }
        let mut buf = Vec::new();
        trail.save(&mut buf).unwrap();
        let loaded = AuditTrail::load(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(&loaded, &trail);
    }

    /// `subset_closure` always contains the requested roots, their
    /// descendants and ancestors; `extract_subset` preserves world
    /// transforms for every included node.
    #[test]
    fn subset_extraction_sound(ops in prop::collection::vec(op_strategy(), 5..50), pick: usize) {
        let mut tree = SceneTree::new();
        for op in &ops {
            if let Some(update) = materialize(&mut tree, op) {
                update.apply(&mut tree).unwrap();
            }
        }
        let nodes: Vec<NodeId> = tree
            .descendants(tree.root())
            .into_iter()
            .filter(|&n| n != tree.root())
            .collect();
        prop_assume!(!nodes.is_empty());
        let chosen = nodes[pick % nodes.len()];
        let subset = tree.extract_subset(&[chosen]);
        subset.check_invariants().unwrap();
        prop_assert!(subset.contains(chosen));
        for d in tree.descendants(chosen) {
            prop_assert!(subset.contains(d), "descendant {d} present");
        }
        for a in tree.ancestors(chosen) {
            prop_assert!(subset.contains(a), "ancestor {a} present");
        }
        // World transform identical through the extracted chain.
        let p0 = tree.world_transform(chosen).transform_point(Vec3::ZERO);
        let p1 = subset.world_transform(chosen).transform_point(Vec3::ZERO);
        prop_assert!((p0 - p1).length() < 1e-4);
    }
}
