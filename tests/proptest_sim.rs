//! Property tests on the discrete-event kernel and the network channel —
//! the foundations every timing result stands on.

use proptest::prelude::*;
use rave::net::{Channel, LinkSpec};
use rave::sim::{SimRng, SimTime, Simulation};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always execute in non-decreasing time order, regardless of
    /// the order they were scheduled in, with FIFO ties.
    #[test]
    fn events_execute_in_time_order(delays in prop::collection::vec(0u32..10_000, 1..80)) {
        let log: Rc<RefCell<Vec<(f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule_in(SimTime::from_millis(d as f64), move |s| {
                log.borrow_mut().push((s.now().as_secs(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time ordering");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn cancellation_exact(
        delays in prop::collection::vec(1u32..1000, 1..40),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let counter: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
        let mut sim = Simulation::new(());
        let mut ids = Vec::new();
        for &d in &delays {
            let c = Rc::clone(&counter);
            ids.push(sim.schedule_in(SimTime::from_millis(d as f64), move |_| {
                *c.borrow_mut() += 1;
            }));
        }
        let mut cancelled = 0;
        for (id, &cancel) in ids.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if cancel && sim.cancel(*id) {
                cancelled += 1;
            }
        }
        sim.run();
        prop_assert_eq!(*counter.borrow(), delays.len() - cancelled);
    }

    /// run_until never executes events beyond the horizon, and a
    /// subsequent run() picks them all up.
    #[test]
    fn run_until_is_a_clean_partition(
        delays in prop::collection::vec(1u32..2_000, 1..50),
        horizon_ms in 1u32..2_000,
    ) {
        let log: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for &d in &delays {
            let log = Rc::clone(&log);
            sim.schedule_in(SimTime::from_millis(d as f64), move |s| {
                log.borrow_mut().push(s.now().as_millis());
            });
        }
        let horizon = SimTime::from_millis(horizon_ms as f64);
        sim.run_until(horizon);
        let first_phase = log.borrow().len();
        for &t in log.borrow().iter() {
            prop_assert!(t <= horizon_ms as f64 + 1e-9);
        }
        prop_assert!(sim.now() >= horizon);
        sim.run();
        prop_assert_eq!(log.borrow().len(), delays.len());
        // Second phase strictly after the horizon.
        for &t in log.borrow()[first_phase..].iter() {
            prop_assert!(t > horizon_ms as f64 - 1e-9);
        }
    }

    /// The channel conserves wire time: for any message sequence, total
    /// occupancy equals the sum of individual tx times, arrivals are
    /// monotone per channel, and nothing arrives before its send.
    #[test]
    fn channel_conservation(
        sends in prop::collection::vec((0u32..5_000, 1u64..200_000), 1..40),
    ) {
        let link = LinkSpec::wireless_11mb(1.0);
        let mut chan = Channel::new(link.clone());
        let mut last_arrival = SimTime::ZERO;
        let mut expected_busy = SimTime::ZERO;
        let mut sorted = sends.clone();
        sorted.sort_by_key(|&(t, _)| t);
        for &(t_ms, bytes) in &sorted {
            let now = SimTime::from_millis(t_ms as f64);
            let arrival = chan.send(now, bytes);
            // Allow f64 association slack: (a+b)+c vs a+(b+c).
            prop_assert!(
                arrival.as_secs() >= (now + link.transfer_time(bytes)).as_secs() - 1e-9,
                "no time travel"
            );
            prop_assert!(arrival >= last_arrival, "monotone arrivals");
            last_arrival = arrival;
            expected_busy = expected_busy.max(now) + link.tx_time(bytes);
            prop_assert_eq!(chan.busy_until(), expected_busy);
        }
        let total: u64 = sorted.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(chan.bytes_sent(), total);
    }

    /// Deterministic RNG: identical seeds give identical streams across
    /// forks, and `below` is always in range.
    #[test]
    fn rng_determinism(seed in any::<u64>(), n in 1u64..1000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fa = a.fork(7);
        let mut fb = b.fork(7);
        for _ in 0..20 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
            let v = fa.below(n);
            prop_assert!(v < n);
            fb.below(n);
        }
    }
}
