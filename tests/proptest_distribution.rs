//! Property tests on the distribution planner: capacity is never
//! violated, work is conserved, splits never lose triangles.

use proptest::prelude::*;
use rave::core::capacity::CapacityReport;
use rave::core::distribution::{plan_distribution, PlanError};
use rave::core::RenderServiceId;
use rave::math::Vec3;
use rave::scene::{MeshData, NodeCost, NodeKind, SceneTree};
use std::sync::Arc;

fn strip_mesh(tris: u32) -> MeshData {
    let mut positions = Vec::with_capacity((tris as usize + 1) * 2);
    let mut triangles = Vec::with_capacity(tris as usize);
    for i in 0..=tris {
        positions.push(Vec3::new(i as f32, 0.0, 0.0));
        positions.push(Vec3::new(i as f32, 1.0, 0.0));
    }
    for i in 0..tris {
        let b = i * 2;
        triangles.push([b, b + 2, b + 3]);
    }
    MeshData::new(positions, triangles)
}

fn report(id: u64, polys: u64) -> CapacityReport {
    CapacityReport {
        service: RenderServiceId(id),
        host: format!("h{id}"),
        polys_per_sec: 1e7,
        poly_headroom: polys,
        texture_headroom: 1 << 40,
        volume_hw: false,
        assigned: NodeCost::ZERO,
        rolling_fps: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever the planner succeeds: every assignment respects its
    /// service's headroom, and the placed polygon total equals the scene
    /// total (work conservation, even through splits).
    #[test]
    fn plans_respect_capacity_and_conserve_work(
        mesh_sizes in prop::collection::vec(2u32..4000, 1..8),
        capacities in prop::collection::vec(100u64..6000, 1..6),
    ) {
        let mut scene = SceneTree::new();
        let root = scene.root();
        for (i, &s) in mesh_sizes.iter().enumerate() {
            scene
                .add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(strip_mesh(s))))
                .unwrap();
        }
        let total: u64 = mesh_sizes.iter().map(|&s| s as u64).sum();
        let reports: Vec<CapacityReport> = capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| report(i as u64 + 1, c))
            .collect();
        let headroom: u64 = capacities.iter().sum();

        match plan_distribution(&mut scene, &reports) {
            Ok(plan) => {
                // Capacity respected per service.
                for a in &plan.assignments {
                    let cap = capacities[(a.service.0 - 1) as usize];
                    prop_assert!(
                        a.cost.polygons <= cap,
                        "service {} got {} > {}",
                        a.service,
                        a.cost.polygons,
                        cap
                    );
                }
                // Work conserved.
                let placed: u64 = plan.assignments.iter().map(|a| a.cost.polygons).sum();
                prop_assert_eq!(placed, total);
                // Scene still valid after any splits.
                scene.check_invariants().unwrap();
                prop_assert_eq!(scene.total_cost().polygons, total);
                // Assigned node sets are disjoint.
                let mut seen = std::collections::BTreeSet::new();
                for a in &plan.assignments {
                    for n in &a.nodes {
                        prop_assert!(seen.insert(*n), "node {n} assigned twice");
                    }
                }
            }
            Err(PlanError::InsufficientResources { .. }) => {
                // Refusal must be justified.
                prop_assert!(total > headroom, "refused although {total} <= {headroom}");
            }
            Err(PlanError::IndivisibleNode { .. }) => {
                // Only possible when a single strip cannot fit the biggest
                // service even after splitting to 1-triangle granularity —
                // impossible for capacities >= 100 and our splittable
                // strips, so treat as a bug.
                prop_assert!(false, "strips are always divisible");
            }
            Err(PlanError::NoCandidates) => prop_assert!(capacities.is_empty()),
        }
    }

    /// Splitting any strip mesh node conserves triangles and keeps both
    /// halves valid, recursively.
    #[test]
    fn splits_conserve_triangles(tris in 2u32..5000, depth in 1u32..5) {
        use rave::core::distribution::split_node;
        let mut scene = SceneTree::new();
        let root = scene.root();
        let id = scene
            .add_node(root, "m", NodeKind::Mesh(Arc::new(strip_mesh(tris))))
            .unwrap();
        let mut frontier = vec![id];
        for _ in 0..depth {
            let mut next = Vec::new();
            for n in frontier {
                if let Some((a, b)) = split_node(&mut scene, n) {
                    next.push(a);
                    next.push(b);
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        scene.check_invariants().unwrap();
        prop_assert_eq!(scene.total_cost().polygons, tris as u64);
    }

    /// Tiles from `plan_tiles` exactly partition the viewport — every
    /// pixel covered once, no zero-width strips — for arbitrary viewport
    /// sizes and helper capacity vectors (including all-zero capacities
    /// and viewports narrower than the participant count).
    #[test]
    fn tile_plans_partition_viewport_exactly(
        width in 1u32..500,
        height in 1u32..400,
        capacities in prop::collection::vec(0u64..5000, 0..12),
        observed in prop::collection::vec(1u64..1_000_000, 0..13),
    ) {
        use rave::core::tiles::{plan_tiles, plan_tiles_with_feedback, TileCostTracker};
        use rave::math::Viewport;

        let vp = Viewport::new(width, height);
        let owner = RenderServiceId(1);
        let helpers: Vec<CapacityReport> = capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| report(i as u64 + 2, c))
            .collect();

        let mut tracker = TileCostTracker::new();
        for (i, &rate) in observed.iter().enumerate() {
            tracker.record(RenderServiceId(i as u64 + 1), rate, 1.0);
        }

        for plan in [
            plan_tiles(&vp, owner, &helpers),
            plan_tiles_with_feedback(&vp, owner, &helpers, &tracker),
        ] {
            prop_assert!(!plan.tiles.is_empty());
            prop_assert_eq!(plan.tiles[0].1, owner, "owner takes the first tile");
            // Exact partition into contiguous vertical strips.
            let mut x = 0u32;
            for (tile, _) in &plan.tiles {
                prop_assert!(tile.width > 0, "zero-width tile in {:?}", plan);
                prop_assert_eq!(tile.x, x, "gap or overlap in {:?}", plan);
                prop_assert_eq!((tile.y, tile.height), (0u32, height));
                x += tile.width;
            }
            prop_assert_eq!(x, width, "strips cover the full width");
            // Each service appears at most once.
            let mut seen = std::collections::BTreeSet::new();
            for (_, svc) in &plan.tiles {
                prop_assert!(seen.insert(*svc), "service {} tiled twice", svc);
            }
            // Zero-capacity helpers never appear.
            for (_, svc) in plan.tiles.iter().skip(1) {
                let cap = capacities[(svc.0 - 2) as usize];
                prop_assert!(cap > 0, "zero-capacity helper {} got a tile", svc);
            }
        }
    }

    /// Migration shed selection never picks more than needed + one node,
    /// and always picks smallest-first.
    #[test]
    fn shed_selection_minimal(
        sizes in prop::collection::vec(10u64..10_000, 1..10),
        excess_frac in 0.05f64..0.95,
    ) {
        use rave::core::migration::select_nodes_to_shed;
        let mut scene = SceneTree::new();
        let root = scene.root();
        let mut roots = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            roots.push(
                scene
                    .add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(strip_mesh(s as u32))))
                    .unwrap(),
            );
        }
        let total: u64 = sizes.iter().sum();
        let excess = ((total as f64) * excess_frac) as u64;
        let shed = select_nodes_to_shed(&scene, &roots, excess);
        let shed_total: u64 = shed.iter().map(|(_, c)| c.polygons).sum();
        prop_assert!(shed_total >= excess.min(total), "covers the excess");
        // Minimality: dropping the last selected node must under-cover.
        if let Some((_, last)) = shed.last() {
            prop_assert!(shed_total - last.polygons < excess, "no gratuitous shedding");
        }
    }
}
