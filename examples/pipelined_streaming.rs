//! The pipelined frame path: the same §5.1 hand-over-wireless session run
//! serially (`pipeline_depth = 1`, the paper's measured loop) and
//! pipelined (depth 3, render/encode/transmit/display overlapped), with
//! the per-stage occupancy books showing *which* resource bounds each
//! stream and where the pipelined frames stall.
//!
//! Run with: `cargo run --release --example pipelined_streaming`

use rave::core::config::CompressionMode;
use rave::core::thin_client::{connect, stream_frames, FrameStats};
use rave::core::trace::TraceKind;
use rave::core::world::{RaveSim, RaveWorld};
use rave::core::{ClientId, RaveConfig};
use rave::math::Vec3;
use rave::scene::{MeshData, NodeKind};
use rave::sim::Simulation;
use std::sync::Arc;

/// The §5.1 hand scenario (0.83M polygons, 200x200 PDA over wireless).
fn session(mode: CompressionMode, depth: usize) -> (RaveSim, ClientId) {
    let config =
        RaveConfig { frame_compression: mode, pipeline_depth: depth, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 7));
    let rs = sim.world.spawn_render_service("laptop");
    let mesh = MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; 830_000],
        texture_bytes: 0,
    };
    let scene = &mut sim.world.render_mut(rs).scene;
    let root = scene.root();
    scene.add_node(root, "hand", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let cl = sim.world.spawn_thin_client("zaurus");
    connect(&mut sim, cl, rs);
    (sim, cl)
}

fn report(label: &str, stats: &FrameStats, stall_traces: usize) {
    let span = stats.last_display.expect("frames displayed");
    let b = stats.bound_by;
    println!("{label}:");
    println!("  frame rate      : {:.2} fps over {} frames", stats.fps(), stats.frames);
    println!(
        "  stage occupancy : render {:>4.0}%  wire {:>4.0}%  client {:>4.0}%",
        100.0 * stats.render_utilization(span),
        100.0 * stats.wire_utilization(span),
        100.0 * stats.client_utilization(span),
    );
    println!(
        "  bound by        : render {} / wire {} / client {} -> {}-bound",
        b.render,
        b.wire,
        b.client,
        b.dominant()
    );
    println!(
        "  stalls          : {} frames waited {:.3}s total ({} PipelineStall records)",
        stats.stalled_frames, stats.stall_secs, stall_traces
    );
}

fn main() {
    for (mode, name) in
        [(CompressionMode::Raw, "raw 24 bpp"), (CompressionMode::Adaptive, "adaptive codec")]
    {
        println!("== {name} over 11Mb wireless ==");
        for depth in [1usize, 3] {
            let (mut sim, cl) = session(mode, depth);
            stream_frames(&mut sim, cl, 12);
            sim.run();
            let stalls = sim.world.trace.count(TraceKind::PipelineStall);
            let label = if depth == 1 {
                "serial (depth 1, the paper's loop)".to_string()
            } else {
                format!("pipelined (depth {depth})")
            };
            report(&label, &sim.world.client(cl).stats, stalls);
        }
        println!();
    }
    println!("The serial loop pays render + wire + import per frame; the pipeline");
    println!("pays only the bottleneck stage, and the bound_by books name it.");
}
