//! Distributed volume rendering (§6 future work, implemented): a CT-like
//! density volume is split into bricks, each render service ray-casts its
//! brick, and the owner blends the layers in view order — the
//! Visapult-style pipeline the paper points to.
//!
//! Run with: `cargo run --release --example volume_visualization`

use rave::core::volume_dist::{brick_volume, render_distributed_volume};
use rave::core::world::RaveWorld;
use rave::core::RaveConfig;
use rave::math::{Vec3, Viewport};
use rave::scene::{CameraParams, NodeKind, SceneTree, VolumeData};
use rave::sim::Simulation;
use std::fs::File;
use std::sync::Arc;

/// A synthetic "CT head": nested density shells plus two dense "orbits".
fn synthetic_ct(n: u32) -> VolumeData {
    let mut voxels = vec![0u8; (n * n * n) as usize];
    let c = (n as f32 - 1.0) / 2.0;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let p = Vec3::new(x as f32 - c, y as f32 - c, z as f32 - c);
                let r = p.length() / c;
                let mut d = 0.0f32;
                if r < 0.95 {
                    d = 0.25; // soft tissue
                }
                if (0.78..0.92).contains(&r) {
                    d = 0.85; // skull shell
                }
                if r < 0.3 {
                    d = 0.55; // inner structure
                }
                // Two dense orbits.
                for side in [-1.0f32, 1.0] {
                    let eye = Vec3::new(side * 0.35 * c, 0.2 * c, 0.7 * c);
                    if (p - eye).length() < 0.12 * c {
                        d = 1.0;
                    }
                }
                voxels[(x + n * (y + n * z)) as usize] = (d * 255.0) as u8;
            }
        }
    }
    VolumeData::new([n, n, n], Vec3::ONE, voxels)
}

fn main() {
    let config = RaveConfig { produce_images: true, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 7));

    // Master scene with the volume; two volume-capable services.
    let mut master = SceneTree::new();
    let n = 48;
    let root = master.root();
    let vol =
        master.add_node(root, "ct-head", NodeKind::Volume(Arc::new(synthetic_ct(n)))).unwrap();
    println!("volume: {0}x{0}x{0} = {1} voxels", n, master.total_cost().voxels);

    let owner = sim.world.spawn_render_service("v880z"); // volume hardware
    let helpers = [
        sim.world.spawn_render_service("onyx"),
        sim.world.spawn_render_service("tower"),
        sim.world.spawn_render_service("desktop"),
    ];
    for rs in std::iter::once(owner).chain(helpers) {
        sim.world.render_mut(rs).scene = master.clone();
    }

    // Brick it 2 levels deep -> 4 bricks, one per service.
    let bricks = {
        let mut bricks = Vec::new();
        for rs in std::iter::once(owner).chain(helpers) {
            let scene = &mut sim.world.render_mut(rs).scene;
            bricks = brick_volume(scene, vol, 2);
        }
        bricks
    };
    println!("split into {} bricks across 4 services", bricks.len());

    let cam = CameraParams::look_at(
        Vec3::new(n as f32 * 0.5, n as f32 * 0.6, n as f32 * 3.2),
        Vec3::splat(n as f32 * 0.5),
        Vec3::Y,
    );
    let viewport = Viewport::new(300, 300);
    let assignments: Vec<_> =
        std::iter::once(owner).chain(helpers).zip(bricks.iter().copied()).collect();
    let result = render_distributed_volume(
        &mut sim,
        owner,
        &assignments,
        cam,
        viewport,
        40.0e6, // hardware-assisted ray-cast rate (voxels/s)
    );
    let image = result.image.as_ref().unwrap();
    std::fs::create_dir_all("out").unwrap();
    image.write_ppm(&mut File::create("out/volume_distributed.ppm").unwrap()).unwrap();
    println!(
        "distributed frame completed at {} ({} bricks); wrote out/volume_distributed.ppm",
        result.completed_at, result.bricks
    );
    for (i, t) in result.layer_arrivals.iter().enumerate() {
        println!("  layer {i} arrived at {t}");
    }

    // The crossover: distribution only pays when casting outweighs the
    // layer transfer (the paper's "dataset would overwhelm the resources"
    // precondition). Sweep the cast rate from hardware-assisted to
    // software fallback.
    println!("\ncast rate      single     distributed  speedup");
    for (label, rate) in
        [("40 Mvox/s (hw)", 40.0e6), ("4 Mvox/s", 4.0e6), ("0.5 Mvox/s (sw)", 0.5e6)]
    {
        let run = |n_services: usize, seed| {
            let mut s = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), seed));
            let ids: Vec<_> = ["v880z", "onyx", "tower", "desktop"]
                .iter()
                .take(n_services)
                .map(|h| s.world.spawn_render_service(h))
                .collect();
            let (scene_copy, assignments) = if n_services == 1 {
                (master.clone(), vec![(ids[0], vol)])
            } else {
                let mut sc = master.clone();
                let bricks = brick_volume(&mut sc, vol, 2);
                let assignments = ids.iter().copied().zip(bricks).collect();
                (sc, assignments)
            };
            for &rs in &ids {
                s.world.render_mut(rs).scene = scene_copy.clone();
            }
            render_distributed_volume(&mut s, ids[0], &assignments, cam, viewport, rate)
                .completed_at
        };
        let single = run(1, 10);
        let quad = run(4, 11);
        println!("{label:<14} {single:>9} {quad:>12}  {:.2}x", single.as_secs() / quad.as_secs());
    }
    println!("\n(distribution wins once per-brick cast time exceeds the layer transfer —");
    println!(" exactly the 'dataset would overwhelm an individual service' regime.)");
}
