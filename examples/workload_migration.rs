//! Workload distribution + migration (§3.2.5/§3.2.7) end-to-end:
//!
//! 1. A dataset too large for one render service is distributed across
//!    the testbed by capacity interrogation (splitting an oversized mesh).
//! 2. One service becomes overloaded; the data service sheds nodes to a
//!    spare service.
//! 3. With connected capacity exhausted, UDDI recruits an unconnected
//!    render service.
//!
//! Run with: `cargo run --release --example workload_migration`

use rave::core::distribution::plan_distribution;
use rave::core::migration::{check_and_migrate, check_underload_rebalance};
use rave::core::thin_client::{connect, stream_frames};
use rave::core::world::RaveWorld;
use rave::core::RaveConfig;
use rave::models::{build_with_budget, PaperModel};
use rave::scene::{InterestSet, NodeKind};
use rave::sim::{SimTime, Simulation};
use std::sync::Arc;

fn main() {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 3));
    let ds = sim.world.spawn_data_service("adrenochrome", "skeleton-session");

    // A 2.8M-polygon skeleton (scaled to 600k here so the example runs in
    // a blink — the bench harness uses full size).
    let skeleton = build_with_budget(PaperModel::Skeleton, 600_000);
    {
        let scene = &mut sim.world.data_mut(ds).scene;
        let root = scene.root();
        scene.add_node(root, "skeleton", NodeKind::Mesh(Arc::new(skeleton))).unwrap();
    }

    // Two modest render services connect.
    let rs_laptop = sim.world.spawn_render_service("laptop");
    let rs_desktop = sim.world.spawn_render_service("desktop");
    for rs in [rs_laptop, rs_desktop] {
        rave::core::bootstrap::connect_render_service(&mut sim, rs, ds, InterestSet::subtrees([]));
    }
    sim.run();

    // --- 1. Distribution planning -----------------------------------
    let cfg = sim.world.config.clone();
    let reports: Vec<_> = [rs_laptop, rs_desktop]
        .iter()
        .map(|&rs| sim.world.render(rs).capacity_report(&cfg))
        .collect();
    for r in &reports {
        println!(
            "capacity of {} ({}): {} polygons headroom, {} MB texture",
            r.service,
            r.host,
            r.poly_headroom,
            r.texture_headroom >> 20
        );
    }
    let plan = {
        let mut master = sim.world.data(ds).scene.clone();
        let plan = plan_distribution(&mut master, &reports).expect("plan");
        sim.world.data_mut(ds).scene = master;
        plan
    };
    println!("\ndistribution plan ({} splits performed):", plan.splits_performed);
    for a in &plan.assignments {
        println!("  {} takes {} nodes, {} polygons", a.service, a.nodes.len(), a.cost.polygons);
    }
    // Install the plan: subscribe each service to its share.
    for a in &plan.assignments {
        let interest = InterestSet::subtrees(a.nodes.iter().copied());
        rave::core::bootstrap::connect_render_service(&mut sim, a.service, ds, interest);
    }
    sim.run();

    // --- 2. Overload -> migration -----------------------------------
    // A PDA hammers the laptop, which reports a collapsing frame rate.
    let pda = sim.world.spawn_thin_client("zaurus");
    connect(&mut sim, pda, rs_laptop);
    stream_frames(&mut sim, pda, 15);
    sim.run();
    println!(
        "\nlaptop rolling fps after streaming: {:.1}",
        sim.world.render(rs_laptop).rolling_fps().unwrap_or(f64::NAN)
    );
    let outcome = check_and_migrate(&mut sim, ds);
    sim.run();
    println!(
        "migration outcome: {} nodes moved, {} services recruited, refused={}",
        outcome.moved.len(),
        outcome.recruited.len(),
        outcome.refused
    );
    for (node, from, to) in &outcome.moved {
        println!("  node {node}: {from} -> {to}");
    }

    // --- 3. UDDI recruitment -----------------------------------------
    // Register an idle render service on the Onyx, then rebalance under
    // debounce: it should attract work.
    let rs_onyx = sim.world.spawn_render_service("onyx");
    rave::core::bootstrap::connect_render_service(&mut sim, rs_onyx, ds, InterestSet::subtrees([]));
    sim.run();
    // Let the debounce window elapse with the Onyx idle.
    check_underload_rebalance(&mut sim, ds);
    let horizon = sim.now() + SimTime::from_secs(6.0);
    sim.schedule_at(horizon, |_| {});
    sim.run();
    let rebalance = check_underload_rebalance(&mut sim, ds);
    sim.run();
    println!("\nunderload rebalance onto the Onyx: {} nodes attracted", rebalance.moved.len());
    println!("onyx now holds {} polygons", sim.world.render(rs_onyx).assigned_cost().polygons);

    println!("\nfull event trace:\n{}", sim.world.trace.render());
}
