//! Collaborative session (the Fig 3 scenario): two users on different
//! machines share the skeletal-hand scene; each sees the other's cone
//! avatar navigate. The session is recorded and replayed afterwards —
//! asynchronous collaboration (§3.1.1).
//!
//! Run with: `cargo run --release --example collaboration`

use rave::core::collaboration::{drag_object, interaction_menu, join_session, move_camera};
use rave::core::world::RaveWorld;
use rave::core::RaveConfig;
use rave::math::Vec3;
use rave::models::{build_with_budget, PaperModel};
use rave::scene::{CameraParams, InterestSet, NodeKind, Transform};
use rave::sim::{SimTime, Simulation};
use std::fs::File;
use std::sync::Arc;

fn main() {
    let config = RaveConfig { produce_images: true, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 2));

    // Shared scene: a scaled-down skeletal hand (full-size rasterization
    // is for the bench harness; this example favours fast turnaround).
    let ds = sim.world.spawn_data_service("adrenochrome", "hand-session");
    let hand = build_with_budget(PaperModel::SkeletalHand, 20_000);
    // Import through the update protocol so the audit trail records the
    // whole session from its very first byte (replayable from scratch).
    {
        let (id, root) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            (scene.allocate_id(), scene.root())
        };
        rave::core::world::publish_update(
            &mut sim,
            ds,
            "importer",
            rave::scene::SceneUpdate::AddNode {
                id,
                parent: root,
                name: "hand".into(),
                kind: NodeKind::Mesh(Arc::new(hand)),
            },
        )
        .unwrap();
    }

    // Each user has a render service on their own machine.
    let rs_laptop = sim.world.spawn_render_service("laptop");
    let rs_desktop = sim.world.spawn_render_service("desktop");
    for rs in [rs_laptop, rs_desktop] {
        rave::core::bootstrap::connect_render_service(&mut sim, rs, ds, InterestSet::everything());
    }
    sim.run();

    // Two users join; avatars propagate to both replicas.
    let hand_bounds = sim.world.data(ds).scene.world_bounds(rave::scene::NodeId(0));
    let center = hand_bounds.center();
    let r = hand_bounds.radius();
    let cam_a = CameraParams::look_at(center + Vec3::new(0.0, 0.0, 2.5 * r), center, Vec3::Y);
    let cam_b =
        CameraParams::look_at(center + Vec3::new(2.0 * r, 0.8 * r, 0.8 * r), center, Vec3::Y);
    let alice = join_session(&mut sim, ds, "laptop", Vec3::new(0.2, 0.9, 0.3), cam_a).unwrap();
    let bob = join_session(&mut sim, ds, "Desktop", Vec3::new(0.95, 0.5, 0.1), cam_b).unwrap();
    sim.run();

    // The GUI interrogates the model for its interaction menu (§5.2).
    let hand_node = sim.world.data(ds).scene.find_by_path("/hand").unwrap();
    println!(
        "interactions offered for /hand: {:?}",
        interaction_menu(&sim.world.data(ds).scene, hand_node)
    );

    // Bob navigates around the model (8 drag steps) while Alice watches.
    let mut cam = cam_b;
    for step in 0..8 {
        cam.orbit(center, 0.18, 0.02);
        move_camera(&mut sim, ds, bob, "Desktop", cam).unwrap();
        // Interactive pacing: ~10 drags/second.
        let pause = sim.now() + SimTime::from_millis(100.0);
        sim.schedule_at(pause, |_| {});
        sim.run();
        let _ = step;
    }

    // Alice rotates the model itself: a shared edit.
    drag_object(
        &mut sim,
        ds,
        "laptop",
        hand_node,
        Transform::from_rotation(rave::math::Quat::from_axis_angle(Vec3::Z, 0.35)),
    )
    .unwrap();
    sim.run();

    // Render Alice's view: she sees the hand and Bob's cone + name tag.
    {
        let rs = sim.world.render_mut(rs_laptop);
        rs.renderer.skip_subtree = Some(alice.avatar); // not your own head
        rs.open_session(
            rave::core::ClientId(99),
            rave::math::Viewport::new(400, 400),
            cam_a,
            rave::render::OffscreenMode::Sequential,
        );
        let fb = rs.rasterize(rave::core::ClientId(99)).unwrap();
        std::fs::create_dir_all("out").unwrap();
        fb.write_ppm(&mut File::create("out/collaboration_alice_view.ppm").unwrap()).unwrap();
        println!("wrote out/collaboration_alice_view.ppm — Bob appears as an avatar");
    }

    // Asynchronous collaboration: replay the recorded session later.
    let mut recorded = Vec::new();
    sim.world.data(ds).audit.save(&mut recorded).unwrap();
    println!(
        "audit trail: {} updates, {} bytes as JSONL",
        sim.world.data(ds).audit.len(),
        recorded.len()
    );
    let reloaded = rave::scene::AuditTrail::load(std::io::Cursor::new(recorded)).unwrap();
    let replayed = reloaded.replay_all().unwrap();
    assert!(replayed.contains(bob.avatar), "replayed session contains Bob's avatar");
    println!(
        "replayed session: {} nodes (identical to the live master: {})",
        replayed.len(),
        sim.world.data(ds).scene.len()
    );
    println!(
        "\ntrace excerpt:\n{}",
        &sim.world.trace.render()[..600.min(sim.world.trace.render().len())]
    );
}
