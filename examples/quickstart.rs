//! Quickstart: stand up a one-machine RAVE deployment, share a model,
//! stream remotely rendered frames to a PDA-class thin client, and save a
//! screenshot.
//!
//! Run with: `cargo run --release --example quickstart`

use rave::core::thin_client::{connect, stream_frames};
use rave::core::world::{publish_update, RaveWorld};
use rave::core::RaveConfig;
use rave::math::Vec3;
use rave::models::{build_with_budget, PaperModel};
use rave::scene::{InterestSet, NodeKind, SceneUpdate};
use rave::sim::Simulation;
use std::fs::File;
use std::sync::Arc;

fn main() {
    // 1. A world with the paper's testbed topology (LAN + wireless PDA).
    let config = RaveConfig { produce_images: true, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 1));

    // 2. A data service hosting a session, with the galleon model.
    let ds = sim.world.spawn_data_service("adrenochrome", "galleon-session");
    let galleon = build_with_budget(PaperModel::Galleon, 5_500);
    println!("built {}: {} polygons", PaperModel::Galleon.name(), galleon.triangle_count());
    {
        let scene = &mut sim.world.data_mut(ds).scene;
        let root = scene.root();
        scene.add_node(root, "galleon", NodeKind::Mesh(Arc::new(galleon))).unwrap();
    }

    // 3. A render service on the laptop, bootstrapped from the data
    //    service (snapshot + live-update overlap).
    let rs = sim.world.spawn_render_service("laptop");
    let timing =
        rave::core::bootstrap::connect_render_service(&mut sim, rs, ds, InterestSet::everything());
    println!(
        "render service bootstrap: {} bytes, ready at {}",
        timing.snapshot_bytes, timing.ready_at
    );
    sim.run();

    // 4. A thin client on the PDA streams ten 200x200 frames.
    let pda = sim.world.spawn_thin_client("zaurus");
    {
        // Frame the model.
        let bounds = sim.world.render(rs).scene.world_bounds(rave::scene::NodeId(0));
        let c = bounds.center();
        let eye = c + Vec3::new(0.0, bounds.radius() * 0.6, bounds.radius() * 2.0);
        sim.world.client_mut(pda).camera = rave::scene::CameraParams::look_at(eye, c, Vec3::Y);
    }
    connect(&mut sim, pda, rs);
    stream_frames(&mut sim, pda, 10);
    sim.run();

    let stats = &sim.world.client(pda).stats;
    println!("streamed {} frames over 11Mb wireless:", stats.frames);
    println!("  frame rate     : {:.1} fps", stats.fps());
    println!("  total latency  : {:.3} s", stats.total_latency.mean());
    println!("  image receipt  : {:.3} s", stats.receipt.mean());
    println!("  render time    : {:.3} s", stats.render.mean());
    println!("  other overheads: {:.3} s", stats.other_overheads.mean());

    // 5. A live user edits the scene: every replica follows.
    let node = sim.world.data(ds).scene.find_by_path("/galleon").unwrap();
    publish_update(
        &mut sim,
        ds,
        "quickstart-user",
        SceneUpdate::SetTransform {
            id: node,
            transform: rave::scene::Transform::from_rotation(rave::math::Quat::from_axis_angle(
                Vec3::Y,
                0.4,
            )),
        },
    )
    .unwrap();
    sim.run();

    // 6. Save what the render service now sees.
    let fb = sim.world.render_mut(rs).rasterize(pda).expect("session image");
    std::fs::create_dir_all("out").unwrap();
    let mut f = File::create("out/quickstart.ppm").unwrap();
    fb.write_ppm(&mut f).unwrap();
    println!("wrote out/quickstart.ppm ({}x{})", fb.width(), fb.height());
    println!(
        "\nsession audit trail has {} entries; replayable any time.",
        sim.world.data(ds).audit.len()
    );
}
