//! A scientist in the field (§1's motivation): a PDA over degrading
//! wireless views the skeleton, with the bandwidth-adaptive compression
//! extension (§6 future work) keeping the frame rate usable as the
//! signal weakens.
//!
//! Run with: `cargo run --release --example pda_field_visualization`

use rave::compress::adaptive::{select, EndpointSpeed};
use rave::core::thin_client::{connect, stream_frames};
use rave::core::world::RaveWorld;
use rave::core::RaveConfig;
use rave::math::{Vec3, Viewport};
use rave::models::{build_with_budget, PaperModel};
use rave::net::LinkSpec;
use rave::render::{Framebuffer, Renderer};
use rave::scene::{CameraParams, NodeKind, SceneTree};
use rave::sim::Simulation;
use std::sync::Arc;

fn main() {
    // --- Baseline: uncompressed streaming at full signal --------------
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 5));
    let rs = sim.world.spawn_render_service("laptop");
    let skeleton = build_with_budget(PaperModel::Skeleton, 100_000);
    {
        let scene = &mut sim.world.render_mut(rs).scene;
        let root = scene.root();
        scene.add_node(root, "skeleton", NodeKind::Mesh(Arc::new(skeleton.clone()))).unwrap();
    }
    let pda = sim.world.spawn_thin_client("zaurus");
    connect(&mut sim, pda, rs);
    stream_frames(&mut sim, pda, 10);
    sim.run();
    println!(
        "uncompressed 200x200 over full-strength wireless: {:.1} fps",
        sim.world.client(pda).stats.fps()
    );

    // --- The adaptive-codec extension ---------------------------------
    // Render one real frame so codec selection sees actual content.
    let mut scene = SceneTree::new();
    let root = scene.root();
    scene.add_node(root, "skeleton", NodeKind::Mesh(Arc::new(skeleton))).unwrap();
    let bounds = scene.world_bounds(root);
    let cam = CameraParams::look_at(
        bounds.center() + Vec3::new(0.0, 0.0, bounds.radius() * 2.2),
        bounds.center(),
        Vec3::Y,
    );
    let viewport = Viewport::new(200, 200);
    let renderer = Renderer::default();
    let mut fb = Framebuffer::new(viewport.width, viewport.height);
    renderer.render(&scene, &cam, &mut fb);
    let frame = fb.to_rgb_bytes();
    // A "previous frame" after a tiny camera move, for delta coding.
    let mut cam2 = cam;
    cam2.orbit(bounds.center(), 0.03, 0.0);
    let mut fb2 = Framebuffer::new(viewport.width, viewport.height);
    renderer.render(&scene, &cam2, &mut fb2);
    let next = fb2.to_rgb_bytes();

    println!("\nsignal quality sweep (codec chosen adaptively per frame):");
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>9}",
        "signal", "codec", "frame bytes", "frame time", "est fps"
    );
    for quality in [1.0, 0.6, 0.3, 0.15, 0.05] {
        let link = LinkSpec::wireless_11mb(quality);
        let choice = select(
            &next,
            Some(&frame),
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        println!(
            "{:<8} {:>10} {:>14} {:>12} {:>9.1}",
            format!("{:.0}%", quality * 100.0),
            choice.codec.name(),
            choice.encoded_bytes,
            format!("{}", choice.total_time),
            1.0 / choice.total_time.as_secs()
        );
    }
    println!(
        "\nraw 120000-byte frames at 5% signal would run at {:.2} fps — adaptation keeps the view interactive.",
        1.0 / LinkSpec::wireless_11mb(0.05).transfer_time(120_000).as_secs()
    );
}
