//! Computational steering through a remote bridge (§5.2's molecule
//! example): a mass-spring "molecule" integrates on a remote compute
//! host; RAVE is the display and collaboration mechanism. A user yanks an
//! atom; every collaborator watches the chain whip and settle, and the
//! whole trajectory is replayable from the audit trail.
//!
//! Run with: `cargo run --release --example molecule_steering`

use rave::core::steering::{MoleculeSimulator, SteeringBridge};
use rave::core::world::RaveWorld;
use rave::core::RaveConfig;
use rave::math::Vec3;
use rave::scene::InterestSet;
use rave::sim::Simulation;

fn main() {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 6));
    let ds = sim.world.spawn_data_service("adrenochrome", "molecule-session");
    let rs = sim.world.spawn_render_service("laptop");
    sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());

    // The "third-party simulator" runs on the Onyx.
    let molecule = MoleculeSimulator::chain(8, 1.0);
    println!(
        "bridging an 8-atom chain to the Onyx (k={}, damping={})",
        molecule.bonds[0].stiffness, molecule.damping
    );
    let mut bridge = SteeringBridge::new(&mut sim, ds, "onyx", molecule);
    sim.run();

    // The user grabs the last atom and pulls, then releases.
    println!("\n t(virtual)  atom7.y   atom0.y   energy");
    for frame in 0..30 {
        if frame < 8 {
            bridge.apply_force(&mut sim, 7, Vec3::new(0.0, 220.0, 0.0), "laptop");
        }
        bridge.step_and_publish(&mut sim, 8);
        sim.run();
        if frame % 3 == 0 {
            println!(
                "  {:>8}   {:+.3}    {:+.3}    {:.2}",
                sim.now(),
                bridge.simulator.atoms[7].position.y,
                bridge.simulator.atoms[0].position.y,
                bridge.simulator.energy()
            );
        }
    }

    // The replica tracked every step.
    let node7 = bridge.bindings[&7];
    let replica_pos = sim.world.render(rs).scene.node(node7).unwrap().transform().translation;
    println!("\nreplica's view of atom 7: {replica_pos:?}");
    assert_eq!(replica_pos, bridge.simulator.atoms[7].position);

    // Asynchronous collaboration: the recorded session replays bit-exact.
    let replayed = sim.world.data(ds).audit.replay_all().unwrap();
    assert_eq!(replayed.node(node7).unwrap().transform().translation, replica_pos);
    println!(
        "audit trail: {} updates; replay reproduces the final pose exactly.",
        sim.world.data(ds).audit.len()
    );
}
