//! Immersive stereo display (the Immersadesk / Portico Workwall path,
//! §3.1.2/§5.3): render the skeleton as an active-stereo pair and a
//! side-by-side packing, and verify depth via disparity.
//!
//! Run with: `cargo run --release --example immersive_stereo`

use rave::math::{Vec3, Viewport};
use rave::models::{build_with_budget, PaperModel};
use rave::render::{Renderer, StereoRig};
use rave::scene::{CameraParams, NodeKind, SceneTree};
use std::fs::File;
use std::sync::Arc;

fn main() {
    let skeleton = build_with_budget(PaperModel::Skeleton, 40_000);
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "skeleton", NodeKind::Mesh(Arc::new(skeleton))).unwrap();
    let b = tree.world_bounds(root);

    let center = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.1 * b.radius(), 2.0 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    // Human-scale rig relative to the model: eyes ~3% of the model radius
    // apart, converged on the model center.
    let rig = StereoRig { eye_separation: 0.06 * b.radius(), convergence: 2.0 * b.radius() };

    let renderer = Renderer::default();
    let (sbs, stats) = rig.render_side_by_side(&renderer, &tree, &center, Viewport::new(320, 400));
    std::fs::create_dir_all("out").unwrap();
    sbs.write_ppm(&mut File::create("out/stereo_side_by_side.ppm").unwrap()).unwrap();
    println!(
        "side-by-side stereo: {}x{}, {} fragments ({} polygons/eye)",
        sbs.width(),
        sbs.height(),
        stats.raster.fragments_written,
        stats.polygons_on_screen / 2
    );

    let (left, right) = rig.render_pages(&renderer, &tree, &center, Viewport::new(400, 400));
    left.write_ppm(&mut File::create("out/stereo_left.ppm").unwrap()).unwrap();
    right.write_ppm(&mut File::create("out/stereo_right.ppm").unwrap()).unwrap();
    println!("active-stereo pages: out/stereo_left.ppm / out/stereo_right.ppm");

    // Depth readout: skull (near top, closer to convergence) vs a point
    // nearer the viewer.
    let vp = Viewport::new(400, 400);
    for (label, p) in [
        ("model center (convergence)", b.center()),
        ("toward viewer", b.center() + Vec3::new(0.0, 0.0, 0.8 * b.radius())),
        ("behind model", b.center() - Vec3::new(0.0, 0.0, 0.8 * b.radius())),
    ] {
        if let Some(d) = rig.disparity_of(&center, &vp, p) {
            println!("disparity at {label}: {d:+.2} px");
        }
    }
    println!("(negative = pops out of the wall, positive = recedes)");
}
