//! Framebuffer (tile) distribution and the Fig 5 tearing artifact.
//!
//! Two render services split the galleon view into side-by-side tiles.
//! When the assisting service is artificially stalled while the camera
//! moves, its stale tile misaligns at the seam — the paper's Fig 5 tear,
//! here quantified with a seam-discontinuity metric and saved as images.
//!
//! Run with: `cargo run --release --example tiled_rendering`

use rave::core::tiles::{plan_tiles, render_tiled_frame};
use rave::core::world::RaveWorld;
use rave::core::{ClientId, RaveConfig};
use rave::math::{Vec3, Viewport};
use rave::models::{build_with_budget, PaperModel};
use rave::render::composite::seam_discontinuity;
use rave::render::OffscreenMode;
use rave::scene::{CameraParams, InterestSet, NodeKind};
use rave::sim::Simulation;
use std::collections::BTreeSet;
use std::fs::File;
use std::sync::Arc;

fn main() {
    let config = RaveConfig { produce_images: true, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 4));

    let ds = sim.world.spawn_data_service("adrenochrome", "galleon");
    let galleon = build_with_budget(PaperModel::Galleon, 5_500);
    {
        let scene = &mut sim.world.data_mut(ds).scene;
        let root = scene.root();
        scene.add_node(root, "galleon", NodeKind::Mesh(Arc::new(galleon))).unwrap();
    }

    // Owner on the laptop, assistant on the tower; both hold the scene.
    let owner = sim.world.spawn_render_service("laptop");
    let helper = sim.world.spawn_render_service("tower");
    for rs in [owner, helper] {
        rave::core::bootstrap::connect_render_service(&mut sim, rs, ds, InterestSet::everything());
    }
    sim.run();

    let bounds = sim.world.render(owner).scene.world_bounds(rave::scene::NodeId(0));
    let center = bounds.center();
    let cam0 = CameraParams::look_at(
        center + Vec3::new(0.0, bounds.radius() * 0.35, bounds.radius() * 1.9),
        center,
        Vec3::Y,
    );
    let viewport = Viewport::new(400, 300);
    let client = ClientId(7);
    sim.world.render_mut(owner).open_session(client, viewport, cam0, OffscreenMode::Sequential);

    let cfg = sim.world.config.clone();
    let helper_report = sim.world.render(helper).capacity_report(&cfg);
    let plan = plan_tiles(&viewport, owner, &[helper_report]);
    println!("tile plan:");
    for (vp, svc) in &plan.tiles {
        println!("  {svc}: {}x{} at ({}, {})", vp.width, vp.height, vp.x, vp.y);
    }
    let seam_x = plan.tiles[1].0.x;

    // Frame 1: synchronized — seamless.
    let f1 = render_tiled_frame(&mut sim, owner, client, &plan, cam0, &BTreeSet::new());
    let img1 = f1.image.unwrap();
    std::fs::create_dir_all("out").unwrap();
    img1.write_ppm(&mut File::create("out/tiled_clean.ppm").unwrap()).unwrap();
    println!(
        "\nclean frame: completed at {}, seam discontinuity {:.2}",
        f1.completed_at,
        seam_discontinuity(&img1, seam_x)
    );

    // Frame 2: camera dragged, helper stalled -> tear at the seam.
    let mut cam1 = cam0;
    cam1.orbit(center, 0.28, 0.0);
    let stalled: BTreeSet<_> = [helper].into_iter().collect();
    let f2 = render_tiled_frame(&mut sim, owner, client, &plan, cam1, &stalled);
    let img2 = f2.image.unwrap();
    img2.write_ppm(&mut File::create("out/tiled_torn.ppm").unwrap()).unwrap();
    let tear = seam_discontinuity(&img2, seam_x);
    println!(
        "torn frame (helper stalled): stale tile used = {}, seam discontinuity {:.2}",
        f2.used_stale_tile, tear
    );

    // Frame 3: helper catches up -> seam heals.
    let f3 = render_tiled_frame(&mut sim, owner, client, &plan, cam1, &BTreeSet::new());
    let img3 = f3.image.unwrap();
    img3.write_ppm(&mut File::create("out/tiled_healed.ppm").unwrap()).unwrap();
    println!("healed frame: seam discontinuity {:.2}", seam_discontinuity(&img3, seam_x));
    println!("\nwrote out/tiled_clean.ppm, out/tiled_torn.ppm, out/tiled_healed.ppm");
}
